//! Head-to-head selector comparison (a miniature of the paper's Figure 4):
//! the same windowed echo workload through the Reptor comm stack, once over
//! the Java-NIO-style TCP selector and once over the RUBIN RDMA selector,
//! on a single simulated machine.
//!
//! Run with: `cargo run --release --example selector_comparison`

use bench::fig4;

fn main() {
    println!(
        "echo through the Reptor comm stack (window {}, batching {}), one machine\n",
        fig4::WINDOW,
        fig4::BATCH
    );
    println!(
        "{:>10} {:>14} {:>14} {:>9} | {:>12} {:>12} {:>9}",
        "payload", "RUBIN lat(us)", "NIO lat(us)", "gain", "RUBIN rps", "NIO rps", "gain"
    );
    for payload in [1024usize, 8 * 1024, 64 * 1024] {
        let rubin = fig4::rubin_selector_echo(payload, 60);
        let nio = fig4::nio_selector_echo(payload, 60);
        println!(
            "{:>9}K {:>14.1} {:>14.1} {:>8.0}% | {:>12.0} {:>12.0} {:>8.0}%",
            payload / 1024,
            rubin.latency_us,
            nio.latency_us,
            (1.0 - rubin.latency_us / nio.latency_us) * 100.0,
            rubin.rps,
            nio.rps,
            (rubin.rps / nio.rps - 1.0) * 100.0,
        );
    }
    println!(
        "\nthe RUBIN selector multiplexes RDMA channels the way NIO multiplexes sockets\n\
         (paper §III), so the BFT framework above it is unchanged — only faster."
    );
}
