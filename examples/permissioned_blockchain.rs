//! A permissioned supply-chain blockchain — the paper's motivating
//! deployment (§I): BFT replicas inside a data center order transactions,
//! giving consensus finality without proof-of-work.
//!
//! Mints funds, moves goods through a supply chain, and shows that every
//! correct replica builds the identical hash chain; then demonstrates
//! tamper detection on a copied chain.
//!
//! Run with: `cargo run --example permissioned_blockchain`

use chainstore::{LedgerService, Transaction};
use reptor::{Cluster, ReptorConfig};

fn main() {
    let mut cluster = Cluster::sim_transport(ReptorConfig::small(), 1, 11, || {
        Box::new(LedgerService::new(2))
    });
    let client = cluster.clients[0].clone();

    println!("== submitting transactions to the BFT ordering service ==");
    let txs = vec![
        Transaction::mint("mint", 1_000_000),
        Transaction::transfer("mint", "factory", 500_000),
        Transaction::shipment("pallet-001", "factory", "carrier", "braunschweig"),
        Transaction::shipment("pallet-001", "carrier", "warehouse", "hamburg"),
        Transaction::transfer("factory", "carrier", 1_200),
        Transaction::shipment("pallet-001", "warehouse", "retail", "berlin"),
    ];
    let total = txs.len() as u64;
    for tx in &txs {
        client.submit(&mut cluster.sim, tx.encode());
    }
    assert!(
        cluster.run_until_completed(total, 10_000_000),
        "consensus stalled"
    );
    cluster.settle();
    cluster.assert_safety();

    for c in client.completions() {
        println!(
            "  tx #{} -> {} ({})",
            c.timestamp,
            String::from_utf8_lossy(&c.result),
            c.latency()
        );
    }

    println!("\n== every correct replica holds the identical chain ==");
    let digests: Vec<_> = cluster
        .replicas
        .iter()
        .map(|r| r.with_service(|s| s.state_digest()))
        .collect();
    for (i, d) in digests.iter().enumerate() {
        println!("  replica {i}: state digest {}", d.short());
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]));

    println!("\n== tamper detection on a hash chain ==");
    // Rebuild the same chain locally and tamper with history.
    let mut ledger = LedgerService::new(2);
    for (i, tx) in txs.iter().enumerate() {
        ledger.apply_tx(i as u64 + 1, tx);
    }
    let mut chain = ledger.chain().clone();
    println!(
        "  chain: {} blocks, {} transactions, verify = {:?}",
        chain.len(),
        chain.total_transactions(),
        chain.verify()
    );
    chain.tamper(1, |b| {
        b.transactions[0] = Transaction::mint("mallory", 999_999_999);
    });
    println!(
        "  after tampering with block 1: verify = {:?}",
        chain.verify()
    );
    assert!(chain.verify().is_err(), "tampering must be detected");

    println!("\ncustody trail of pallet-001 (from the replicated ledger):");
    cluster.replicas[0].with_service(|_s| ());
    for (loc, holder) in ledger.custody_of("pallet-001") {
        println!("  at {loc}: held by {holder}");
    }
}
