//! Quickstart: an echo client/server over the RUBIN RDMA framework.
//!
//! Builds the paper's two-machine testbed in simulation, binds a RUBIN
//! server channel, connects a client channel, and ping-pongs a few
//! messages — fully driven by the RDMA selectors, just like a real RUBIN
//! application.
//!
//! Run with: `cargo run --example quickstart`

use rdma_verbs::{RdmaDevice, RnicModel};
use rubin::{Interest, RdmaChannel, RdmaSelector, RdmaServerChannel, RecvOutcome, RubinConfig};
use simnet::{Addr, CoreId, TestBed};

fn main() {
    // Two 4-core hosts joined by a 10 Gbps link, as in the paper's testbed.
    let mut tb = TestBed::paper_testbed(2026);
    let dev_client = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
    let dev_server = RdmaDevice::open(&tb.net, tb.b, RnicModel::mt27520());
    let cfg = RubinConfig::paper();

    // --- Server: accept connections and echo every message back. -------
    let server = RdmaServerChannel::bind(&dev_server, 4242, cfg.clone(), CoreId(0))
        .expect("bind server channel");
    let selector = RdmaSelector::new(&dev_server, CoreId(0), cfg.select_ns);
    selector.register_server(&mut tb.sim, &server);

    fn serve(sel: rubin::RdmaSelector, server: RdmaServerChannel, sim: &mut simnet::Simulator) {
        let sel2 = sel.clone();
        sel.select(sim, move |sim, ready| {
            for ev in ready {
                if ev.ready.contains(Interest::OP_CONNECT) {
                    let chan = server.accept(sim).expect("accept").expect("pending");
                    println!("[server] accepted connection ({:?})", chan.qp().num());
                    sel2.register_channel(sim, &chan, Interest::OP_RECEIVE);
                }
                if ev.ready.contains(Interest::OP_RECEIVE) {
                    if let Some(chan) = sel2.channel_for(ev.key) {
                        while let Ok(RecvOutcome::Msg(m)) = chan.read(sim) {
                            println!("[server] echoing {} bytes", m.len());
                            chan.write(sim, &m).expect("echo");
                        }
                    }
                }
            }
            serve(sel2, server, sim);
        });
    }
    serve(selector, server.clone(), &mut tb.sim);

    // --- Client: connect and send messages of growing size. ------------
    let client = RdmaChannel::connect(
        &mut tb.sim,
        &dev_client,
        Addr::new(tb.b, 4242),
        cfg.clone(),
        CoreId(0),
    )
    .expect("connect");
    let client_sel = RdmaSelector::new(&dev_client, CoreId(0), cfg.select_ns);
    client_sel.register_channel(
        &mut tb.sim,
        &client,
        Interest::OP_ACCEPT | Interest::OP_RECEIVE,
    );
    tb.sim.run_until_idle();
    assert!(client.is_established(), "connection must establish");
    println!("[client] connected over simulated RoCE");

    for size in [64usize, 1024, 16 * 1024, 100 * 1024] {
        let msg: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let sent_at = tb.sim.now();
        client.write(&mut tb.sim, &msg).expect("write accepted");
        // Drive the simulation until the echo arrives.
        let reply = loop {
            tb.sim.run_until_idle();
            client.process_completions(&mut tb.sim);
            match client.read(&mut tb.sim).expect("read") {
                RecvOutcome::Msg(m) => break m,
                RecvOutcome::WouldBlock => continue,
                RecvOutcome::Eof => panic!("server disconnected"),
            }
        };
        assert_eq!(reply, msg, "payload integrity");
        println!(
            "[client] {:>6} B echoed in {} (pre-registered pools, selective signaling)",
            size,
            tb.sim.now() - sent_at
        );
    }

    let st = client.stats();
    println!(
        "\nclient stats: {} msgs sent ({} inline, {} pooled), {} signaled, {} received",
        st.msgs_sent, st.inline_sends, st.copied_sends, st.signaled_sends, st.msgs_received
    );
    println!("simulated time elapsed: {}", tb.sim.now());
}
