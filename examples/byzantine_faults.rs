//! Byzantine fault injection demo: equivocating and silent primaries,
//! corrupted MACs, and a network partition — PBFT keeps safety in all of
//! them and liveness whenever at most f replicas are faulty.
//!
//! Run with: `cargo run --example byzantine_faults`

use reptor::{ByzantineMode, Cluster, CounterService, ReptorConfig};

fn scenario(name: &str, seed: u64, fault: impl FnOnce(&mut Cluster)) {
    println!("== {name} ==");
    let mut c = Cluster::sim_transport(ReptorConfig::small(), 1, seed, || {
        Box::new(CounterService::default())
    });
    fault(&mut c);
    let client = c.clients[0].clone();
    for _ in 0..5 {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    let done = c.run_until_completed(5, 10_000_000);
    c.assert_safety();
    let views: Vec<u64> = c.replicas.iter().map(|r| r.view()).collect();
    let execs: Vec<u64> = c.replicas.iter().map(|r| r.last_executed()).collect();
    let dropped: u64 = c.replicas.iter().map(|r| r.stats().bad_mac_dropped).sum();
    println!(
        "  completed: {done}, views: {views:?}, executed: {execs:?}, bad MACs dropped: {dropped}"
    );
    println!(
        "  client: {} completed, {} retransmissions\n",
        client.stats().completed,
        client.stats().retransmissions
    );
    assert!(done, "{name}: liveness lost");
}

fn main() {
    scenario("baseline (no faults)", 1, |_c| {});

    scenario("silent primary — view change removes it", 2, |c| {
        c.replicas[0].set_byzantine(ByzantineMode::SilentPrimary);
    });

    scenario(
        "equivocating primary — safety preserved, then ousted",
        3,
        |c| {
            c.replicas[0].set_byzantine(ByzantineMode::EquivocatingPrimary);
        },
    );

    scenario(
        "replica sending corrupted MACs — detected and ignored",
        4,
        |c| {
            c.replicas[2].set_byzantine(ByzantineMode::CorruptMacs);
        },
    );

    scenario("crashed backup — quorum of 3 of 4 suffices", 5, |c| {
        c.replicas[3].set_byzantine(ByzantineMode::Crash);
    });

    scenario("partitioned backup — blackholed but safe", 6, |c| {
        let hosts: Vec<simnet::HostId> = (0..5).map(simnet::HostId).collect();
        let isolated = hosts[3];
        c.net.with_faults(|f| {
            for &h in &hosts {
                if h != isolated {
                    f.partition(h, isolated);
                }
            }
        });
    });

    println!("all Byzantine scenarios preserved safety; liveness held with f <= 1 faults");
}
