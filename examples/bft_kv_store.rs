//! A Byzantine fault-tolerant key/value store whose replicas communicate
//! over RUBIN (RDMA) — the paper's target system: Reptor with the RDMA
//! comm stack.
//!
//! Four replicas (f = 1) run PBFT; a client performs puts/gets and waits
//! for f+1 matching replies. One replica is crashed mid-run to show the
//! service staying available.
//!
//! Run with: `cargo run --example bft_kv_store`

use std::rc::Rc;

use rdma_verbs::RnicModel;
use reptor::{
    ByzantineMode, Client, KvOp, KvService, NodeId, Replica, ReptorConfig, RubinTransport,
    Transport, DOMAIN_SECRET,
};
use rubin::RubinConfig;
use simnet::{CoreId, HostId, TestBed};

fn main() {
    let cfg = ReptorConfig::small();
    let n = cfg.n;
    let (mut sim, net, hosts) = TestBed::cluster(7, n + 1);
    let nodes: Vec<(NodeId, HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();

    // Replica communication over the RUBIN RDMA stack.
    let transports = RubinTransport::build_group(
        &mut sim,
        &net,
        &nodes,
        RnicModel::mt27520(),
        RubinConfig::paper(),
    );
    sim.run_until_idle(); // connection management settles

    let replicas: Vec<Replica> = (0..n)
        .map(|i| {
            Replica::new(
                i as u32,
                cfg.clone(),
                DOMAIN_SECRET,
                Rc::new(transports[i].clone()) as Rc<dyn Transport>,
                &net,
                hosts[i],
                Box::new(KvService::default()),
            )
        })
        .collect();
    let client = Client::new(n as u32, cfg.clone(), DOMAIN_SECRET, {
        Rc::new(transports[n].clone()) as Rc<dyn Transport>
    });

    let run = |sim: &mut simnet::Simulator, want: u64| {
        let mut guard = 0u64;
        while client.stats().completed < want {
            assert!(sim.step(), "cluster went idle early");
            guard += 1;
            assert!(guard < 20_000_000, "stalled");
        }
    };

    println!("== putting keys through BFT consensus over RDMA ==");
    let mut want = 0;
    for (k, v) in [("alice", "42"), ("bob", "17"), ("carol", "99")] {
        client.submit(
            &mut sim,
            KvOp::Put(k.as_bytes().to_vec(), v.as_bytes().to_vec()).encode(),
        );
        want += 1;
    }
    run(&mut sim, want);
    for c in client.completions() {
        println!(
            "  put #{} -> {:?} in {}",
            c.timestamp,
            String::from_utf8_lossy(&c.result),
            c.latency()
        );
    }

    println!("\n== crashing replica 3 (f = 1 tolerated) ==");
    replicas[3].set_byzantine(ByzantineMode::Crash);

    client.submit(&mut sim, KvOp::Get(b"bob".to_vec()).encode());
    want += 1;
    run(&mut sim, want);
    let got = client.completions().last().unwrap().clone();
    println!(
        "  get bob -> {:?} in {} (despite the crash)",
        String::from_utf8_lossy(&got.result),
        got.latency()
    );
    assert_eq!(got.result, b"17");

    println!("\n== replica states ==");
    for r in &replicas {
        let digest = r.with_service(|s| s.state_digest());
        println!(
            "  replica {}: executed {} requests, state digest {}",
            r.id(),
            r.stats().executed_requests,
            digest.short()
        );
    }
    println!("\nRDMA transport stats (replica 0): {:?}", transports[0]);
}
