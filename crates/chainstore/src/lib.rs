//! # chainstore — a permissioned blockchain on BFT consensus
//!
//! The paper motivates RDMA-accelerated BFT with permissioned blockchains:
//! replicas placed inside a data center order transactions with a BFT
//! protocol instead of proof-of-work, gaining consensus finality, higher
//! throughput and lower latency (§I). `chainstore` is that application
//! layer: a hash-chained ledger of asset transfers and supply-chain
//! custody records, replicated through [`reptor`]'s PBFT.
//!
//! * [`Transaction`] — transfers, SCM shipment records, mints.
//! * [`Block`] / [`Chain`] — hash-linked blocks with tamper detection.
//! * [`LedgerService`] — the [`reptor::StateMachine`] that validates
//!   transactions, maintains balances/custody and seals blocks.
//!
//! # Example: a replica group agreeing on a chain
//!
//! ```
//! use chainstore::{LedgerService, Transaction};
//! use reptor::{Cluster, ReptorConfig};
//!
//! let mut cluster = Cluster::sim_transport(
//!     ReptorConfig::small(), 1, 3, || Box::new(LedgerService::new(2)),
//! );
//! let client = cluster.clients[0].clone();
//! client.submit(&mut cluster.sim, Transaction::mint("alice", 100).encode());
//! client.submit(&mut cluster.sim, Transaction::transfer("alice", "bob", 40).encode());
//! assert!(cluster.run_until_completed(2, 2_000_000));
//! cluster.assert_safety();
//! ```

#![warn(missing_docs)]

mod block;
mod ledger;
mod tx;

pub use block::{Block, Chain, ChainError};
pub use ledger::{results, LedgerService};
pub use tx::Transaction;

#[cfg(test)]
mod tests {
    use super::*;
    use reptor::{Cluster, ReptorConfig};

    #[test]
    fn replicas_build_identical_chains() {
        let mut c = Cluster::sim_transport(ReptorConfig::small(), 1, 21, || {
            Box::new(LedgerService::new(2))
        });
        let client = c.clients[0].clone();
        client.submit(&mut c.sim, Transaction::mint("alice", 100).encode());
        client.submit(
            &mut c.sim,
            Transaction::transfer("alice", "bob", 10).encode(),
        );
        client.submit(
            &mut c.sim,
            Transaction::transfer("alice", "bob", 20).encode(),
        );
        client.submit(
            &mut c.sim,
            Transaction::shipment("item-7", "alice", "bob", "hamburg").encode(),
        );
        assert!(c.run_until_completed(4, 3_000_000));
        c.settle();
        c.assert_safety();
        // All replicas expose the same state digest, i.e. the same chain.
        let digests: Vec<_> = c
            .replicas
            .iter()
            .map(|r| r.with_service(|s| s.state_digest()))
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "replica chains diverged"
        );
    }

    #[test]
    fn double_spend_rejected_by_all_replicas() {
        let mut c = Cluster::sim_transport(ReptorConfig::small(), 1, 22, || {
            Box::new(LedgerService::new(4))
        });
        let client = c.clients[0].clone();
        client.submit(&mut c.sim, Transaction::mint("alice", 50).encode());
        client.submit(
            &mut c.sim,
            Transaction::transfer("alice", "bob", 40).encode(),
        );
        // Alice only has 10 left; this must be rejected deterministically.
        client.submit(
            &mut c.sim,
            Transaction::transfer("alice", "carol", 40).encode(),
        );
        assert!(c.run_until_completed(3, 3_000_000));
        c.settle();
        let comps = client.completions();
        let last = comps.iter().find(|cm| cm.timestamp == 3).unwrap();
        assert_eq!(last.result, results::INSUFFICIENT);
        c.assert_safety();
    }
}
