//! Transactions for the permissioned ledger.
//!
//! Two transaction families cover the paper's motivating use cases (§I):
//! asset transfers (the cryptocurrency case) and supply-chain-management
//! records (the permissioned SCM case).

use bft_crypto::Digest;

/// A ledger transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transaction {
    /// Moves `amount` from one account to another.
    Transfer {
        /// Source account.
        from: String,
        /// Destination account.
        to: String,
        /// Amount in minimal units.
        amount: u64,
    },
    /// Records a supply-chain custody event for an item.
    Shipment {
        /// Item identifier.
        item: String,
        /// Releasing party.
        from: String,
        /// Receiving party.
        to: String,
        /// Location of the hand-over.
        location: String,
    },
    /// Mints new funds to an account (genesis/faucet, permissioned only).
    Mint {
        /// Receiving account.
        to: String,
        /// Amount in minimal units.
        amount: u64,
    },
}

impl Transaction {
    /// Convenience constructor for transfers.
    pub fn transfer(from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::Transfer {
            from: from.into(),
            to: to.into(),
            amount,
        }
    }

    /// Convenience constructor for shipments.
    pub fn shipment(item: &str, from: &str, to: &str, location: &str) -> Transaction {
        Transaction::Shipment {
            item: item.into(),
            from: from.into(),
            to: to.into(),
            location: location.into(),
        }
    }

    /// Convenience constructor for mints.
    pub fn mint(to: &str, amount: u64) -> Transaction {
        Transaction::Mint {
            to: to.into(),
            amount,
        }
    }

    /// The transaction digest.
    pub fn digest(&self) -> Digest {
        Digest::of(&self.encode())
    }

    /// Binary encoding (used as the BFT request payload).
    pub fn encode(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::new();
        match self {
            Transaction::Transfer { from, to, amount } => {
                out.push(0);
                put_str(&mut out, from);
                put_str(&mut out, to);
                out.extend_from_slice(&amount.to_le_bytes());
            }
            Transaction::Shipment {
                item,
                from,
                to,
                location,
            } => {
                out.push(1);
                put_str(&mut out, item);
                put_str(&mut out, from);
                put_str(&mut out, to);
                put_str(&mut out, location);
            }
            Transaction::Mint { to, amount } => {
                out.push(2);
                put_str(&mut out, to);
                out.extend_from_slice(&amount.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a transaction; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<Transaction> {
        fn get_str(buf: &[u8]) -> Option<(String, &[u8])> {
            if buf.len() < 4 {
                return None;
            }
            let len = u32::from_le_bytes(buf[..4].try_into().ok()?) as usize;
            let rest = &buf[4..];
            if rest.len() < len {
                return None;
            }
            let s = String::from_utf8(rest[..len].to_vec()).ok()?;
            Some((s, &rest[len..]))
        }
        fn get_u64(buf: &[u8]) -> Option<(u64, &[u8])> {
            if buf.len() < 8 {
                return None;
            }
            Some((u64::from_le_bytes(buf[..8].try_into().ok()?), &buf[8..]))
        }
        let (&tag, rest) = buf.split_first()?;
        match tag {
            0 => {
                let (from, rest) = get_str(rest)?;
                let (to, rest) = get_str(rest)?;
                let (amount, rest) = get_u64(rest)?;
                rest.is_empty()
                    .then_some(Transaction::Transfer { from, to, amount })
            }
            1 => {
                let (item, rest) = get_str(rest)?;
                let (from, rest) = get_str(rest)?;
                let (to, rest) = get_str(rest)?;
                let (location, rest) = get_str(rest)?;
                rest.is_empty().then_some(Transaction::Shipment {
                    item,
                    from,
                    to,
                    location,
                })
            }
            2 => {
                let (to, rest) = get_str(rest)?;
                let (amount, rest) = get_u64(rest)?;
                rest.is_empty().then_some(Transaction::Mint { to, amount })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let txs = [
            Transaction::transfer("alice", "bob", 42),
            Transaction::shipment("pallet-9", "factory", "warehouse", "hamburg"),
            Transaction::mint("alice", 1_000),
        ];
        for tx in txs {
            assert_eq!(Transaction::decode(&tx.encode()), Some(tx));
        }
    }

    #[test]
    fn digests_are_distinct() {
        let a = Transaction::transfer("alice", "bob", 42);
        let b = Transaction::transfer("alice", "bob", 43);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn malformed_input_rejected() {
        assert_eq!(Transaction::decode(&[]), None);
        assert_eq!(Transaction::decode(&[9]), None);
        assert_eq!(Transaction::decode(&[0, 255, 255, 255, 255]), None);
        let mut enc = Transaction::mint("x", 1).encode();
        enc.push(0);
        assert_eq!(Transaction::decode(&enc), None);
        // Non-UTF8 account names rejected.
        let mut bad = vec![2u8, 2, 0, 0, 0, 0xFF, 0xFE];
        bad.extend_from_slice(&1u64.to_le_bytes());
        assert_eq!(Transaction::decode(&bad), None);
    }
}
