//! The ledger state machine: account balances, custody records and the
//! hash chain, replicated through Reptor.

use std::collections::BTreeMap;

use bft_crypto::Digest;
use reptor::{Request, StateMachine};
use simnet::Nanos;

use crate::block::Chain;
use crate::tx::Transaction;

/// Result codes returned to clients.
pub mod results {
    /// Transaction accepted into the ledger.
    pub const OK: &[u8] = b"OK";
    /// Transfer refused: insufficient funds.
    pub const INSUFFICIENT: &[u8] = b"INSUFFICIENT";
    /// Request payload was not a valid transaction.
    pub const MALFORMED: &[u8] = b"MALFORMED";
}

/// A replicated permissioned ledger.
///
/// Every committed transaction is appended to the current block; a block is
/// sealed onto the [`Chain`] every `block_size` transactions. Because PBFT
/// delivers the same request sequence to every correct replica, all correct
/// replicas build byte-identical chains — the property the blockchain's
/// consensus-finality claim rests on (paper §I: "a block that has been
/// appended to the chain cannot be invalidated due to forks").
#[derive(Debug)]
pub struct LedgerService {
    chain: Chain,
    block_size: usize,
    pending: Vec<Transaction>,
    balances: BTreeMap<String, u64>,
    /// Custody history per item: `(location, holder)` events.
    custody: BTreeMap<String, Vec<(String, String)>>,
    applied: u64,
}

impl LedgerService {
    /// Creates a ledger sealing a block every `block_size` transactions.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> LedgerService {
        assert!(block_size > 0, "block size must be positive");
        LedgerService {
            chain: Chain::new(),
            block_size,
            pending: Vec::new(),
            balances: BTreeMap::new(),
            custody: BTreeMap::new(),
            applied: 0,
        }
    }

    /// The chain built so far.
    pub fn chain(&self) -> &Chain {
        &self.chain
    }

    /// An account's balance (zero if unknown).
    pub fn balance(&self, account: &str) -> u64 {
        self.balances.get(account).copied().unwrap_or(0)
    }

    /// Custody trail of an item.
    pub fn custody_of(&self, item: &str) -> &[(String, String)] {
        self.custody.get(item).map_or(&[], Vec::as_slice)
    }

    /// Transactions applied (including those in the unsealed block).
    pub fn applied_count(&self) -> u64 {
        self.applied
    }

    /// Applies a transaction directly (local/demo use; replicated
    /// deployments go through [`StateMachine::apply`]).
    pub fn apply_tx(&mut self, timestamp: u64, tx: &Transaction) -> Vec<u8> {
        self.apply(&Request {
            client: 0,
            timestamp,
            payload: tx.encode(),
        })
    }

    fn execute(&mut self, tx: &Transaction) -> Vec<u8> {
        match tx {
            Transaction::Transfer { from, to, amount } => {
                let have = self.balance(from);
                if have < *amount {
                    return results::INSUFFICIENT.to_vec();
                }
                *self.balances.entry(from.clone()).or_insert(0) -= amount;
                *self.balances.entry(to.clone()).or_insert(0) += amount;
                results::OK.to_vec()
            }
            Transaction::Shipment {
                item, to, location, ..
            } => {
                self.custody
                    .entry(item.clone())
                    .or_default()
                    .push((location.clone(), to.clone()));
                results::OK.to_vec()
            }
            Transaction::Mint { to, amount } => {
                *self.balances.entry(to.clone()).or_insert(0) += amount;
                results::OK.to_vec()
            }
        }
    }
}

impl StateMachine for LedgerService {
    fn apply(&mut self, req: &Request) -> Vec<u8> {
        let Some(tx) = Transaction::decode(&req.payload) else {
            return results::MALFORMED.to_vec();
        };
        let result = self.execute(&tx);
        if result == results::OK {
            self.pending.push(tx);
            self.applied += 1;
            if self.pending.len() >= self.block_size {
                let block = self.chain.next_block(std::mem::take(&mut self.pending));
                self.chain
                    .append(block)
                    .expect("locally built block always extends the tip");
            }
        }
        result
    }

    fn state_digest(&self) -> Digest {
        // Tip hash + count of unsealed transactions + their digests.
        let tip = self.chain.tip().hash();
        let pending: Vec<Digest> = self.pending.iter().map(Transaction::digest).collect();
        let mut parts: Vec<&[u8]> = Vec::with_capacity(pending.len() + 2);
        parts.push(tip.as_ref());
        let count = self.applied.to_le_bytes();
        parts.push(&count);
        for d in &pending {
            parts.push(d.as_ref());
        }
        Digest::of_parts(&parts)
    }

    fn op_cost(&self, req: &Request) -> Nanos {
        // Transaction validation + balance update + hash amortization.
        Nanos::from_nanos(3_000 + 2 * req.payload.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tx: &Transaction) -> Request {
        Request {
            client: 9,
            timestamp: 1,
            payload: tx.encode(),
        }
    }

    #[test]
    fn transfers_respect_balances() {
        let mut l = LedgerService::new(4);
        assert_eq!(
            l.apply(&req(&Transaction::transfer("alice", "bob", 10))),
            results::INSUFFICIENT
        );
        assert_eq!(l.apply(&req(&Transaction::mint("alice", 100))), results::OK);
        assert_eq!(
            l.apply(&req(&Transaction::transfer("alice", "bob", 30))),
            results::OK
        );
        assert_eq!(l.balance("alice"), 70);
        assert_eq!(l.balance("bob"), 30);
    }

    #[test]
    fn blocks_seal_every_block_size_txs() {
        let mut l = LedgerService::new(2);
        l.apply(&req(&Transaction::mint("a", 1)));
        assert_eq!(l.chain().len(), 1, "first tx stays pending");
        l.apply(&req(&Transaction::mint("a", 1)));
        assert_eq!(l.chain().len(), 2, "second tx seals a block");
        l.apply(&req(&Transaction::mint("a", 1)));
        l.apply(&req(&Transaction::mint("a", 1)));
        assert_eq!(l.chain().len(), 3);
        l.chain().verify().unwrap();
        assert_eq!(l.chain().total_transactions(), 4);
    }

    #[test]
    fn rejected_txs_do_not_enter_blocks() {
        let mut l = LedgerService::new(1);
        l.apply(&req(&Transaction::transfer("nobody", "x", 5)));
        assert_eq!(l.chain().len(), 1);
        assert_eq!(l.applied_count(), 0);
        l.apply(&Request {
            client: 9,
            timestamp: 2,
            payload: b"not-a-tx".to_vec(),
        });
        assert_eq!(l.chain().len(), 1);
    }

    #[test]
    fn custody_trail_accumulates() {
        let mut l = LedgerService::new(8);
        l.apply(&req(&Transaction::shipment(
            "item-1", "factory", "carrier", "hamburg",
        )));
        l.apply(&req(&Transaction::shipment(
            "item-1", "carrier", "store", "berlin",
        )));
        let trail = l.custody_of("item-1");
        assert_eq!(trail.len(), 2);
        assert_eq!(trail[0], ("hamburg".to_string(), "carrier".to_string()));
        assert_eq!(trail[1], ("berlin".to_string(), "store".to_string()));
        assert!(l.custody_of("other").is_empty());
    }

    #[test]
    fn state_digest_reflects_pending_and_sealed() {
        let mut a = LedgerService::new(2);
        let mut b = LedgerService::new(2);
        assert_eq!(a.state_digest(), b.state_digest());
        a.apply(&req(&Transaction::mint("x", 1)));
        assert_ne!(a.state_digest(), b.state_digest());
        b.apply(&req(&Transaction::mint("x", 1)));
        assert_eq!(a.state_digest(), b.state_digest());
        a.apply(&req(&Transaction::mint("x", 1)));
        b.apply(&req(&Transaction::mint("x", 1)));
        assert_eq!(a.state_digest(), b.state_digest());
        assert_eq!(a.chain().len(), 2);
    }
}
