//! Blocks and the hash chain.
//!
//! The paper's motivating deployment is a permissioned blockchain whose
//! consensus is run by BFT replicas inside a data center (§I). A block
//! holds ordered transactions and the hash of its predecessor, so any
//! mutation of history is immediately detectable.

use bft_crypto::Digest;

use crate::tx::Transaction;

/// A block of ordered transactions, chained by parent hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Hash of the predecessor block (zero for genesis).
    pub parent: Digest,
    /// The ordered transactions.
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// The genesis block.
    pub fn genesis() -> Block {
        Block {
            height: 0,
            parent: Digest::ZERO,
            transactions: Vec::new(),
        }
    }

    /// The block's hash: covers height, parent and every transaction.
    pub fn hash(&self) -> Digest {
        let tx_digests: Vec<Digest> = self.transactions.iter().map(Transaction::digest).collect();
        let mut parts: Vec<&[u8]> = Vec::with_capacity(tx_digests.len() + 2);
        let height = self.height.to_le_bytes();
        parts.push(&height);
        parts.push(self.parent.as_ref());
        for d in &tx_digests {
            parts.push(d.as_ref());
        }
        Digest::of_parts(&parts)
    }
}

/// An append-only, integrity-checked chain of blocks.
#[derive(Debug, Clone)]
pub struct Chain {
    blocks: Vec<Block>,
}

/// Why a block was rejected by [`Chain::append`] or why
/// [`Chain::verify`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The block's height is not `tip + 1`.
    WrongHeight {
        /// Height the chain expected.
        expected: u64,
        /// Height the block carried.
        got: u64,
    },
    /// The block's parent hash does not match the tip.
    WrongParent {
        /// Height at which the mismatch occurred.
        height: u64,
    },
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::WrongHeight { expected, got } => {
                write!(f, "expected block height {expected}, got {got}")
            }
            ChainError::WrongParent { height } => {
                write!(f, "parent hash mismatch at height {height}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

impl Default for Chain {
    fn default() -> Chain {
        Chain::new()
    }
}

impl Chain {
    /// Creates a chain holding only the genesis block.
    pub fn new() -> Chain {
        Chain {
            blocks: vec![Block::genesis()],
        }
    }

    /// Number of blocks (including genesis).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Always false: the genesis block is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The newest block.
    pub fn tip(&self) -> &Block {
        self.blocks.last().expect("genesis always present")
    }

    /// The block at `height`, if present.
    pub fn get(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    /// Builds the successor block for the given transactions (does not
    /// append it).
    pub fn next_block(&self, transactions: Vec<Transaction>) -> Block {
        Block {
            height: self.tip().height + 1,
            parent: self.tip().hash(),
            transactions,
        }
    }

    /// Appends a block after validating height and parent hash.
    ///
    /// # Errors
    ///
    /// [`ChainError`] if the block does not extend the tip.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let expected = self.tip().height + 1;
        if block.height != expected {
            return Err(ChainError::WrongHeight {
                expected,
                got: block.height,
            });
        }
        if block.parent != self.tip().hash() {
            return Err(ChainError::WrongParent {
                height: block.height,
            });
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Re-validates the whole chain; returns the height of the first
    /// broken link, if any.
    ///
    /// # Errors
    ///
    /// [`ChainError::WrongParent`] at the first tampered block.
    pub fn verify(&self) -> Result<(), ChainError> {
        for w in self.blocks.windows(2) {
            if w[1].parent != w[0].hash() {
                return Err(ChainError::WrongParent {
                    height: w[1].height,
                });
            }
        }
        Ok(())
    }

    /// Total transactions across all blocks.
    pub fn total_transactions(&self) -> usize {
        self.blocks.iter().map(|b| b.transactions.len()).sum()
    }

    /// Mutable access for tamper-injection in tests.
    #[doc(hidden)]
    pub fn tamper(&mut self, height: u64, f: impl FnOnce(&mut Block)) {
        if let Some(b) = self.blocks.get_mut(height as usize) {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Transaction;

    fn tx(n: u8) -> Transaction {
        Transaction::transfer("alice", "bob", n as u64)
    }

    #[test]
    fn append_maintains_links() {
        let mut chain = Chain::new();
        for i in 0..5u8 {
            let b = chain.next_block(vec![tx(i)]);
            chain.append(b).unwrap();
        }
        assert_eq!(chain.len(), 6);
        assert_eq!(chain.total_transactions(), 5);
        chain.verify().unwrap();
    }

    #[test]
    fn wrong_height_rejected() {
        let mut chain = Chain::new();
        let mut b = chain.next_block(vec![]);
        b.height = 7;
        assert!(matches!(
            chain.append(b),
            Err(ChainError::WrongHeight {
                expected: 1,
                got: 7
            })
        ));
    }

    #[test]
    fn wrong_parent_rejected() {
        let mut chain = Chain::new();
        let mut b = chain.next_block(vec![]);
        b.parent = Digest::of(b"bogus");
        assert!(matches!(
            chain.append(b),
            Err(ChainError::WrongParent { height: 1 })
        ));
    }

    #[test]
    fn tampering_is_detected() {
        let mut chain = Chain::new();
        for i in 0..4u8 {
            let b = chain.next_block(vec![tx(i)]);
            chain.append(b).unwrap();
        }
        chain.verify().unwrap();
        // Mutate a transaction in block 2: the link from block 3 breaks.
        chain.tamper(2, |b| {
            b.transactions[0] = Transaction::transfer("mallory", "mallory", 1_000_000);
        });
        assert_eq!(chain.verify(), Err(ChainError::WrongParent { height: 3 }));
    }

    #[test]
    fn block_hash_covers_everything() {
        let b1 = Block {
            height: 1,
            parent: Digest::ZERO,
            transactions: vec![tx(1)],
        };
        let mut b2 = b1.clone();
        b2.height = 2;
        assert_ne!(b1.hash(), b2.hash());
        let mut b3 = b1.clone();
        b3.parent = Digest::of(b"other");
        assert_ne!(b1.hash(), b3.hash());
        let mut b4 = b1.clone();
        b4.transactions = vec![tx(2)];
        assert_ne!(b1.hash(), b4.hash());
    }
}
