//! The RDMA server channel: RUBIN's analogue of `ServerSocketChannel`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use rdma_verbs::{CmListener, ConnRequest, RdmaDevice};
use simnet::{Addr, CoreId, Simulator};

use crate::channel::{ChannelError, RdmaChannel};
use crate::config::RubinConfig;
use crate::event::{Interest, RubinKey};
use crate::selector::RdmaSelector;

struct ServerInner {
    device: RdmaDevice,
    #[allow(dead_code)]
    listener: CmListener,
    port: u32,
    cfg: RubinConfig,
    core: CoreId,
    pending: VecDeque<ConnRequest>,
    reg: Option<(RdmaSelector, RubinKey)>,
    accepted: u64,
}

/// A listening RDMA channel that accepts inbound connections.
///
/// Incoming connection requests raise `OP_CONNECT` readiness (paper
/// §III-B naming); [`RdmaServerChannel::accept`] turns each request into a
/// fully configured [`RdmaChannel`].
#[derive(Clone)]
pub struct RdmaServerChannel {
    inner: Rc<RefCell<ServerInner>>,
}

impl fmt::Debug for RdmaServerChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("RdmaServerChannel")
            .field("port", &inner.port)
            .field("pending", &inner.pending.len())
            .field("accepted", &inner.accepted)
            .finish()
    }
}

impl RdmaServerChannel {
    /// Binds a server channel on `port`. Accepted channels use `cfg` and
    /// are charged to `core`.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Verbs`] if the port is in use.
    pub fn bind(
        device: &RdmaDevice,
        port: u32,
        cfg: RubinConfig,
        core: CoreId,
    ) -> Result<RdmaServerChannel, ChannelError> {
        cfg.validate();
        let listener = device.listen(port)?;
        Ok(RdmaServerChannel {
            inner: Rc::new(RefCell::new(ServerInner {
                device: device.clone(),
                listener,
                port,
                cfg,
                core,
                pending: VecDeque::new(),
                reg: None,
                accepted: 0,
            })),
        })
    }

    /// The port this server listens on.
    pub fn port(&self) -> u32 {
        self.inner.borrow().port
    }

    /// The listening address.
    pub fn local_addr(&self) -> Addr {
        Addr::new(self.inner.borrow().device.host(), self.port())
    }

    /// Connections accepted so far.
    pub fn accepted_count(&self) -> u64 {
        self.inner.borrow().accepted
    }

    /// Number of queued, not-yet-accepted connection requests.
    pub fn pending_count(&self) -> usize {
        self.inner.borrow().pending.len()
    }

    pub(crate) fn set_registration(&self, selector: &RdmaSelector, key: RubinKey) {
        self.inner.borrow_mut().reg = Some((selector.clone(), key));
    }

    /// Queues an inbound connection request (selector dispatch; exposed for
    /// driving servers without a selector).
    pub fn push_request(&self, sim: &mut Simulator, req: ConnRequest) {
        let reg = {
            let mut inner = self.inner.borrow_mut();
            inner.pending.push_back(req);
            inner.reg.clone()
        };
        if let Some((sel, key)) = reg {
            sel.set_ready(sim, key, Interest::OP_CONNECT, true);
        }
    }

    /// Accepts one pending connection, returning the connected channel.
    /// `None` if nothing is pending.
    ///
    /// # Errors
    ///
    /// Propagates channel-construction failures.
    pub fn accept(&self, sim: &mut Simulator) -> Result<Option<RdmaChannel>, ChannelError> {
        let (req, device, cfg, core) = {
            let mut inner = self.inner.borrow_mut();
            let Some(req) = inner.pending.pop_front() else {
                return Ok(None);
            };
            (req, inner.device.clone(), inner.cfg.clone(), inner.core)
        };
        let channel = RdmaChannel::from_accepted(sim, &device, req, cfg, core)?;
        let reg = {
            let mut inner = self.inner.borrow_mut();
            inner.accepted += 1;
            inner.reg.clone()
        };
        if let Some((sel, key)) = reg {
            let still = self.pending_count() > 0;
            sel.set_ready(sim, key, Interest::OP_CONNECT, still);
        }
        Ok(Some(channel))
    }
}
