//! Pre-registered buffer pools.
//!
//! Memory registration is expensive (ioctl + page pinning), so RUBIN
//! registers a pool of fixed-size buffers once at channel creation and
//! recycles them (paper §IV: "a pool of buffers for send and receive
//! requests are pre-registered and can be reused as needed").

use rdma_verbs::{Access, MemoryRegion, ProtectionDomain, RdmaDevice};

/// Index of a slab within its pool.
pub type SlabIndex = usize;

/// Pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful lends.
    pub lends: u64,
    /// Lend attempts that found the pool empty.
    pub exhaustions: u64,
    /// Maximum simultaneously outstanding slabs.
    pub high_water: usize,
}

/// A fixed pool of equally sized, pre-registered memory regions.
#[derive(Debug)]
pub struct BufferPool {
    slabs: Vec<MemoryRegion>,
    free: Vec<SlabIndex>,
    outstanding: usize,
    stats: PoolStats,
    /// Shared registry plus this pool's `rubin.{host}.pool.` key prefix
    /// (pools on one host aggregate into the same counters).
    metrics: simnet::Metrics,
    metrics_prefix: String,
}

impl BufferPool {
    /// Registers `count` buffers of `size` bytes in `pd` with the given
    /// access flags.
    pub fn register(
        device: &RdmaDevice,
        pd: &ProtectionDomain,
        count: usize,
        size: usize,
        access: Access,
    ) -> BufferPool {
        assert!(count > 0 && size > 0, "pool must have positive dimensions");
        let slabs = (0..count)
            .map(|_| device.reg_mr(pd, size, access))
            .collect();
        BufferPool {
            slabs,
            free: (0..count).rev().collect(),
            outstanding: 0,
            stats: PoolStats::default(),
            metrics: device.net().metrics(),
            metrics_prefix: format!("rubin.{}.pool.", device.host()),
        }
    }

    /// Number of buffers in the pool.
    pub fn capacity(&self) -> usize {
        self.slabs.len()
    }

    /// Number of free buffers.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Borrows a free slab, if any.
    pub fn lend(&mut self) -> Option<(SlabIndex, MemoryRegion)> {
        match self.free.pop() {
            Some(idx) => {
                self.outstanding += 1;
                self.stats.lends += 1;
                self.stats.high_water = self.stats.high_water.max(self.outstanding);
                self.metrics.incr(&format!("{}lends", self.metrics_prefix));
                Some((idx, self.slabs[idx].clone()))
            }
            None => {
                self.stats.exhaustions += 1;
                self.metrics
                    .incr(&format!("{}exhaustions", self.metrics_prefix));
                None
            }
        }
    }

    /// Returns a previously lent slab.
    ///
    /// # Panics
    ///
    /// Panics on double-return or an index that was never lent.
    pub fn give_back(&mut self, idx: SlabIndex) {
        assert!(idx < self.slabs.len(), "slab index {idx} out of range");
        assert!(
            !self.free.contains(&idx),
            "slab {idx} returned twice to the pool"
        );
        self.free.push(idx);
        self.outstanding -= 1;
    }

    /// The region backing slab `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn slab(&self, idx: SlabIndex) -> &MemoryRegion {
        &self.slabs[idx]
    }

    /// Pool statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_verbs::RnicModel;
    use simnet::TestBed;

    fn pool(count: usize) -> BufferPool {
        let tb = TestBed::paper_testbed(0);
        let dev = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
        let pd = dev.alloc_pd();
        BufferPool::register(&dev, &pd, count, 1024, Access::LOCAL_WRITE)
    }

    #[test]
    fn lend_and_return_cycles() {
        let mut p = pool(2);
        assert_eq!(p.capacity(), 2);
        let (a, _) = p.lend().unwrap();
        let (b, _) = p.lend().unwrap();
        assert_ne!(a, b);
        assert!(p.lend().is_none());
        assert_eq!(p.stats().exhaustions, 1);
        p.give_back(a);
        let (c, _) = p.lend().unwrap();
        assert_eq!(c, a);
        assert_eq!(p.stats().high_water, 2);
        p.give_back(b);
        p.give_back(c);
        assert_eq!(p.available(), 2);
    }

    #[test]
    fn slabs_are_registered_with_requested_access() {
        let p = pool(1);
        assert!(p.slab(0).access().allows(Access::LOCAL_WRITE));
        assert_eq!(p.slab(0).len(), 1024);
    }

    #[test]
    #[should_panic(expected = "returned twice")]
    fn double_return_panics() {
        let mut p = pool(1);
        let (a, _) = p.lend().unwrap();
        p.give_back(a);
        p.give_back(a);
    }
}
