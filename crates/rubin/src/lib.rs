//! # rubin — the RUBIN RDMA communication framework
//!
//! Reproduction of the paper's contribution: an RDMA communication
//! framework modeled after the Java NIO selector, enabling BFT frameworks
//! (Reptor, BFT-SMaRt, UpRight) to adopt RDMA **without rewriting their
//! communication stack** (paper §III).
//!
//! The pieces map one-to-one onto the paper's Figure 1:
//!
//! * [`RdmaChannel`] — a non-blocking, message-oriented channel wrapping an
//!   RC queue pair and its pre-registered buffer pools, with `read()` /
//!   `write()` in the style of a NIO socket channel.
//! * [`RdmaServerChannel`] — the `ServerSocketChannel` analogue.
//! * [`RdmaSelector`] + [`RubinKey`] selection keys — readiness
//!   multiplexing for many channels on one thread, driven by the
//!   **hybrid event queue** and **event manager** (§III-B, Figure 2).
//! * [`Interest`] — `OP_CONNECT`, `OP_ACCEPT`, `OP_RECEIVE`, `OP_SEND`
//!   (§III-B naming).
//!
//! The §IV optimizations — pre-registered buffer pools, batched posting,
//! selective signaling, send-side zero copy, inline sends — are all
//! implemented and individually togglable through [`RubinConfig`], which
//! the ablation benchmark uses.
//!
//! RUBIN deliberately uses two-sided Send/Receive semantics (§III-A): both
//! sides operate independently and no application buffer is ever exposed to
//! the remote side, which is what makes the framework safe in a Byzantine
//! setting (§III-C) — see the `write_to_read_only_region_denied` and
//! related tests in `rdma-verbs` for the underlying enforcement.
//!
//! # Example: RUBIN connect/accept over the simulated fabric
//!
//! ```
//! use rubin::{Interest, RdmaChannel, RdmaSelector, RdmaServerChannel, RubinConfig};
//! use rdma_verbs::{RdmaDevice, RnicModel};
//! use simnet::{Addr, CoreId, TestBed};
//!
//! let mut tb = TestBed::paper_testbed(42);
//! let dev_a = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
//! let dev_b = RdmaDevice::open(&tb.net, tb.b, RnicModel::mt27520());
//!
//! // Server side: bind, register with a selector, accept on OP_CONNECT.
//! let server = RdmaServerChannel::bind(&dev_b, 4000, RubinConfig::paper(), CoreId(0))?;
//! let sel_b = RdmaSelector::new(&dev_b, CoreId(0), RubinConfig::paper().select_ns);
//! sel_b.register_server(&mut tb.sim, &server);
//! let srv = server.clone();
//! sel_b.select(&mut tb.sim, move |sim, _ready| {
//!     srv.accept(sim).unwrap().unwrap();
//! });
//!
//! // Client side: connect; OP_ACCEPT readiness fires when established.
//! let client = RdmaChannel::connect(&mut tb.sim, &dev_a, Addr::new(tb.b, 4000),
//!                                   RubinConfig::paper(), CoreId(0))?;
//! let sel_a = RdmaSelector::new(&dev_a, CoreId(0), RubinConfig::paper().select_ns);
//! sel_a.register_channel(&mut tb.sim, &client, Interest::OP_ACCEPT);
//!
//! tb.sim.run_until_idle();
//! assert!(client.is_established());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod buffer;
mod channel;
mod config;
mod event;
mod selector;
mod server;

pub use buffer::{BufferPool, PoolStats, SlabIndex};
pub use channel::{
    BorrowedMsg, ChannelError, ChannelStats, RdmaChannel, ReadDoneFn, RecvOutcome, WriteDoneFn,
    WriteDoorbellFn,
};
pub use config::RubinConfig;
pub use event::{HybridEventQueue, Interest, RubinEvent, RubinKey};
pub use selector::{RdmaSelector, SelectedKey};
pub use server::RdmaServerChannel;

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_verbs::{RdmaDevice, RnicModel};
    use simnet::{Addr, CoreId, Nanos, TestBed};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct World {
        tb: TestBed,
        dev_a: RdmaDevice,
        dev_b: RdmaDevice,
    }

    fn world(seed: u64) -> World {
        let tb = TestBed::paper_testbed(seed);
        let dev_a = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
        let dev_b = RdmaDevice::open(&tb.net, tb.b, RnicModel::mt27520());
        World { tb, dev_a, dev_b }
    }

    /// Connects a client channel to a server, driving CM through selectors
    /// on both sides. Returns (client, server-side channel).
    fn connected_channels(w: &mut World, cfg: RubinConfig) -> (RdmaChannel, RdmaChannel) {
        let server = RdmaServerChannel::bind(&w.dev_b, 4000, cfg.clone(), CoreId(0)).unwrap();
        let sel_b = RdmaSelector::new(&w.dev_b, CoreId(0), cfg.select_ns);
        sel_b.register_server(&mut w.tb.sim, &server);

        let sel_a = RdmaSelector::new(&w.dev_a, CoreId(0), cfg.select_ns);
        let client = RdmaChannel::connect(
            &mut w.tb.sim,
            &w.dev_a,
            Addr::new(w.tb.b, 4000),
            cfg,
            CoreId(0),
        )
        .unwrap();
        sel_a.register_channel(
            &mut w.tb.sim,
            &client,
            Interest::OP_ACCEPT | Interest::OP_RECEIVE | Interest::OP_SEND,
        );

        let accepted: Rc<RefCell<Option<RdmaChannel>>> = Rc::new(RefCell::new(None));
        let acc = accepted.clone();
        let srv = server.clone();
        sel_b.select(&mut w.tb.sim, move |sim, ready| {
            assert!(ready[0].ready.contains(Interest::OP_CONNECT));
            *acc.borrow_mut() = srv.accept(sim).unwrap();
        });
        w.tb.sim.run_until_idle();
        let server_chan = accepted.borrow_mut().take().expect("accepted channel");
        assert!(client.is_established(), "client must be established");
        assert!(client.finish_connect(&mut w.tb.sim));
        // Register the accepted channel so its completion events are
        // processed by the selector's event manager.
        sel_b.register_channel(
            &mut w.tb.sim,
            &server_chan,
            Interest::OP_RECEIVE | Interest::OP_SEND,
        );
        (client, server_chan)
    }

    /// Drains the simulator and reads one message.
    fn read_one(w: &mut World, chan: &RdmaChannel) -> Vec<u8> {
        let mut guard = 0;
        loop {
            w.tb.sim.run_until_idle();
            chan.process_completions(&mut w.tb.sim);
            match chan.read(&mut w.tb.sim).unwrap() {
                RecvOutcome::Msg(m) => return m,
                RecvOutcome::WouldBlock => {
                    guard += 1;
                    assert!(guard < 1000, "message never arrived");
                }
                RecvOutcome::Eof => panic!("unexpected EOF"),
            }
        }
    }

    #[test]
    fn connect_accept_and_roundtrip() {
        let mut w = world(1);
        let (client, server) = connected_channels(&mut w, RubinConfig::paper());
        assert!(client.write(&mut w.tb.sim, b"over-rdma").unwrap());
        let got = read_one(&mut w, &server);
        assert_eq!(got, b"over-rdma");
        // Echo back.
        assert!(server.write(&mut w.tb.sim, &got).unwrap());
        let back = read_one(&mut w, &client);
        assert_eq!(back, b"over-rdma");
        assert_eq!(client.stats().msgs_sent, 1);
        assert_eq!(client.stats().msgs_received, 1);
    }

    #[test]
    fn large_message_integrity() {
        let mut w = world(2);
        let (client, server) = connected_channels(&mut w, RubinConfig::paper());
        let payload: Vec<u8> = (0..100 * 1024u32).map(|i| (i * 31 % 251) as u8).collect();
        assert!(client.write(&mut w.tb.sim, &payload).unwrap());
        let got = read_one(&mut w, &server);
        assert_eq!(got, payload);
    }

    #[test]
    fn oversized_message_rejected() {
        let mut w = world(3);
        let (client, _server) = connected_channels(&mut w, RubinConfig::paper());
        let too_big = vec![0u8; RubinConfig::paper().buffer_size + 1];
        assert!(matches!(
            client.write(&mut w.tb.sim, &too_big).unwrap_err(),
            ChannelError::MessageTooLarge { .. }
        ));
    }

    #[test]
    fn write_before_established_fails() {
        let mut w = world(4);
        let _server =
            RdmaServerChannel::bind(&w.dev_b, 4000, RubinConfig::paper(), CoreId(0)).unwrap();
        let client = RdmaChannel::connect(
            &mut w.tb.sim,
            &w.dev_a,
            Addr::new(w.tb.b, 4000),
            RubinConfig::paper(),
            CoreId(0),
        )
        .unwrap();
        assert!(matches!(
            client.write(&mut w.tb.sim, b"x").unwrap_err(),
            ChannelError::NotConnected
        ));
    }

    #[test]
    fn send_path_selection_matches_config() {
        let mut w = world(5);
        let cfg = RubinConfig::future();
        let (client, server) = connected_channels(&mut w, cfg.clone());
        // Inline path.
        client
            .write(&mut w.tb.sim, &vec![1u8; cfg.inline_threshold])
            .unwrap();
        let _ = read_one(&mut w, &server);
        // Zero-copy path (large).
        client.write(&mut w.tb.sim, &vec![2u8; 64 * 1024]).unwrap();
        let _ = read_one(&mut w, &server);
        let st = client.stats();
        assert_eq!(st.inline_sends, 1);
        assert_eq!(st.zero_copy_sends, 1);
        assert_eq!(st.copied_sends, 0);

        // With zero copy off (the evaluated configuration), the large
        // message uses the pooled copy path.
        let mut w2 = world(6);
        let cfg2 = RubinConfig::paper();
        let (client2, server2) = connected_channels(&mut w2, cfg2);
        client2
            .write(&mut w2.tb.sim, &vec![3u8; 64 * 1024])
            .unwrap();
        let _ = read_one(&mut w2, &server2);
        assert_eq!(client2.stats().copied_sends, 1);
        assert_eq!(client2.stats().zero_copy_sends, 0);
    }

    #[test]
    fn selective_signaling_suppresses_completions() {
        let mut w = world(7);
        let cfg = RubinConfig {
            signal_interval: 4,
            ..RubinConfig::paper()
        };
        let (client, server) = connected_channels(&mut w, cfg);
        for i in 0..8u8 {
            assert!(client.write(&mut w.tb.sim, &[i; 100]).unwrap());
        }
        for _ in 0..8 {
            let _ = read_one(&mut w, &server);
        }
        w.tb.sim.run_until_idle();
        client.process_completions(&mut w.tb.sim);
        let st = client.stats();
        assert_eq!(st.msgs_sent, 8);
        assert_eq!(st.signaled_sends, 2, "every 4th send is signaled");
        // The QP saw 6 suppressed successful completions.
        assert_eq!(client.qp().stats().completions_suppressed, 6);
    }

    #[test]
    fn send_buffers_recycle_after_signaled_completion() {
        let mut w = world(8);
        let cfg = RubinConfig {
            send_buffers: 4,
            signal_interval: 2,
            recv_batch: 2,
            ..RubinConfig::paper()
        };
        let (client, server) = connected_channels(&mut w, cfg);
        // Saturate, drain, and repeat — buffers must recycle.
        for round in 0..5u8 {
            for i in 0..4u8 {
                let ok = client.write(&mut w.tb.sim, &[round * 10 + i; 300]).unwrap();
                assert!(ok, "round {round} message {i} must be accepted");
            }
            for _ in 0..4 {
                let _ = read_one(&mut w, &server);
            }
            w.tb.sim.run_until_idle();
            client.process_completions(&mut w.tb.sim);
        }
        assert_eq!(client.stats().msgs_sent, 20);
    }

    #[test]
    fn backpressure_returns_would_block() {
        let mut w = world(9);
        let cfg = RubinConfig {
            send_buffers: 2,
            signal_interval: 1,
            recv_batch: 1,
            ..RubinConfig::paper()
        };
        let (client, _server) = connected_channels(&mut w, cfg);
        // Without running the simulator, the third write must stall.
        assert!(client.write(&mut w.tb.sim, &[1; 300]).unwrap());
        assert!(client.write(&mut w.tb.sim, &[2; 300]).unwrap());
        assert!(!client.write(&mut w.tb.sim, &[3; 300]).unwrap());
        assert_eq!(client.stats().send_stalls, 1);
    }

    #[test]
    fn batched_reposting_matches_config() {
        let mut w = world(10);
        let cfg = RubinConfig {
            recv_batch: 4,
            ..RubinConfig::paper()
        };
        let (client, server) = connected_channels(&mut w, cfg);
        for i in 0..8u8 {
            client.write(&mut w.tb.sim, &[i; 64]).unwrap();
            let _ = read_one(&mut w, &server);
        }
        assert_eq!(server.stats().repost_batches, 2);
    }

    #[test]
    fn disconnect_surfaces_eof() {
        let mut w = world(11);
        let (client, server) = connected_channels(&mut w, RubinConfig::paper());
        client.write(&mut w.tb.sim, b"last").unwrap();
        let got = read_one(&mut w, &server);
        assert_eq!(got, b"last");
        client.close(&mut w.tb.sim);
        w.tb.sim.run_until_idle();
        server.process_completions(&mut w.tb.sim);
        assert_eq!(server.read(&mut w.tb.sim).unwrap(), RecvOutcome::Eof);
        assert!(server.is_eof());
    }

    #[test]
    fn selector_receive_readiness_drives_echo_server() {
        let mut w = world(12);
        let cfg = RubinConfig::paper();
        let server = RdmaServerChannel::bind(&w.dev_b, 5000, cfg.clone(), CoreId(0)).unwrap();
        let sel_b = RdmaSelector::new(&w.dev_b, CoreId(0), cfg.select_ns);
        sel_b.register_server(&mut w.tb.sim, &server);

        // Fully event-driven echo server: accept on OP_CONNECT, echo on
        // OP_RECEIVE, re-arming select each time.
        fn serve(sel: RdmaSelector, server: RdmaServerChannel, sim: &mut simnet::Simulator) {
            let sel2 = sel.clone();
            sel.select(sim, move |sim, ready| {
                for r in ready {
                    if r.ready.contains(Interest::OP_CONNECT) {
                        let chan = server.accept(sim).unwrap().unwrap();
                        sel2.register_channel(sim, &chan, Interest::OP_RECEIVE);
                    }
                    if r.ready.contains(Interest::OP_RECEIVE) {
                        if let Some(chan) = sel2.channel_for(r.key) {
                            while let RecvOutcome::Msg(m) = chan.read(sim).unwrap() {
                                chan.write(sim, &m).unwrap();
                            }
                        }
                    }
                }
                serve(sel2, server, sim);
            });
        }
        serve(sel_b.clone(), server.clone(), &mut w.tb.sim);

        let client = RdmaChannel::connect(
            &mut w.tb.sim,
            &w.dev_a,
            Addr::new(w.tb.b, 5000),
            cfg.clone(),
            CoreId(0),
        )
        .unwrap();
        let sel_a = RdmaSelector::new(&w.dev_a, CoreId(0), cfg.select_ns);
        sel_a.register_channel(
            &mut w.tb.sim,
            &client,
            Interest::OP_ACCEPT | Interest::OP_RECEIVE,
        );
        w.tb.sim.run_until_idle();
        assert!(client.is_established());

        client.write(&mut w.tb.sim, b"echo-me").unwrap();
        let back = read_one(&mut w, &client);
        assert_eq!(back, b"echo-me");
        assert!(sel_b.hybrid_events_total() > 0, "hybrid queue must be used");
    }

    #[test]
    fn borrowed_read_avoids_the_receive_copy() {
        let mut w = world(15);
        let cfg = RubinConfig::future();
        let (client, server) = connected_channels(&mut w, cfg);
        let payload: Vec<u8> = (0..32 * 1024usize).map(|i| (i % 249) as u8).collect();
        client.write(&mut w.tb.sim, &payload).unwrap();
        w.tb.sim.run_until_idle();
        server.process_completions(&mut w.tb.sim);
        let msg = server
            .read_borrowed(&mut w.tb.sim)
            .unwrap()
            .expect("message available");
        assert_eq!(msg.len(), payload.len());
        assert!(!msg.is_empty());
        msg.with_data(|d| assert_eq!(d, &payload[..]));
        msg.release(&mut w.tb.sim).unwrap();
        assert_eq!(server.stats().borrowed_reads, 1);

        // The copying path charges the receive copy; the borrowed path
        // does not — compare CPU busy time for the same payload.
        let busy_borrowed = {
            let mut w = world(16);
            let (client, server) = connected_channels(&mut w, RubinConfig::future());
            client.write(&mut w.tb.sim, &payload).unwrap();
            w.tb.sim.run_until_idle();
            server.process_completions(&mut w.tb.sim);
            let before = w.tb.net.host(w.tb.b).borrow().total_busy_time();
            let m = server.read_borrowed(&mut w.tb.sim).unwrap().unwrap();
            m.release(&mut w.tb.sim).unwrap();
            w.tb.net.host(w.tb.b).borrow().total_busy_time() - before
        };
        let busy_copied = {
            let mut w = world(16);
            let (client, server) = connected_channels(&mut w, RubinConfig::future());
            client.write(&mut w.tb.sim, &payload).unwrap();
            w.tb.sim.run_until_idle();
            server.process_completions(&mut w.tb.sim);
            let before = w.tb.net.host(w.tb.b).borrow().total_busy_time();
            let _ = server.read(&mut w.tb.sim).unwrap();
            w.tb.net.host(w.tb.b).borrow().total_busy_time() - before
        };
        assert!(
            busy_borrowed < busy_copied,
            "borrowed {busy_borrowed} must beat copied {busy_copied}"
        );
    }

    #[test]
    fn dropped_borrow_is_reclaimed() {
        let mut w = world(17);
        let cfg = RubinConfig {
            recv_buffers: 4,
            recv_batch: 1,
            ..RubinConfig::future()
        };
        let (client, server) = connected_channels(&mut w, cfg);
        // Messages whose borrows are dropped without release must still be
        // reclaimed so the receive queue never starves.
        for round in 0..12u8 {
            client.write(&mut w.tb.sim, &[round; 128]).unwrap();
            w.tb.sim.run_until_idle();
            server.process_completions(&mut w.tb.sim);
            let msg = server
                .read_borrowed(&mut w.tb.sim)
                .unwrap()
                .expect("delivered");
            msg.with_data(|d| assert_eq!(d[0], round));
            drop(msg); // parked, not released
        }
        assert_eq!(server.stats().borrowed_reads, 12);
    }

    #[test]
    fn inline_send_is_cheaper_for_small_messages() {
        // Same message, inline on vs off; inline must complete sooner.
        let elapsed = |inline_threshold: usize| -> Nanos {
            let mut w = world(13);
            let cfg = RubinConfig {
                inline_threshold,
                ..RubinConfig::paper()
            };
            let (client, server) = connected_channels(&mut w, cfg);
            let start = w.tb.sim.now();
            client.write(&mut w.tb.sim, &[7u8; 200]).unwrap();
            let _ = read_one(&mut w, &server);
            w.tb.sim.now() - start
        };
        let with_inline = elapsed(256);
        let without_inline = elapsed(0);
        assert!(
            with_inline < without_inline,
            "inline {with_inline} must beat non-inline {without_inline}"
        );
    }

    #[test]
    fn cancelled_key_stops_firing() {
        let mut w = world(18);
        let cfg = RubinConfig::paper();
        let (client, server) = connected_channels(&mut w, cfg.clone());
        // A dedicated selector watching the server channel.
        let sel = RdmaSelector::new(&w.dev_b, CoreId(1), cfg.select_ns);
        let key = sel.register_channel(&mut w.tb.sim, &server, Interest::OP_RECEIVE);
        assert!(sel.channel_for(key).is_some());
        sel.cancel(key);
        assert!(
            sel.channel_for(key).is_none(),
            "cancelled keys resolve to None"
        );
        client.write(&mut w.tb.sim, b"after-cancel").unwrap();
        w.tb.sim.run_until_idle();
        assert!(
            sel.select_now(&mut w.tb.sim).is_empty(),
            "cancelled key must not appear ready"
        );
    }

    #[test]
    fn interest_set_filters_ready_ops() {
        let mut w = world(19);
        let cfg = RubinConfig::paper();
        let (client, server) = connected_channels(&mut w, cfg.clone());
        let sel = RdmaSelector::new(&w.dev_b, CoreId(1), cfg.select_ns);
        // Interested only in OP_SEND: an inbound message must not surface.
        let key = sel.register_channel(&mut w.tb.sim, &server, Interest::OP_SEND);
        client.write(&mut w.tb.sim, b"hidden").unwrap();
        w.tb.sim.run_until_idle();
        let ready = sel.select_now(&mut w.tb.sim);
        assert!(ready
            .iter()
            .all(|r| !r.ready.contains(Interest::OP_RECEIVE)));
        // Widen the interest: the queued message becomes visible.
        sel.set_interest(&mut w.tb.sim, key, Interest::OP_RECEIVE | Interest::OP_SEND);
        let ready = sel.select_now(&mut w.tb.sim);
        assert!(ready
            .iter()
            .any(|r| r.key == key && r.ready.contains(Interest::OP_RECEIVE)));
    }

    #[test]
    fn two_servers_dispatch_by_port() {
        let mut w = world(20);
        let cfg = RubinConfig::paper();
        let s1 = RdmaServerChannel::bind(&w.dev_b, 6001, cfg.clone(), CoreId(0)).unwrap();
        let s2 = RdmaServerChannel::bind(&w.dev_b, 6002, cfg.clone(), CoreId(0)).unwrap();
        let sel = RdmaSelector::new(&w.dev_b, CoreId(0), cfg.select_ns);
        let k1 = sel.register_server(&mut w.tb.sim, &s1);
        let k2 = sel.register_server(&mut w.tb.sim, &s2);
        assert_eq!(sel.server_for(k1).map(|s| s.port()), Some(6001));
        assert_eq!(sel.server_for(k2).map(|s| s.port()), Some(6002));
        // Two clients, one per port.
        let _c1 = RdmaChannel::connect(
            &mut w.tb.sim,
            &w.dev_a,
            Addr::new(w.tb.b, 6001),
            cfg.clone(),
            CoreId(0),
        )
        .unwrap();
        let _c2 = RdmaChannel::connect(
            &mut w.tb.sim,
            &w.dev_a,
            Addr::new(w.tb.b, 6002),
            cfg.clone(),
            CoreId(0),
        )
        .unwrap();
        w.tb.sim.run_until_idle();
        assert_eq!(s1.pending_count(), 1, "request routed to port 6001");
        assert_eq!(s2.pending_count(), 1, "request routed to port 6002");
        let ready = sel.select_now(&mut w.tb.sim);
        assert_eq!(ready.len(), 2, "both server keys ready");
        assert!(ready.iter().all(|r| r.ready.contains(Interest::OP_CONNECT)));
    }

    #[test]
    fn connect_to_unserved_port_fails_cleanly() {
        let mut w = world(21);
        let cfg = RubinConfig::paper();
        // A selector with no registered server: its CM dispatcher rejects
        // inbound requests politely.
        let server_sel = RdmaSelector::new(&w.dev_b, CoreId(0), cfg.select_ns);
        let lonely = RdmaServerChannel::bind(&w.dev_b, 6100, cfg.clone(), CoreId(0)).unwrap();
        server_sel.register_server(&mut w.tb.sim, &lonely);
        // Client dials a *different*, unbound port: nothing listens there,
        // so the connection never establishes.
        let client = RdmaChannel::connect(
            &mut w.tb.sim,
            &w.dev_a,
            Addr::new(w.tb.b, 6999),
            cfg.clone(),
            CoreId(0),
        )
        .unwrap();
        let sel = RdmaSelector::new(&w.dev_a, CoreId(0), cfg.select_ns);
        sel.register_channel(&mut w.tb.sim, &client, Interest::OP_ACCEPT);
        w.tb.sim.run_until_idle();
        assert!(!client.is_established());
        assert!(matches!(
            client.write(&mut w.tb.sim, b"x").unwrap_err(),
            ChannelError::NotConnected
        ));
    }

    #[test]
    fn optimized_config_beats_unoptimized_for_small_messages() {
        // The aggregate effect of §IV optimizations (paper: up to 30%
        // latency reduction below 16 KB).
        let echo = |cfg: RubinConfig| -> Nanos {
            let mut w = world(14);
            let (client, server) = connected_channels(&mut w, cfg);
            let start = w.tb.sim.now();
            for _ in 0..16 {
                client.write(&mut w.tb.sim, &[1u8; 1024]).unwrap();
                let m = read_one(&mut w, &server);
                server.write(&mut w.tb.sim, &m).unwrap();
                let _ = read_one(&mut w, &client);
            }
            w.tb.sim.now() - start
        };
        let fast = echo(RubinConfig::paper());
        let slow = echo(RubinConfig::unoptimized());
        assert!(
            fast < slow,
            "optimized ({fast}) must beat unoptimized ({slow})"
        );
    }
}
