//! RUBIN framework configuration.

/// Tunables of a RUBIN channel and selector.
///
/// The paper (§III-B) stresses that "the number of WRs as well as the size
/// of buffers can be independently specified, thereby allowing for the
/// versatility needed by BFT protocols"; every §IV optimization is a knob
/// here so the ablation benchmarks can toggle them individually:
///
/// * `signal_interval` — *selective signaling*: only every n-th send is
///   signaled; completions of the unsignaled majority are inferred from RC
///   ordering when the next signaled completion arrives.
/// * `recv_batch` — *batched posting*: consumed receive buffers are
///   re-posted in batches to amortize the doorbell.
/// * `inline_threshold` — *inline sends*: payloads at or below this size
///   ride in the WQE, skipping the NIC's DMA fetch.
/// * `zero_copy_send` — *send-side zero copy*: payloads above
///   `small_copy_threshold` are sent from a directly registered application
///   buffer instead of being copied into a pooled slab. The receive side
///   always copies (the cost the paper observes for >16 KB payloads).
#[derive(Debug, Clone, PartialEq)]
pub struct RubinConfig {
    /// Receive buffers pre-registered and pre-posted per channel.
    pub recv_buffers: usize,
    /// Send buffer slabs (and the cap on outstanding sends) per channel.
    pub send_buffers: usize,
    /// Size of each pooled buffer; one message must fit in one buffer.
    pub buffer_size: usize,
    /// A completion is requested every `signal_interval` sends (1 = every
    /// send, i.e. selective signaling off).
    pub signal_interval: usize,
    /// Consumed receive buffers are re-posted once this many accumulate
    /// (1 = immediate re-posting, i.e. batching off).
    pub recv_batch: usize,
    /// Payloads at or below this size are sent inline.
    pub inline_threshold: usize,
    /// Enables send-side zero copy for payloads above
    /// `small_copy_threshold`.
    pub zero_copy_send: bool,
    /// With zero copy enabled, payloads at or below this size are still
    /// copied into a pooled slab (registration would cost more than the
    /// copy; paper §IV recommends 256 B).
    pub small_copy_threshold: usize,
    /// Enables zero-copy receives through
    /// [`RdmaChannel::read_borrowed`](crate::RdmaChannel::read_borrowed):
    /// the application borrows the registered receive buffer instead of
    /// copying out of it — the §VII goal of "remov\[ing\] any additional
    /// buffer copy steps".
    pub zero_copy_receive: bool,
    /// CPU cost of one RUBIN `select()` call. Higher than the epoll-backed
    /// Java NIO selector (paper §IV plans a native reimplementation).
    pub select_ns: u64,
    /// CPU cost of a send-registration cache hit for a zero-copy send.
    pub reg_cache_ns: u64,
}

impl RubinConfig {
    /// The configuration evaluated in the paper's Figures 3 and 4.
    ///
    /// Send-side zero copy is *off*: §IV lists registering the application
    /// buffer directly as a planned optimization ("We plan to adopt several
    /// optimizations in future versions"), and the measured §V curves show
    /// the receive- and send-side copies. [`RubinConfig::future`] enables
    /// it.
    pub fn paper() -> RubinConfig {
        RubinConfig {
            recv_buffers: 64,
            send_buffers: 64,
            buffer_size: 128 * 1024,
            signal_interval: 8,
            recv_batch: 8,
            inline_threshold: 256,
            zero_copy_send: false,
            small_copy_threshold: 256,
            zero_copy_receive: false,
            select_ns: 2_400,
            reg_cache_ns: 350,
        }
    }

    /// The paper's planned future version (§IV/§VII): send-side zero copy
    /// for payloads above `small_copy_threshold`, and zero-copy borrowed
    /// receives — "remove any additional buffer copy steps".
    pub fn future() -> RubinConfig {
        RubinConfig {
            zero_copy_send: true,
            zero_copy_receive: true,
            ..RubinConfig::paper()
        }
    }

    /// All §IV optimizations disabled — the naive RDMA Send/Receive
    /// configuration (used as the "RDMA Send/Recv" series in Figure 3 and
    /// by the ablation benchmarks).
    pub fn unoptimized() -> RubinConfig {
        RubinConfig {
            signal_interval: 1,
            recv_batch: 1,
            inline_threshold: 0,
            zero_copy_send: false,
            ..RubinConfig::paper()
        }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics if any pool is empty, the buffer size is zero, or
    /// `signal_interval`/`recv_batch` are zero or exceed the pool sizes.
    pub fn validate(&self) {
        assert!(self.recv_buffers > 0, "recv_buffers must be positive");
        assert!(self.send_buffers > 0, "send_buffers must be positive");
        assert!(self.buffer_size > 0, "buffer_size must be positive");
        assert!(
            self.signal_interval > 0 && self.signal_interval <= self.send_buffers,
            "signal_interval must be in 1..=send_buffers"
        );
        assert!(
            self.recv_batch > 0 && self.recv_batch <= self.recv_buffers,
            "recv_batch must be in 1..=recv_buffers"
        );
    }
}

impl Default for RubinConfig {
    fn default() -> RubinConfig {
        RubinConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        RubinConfig::paper().validate();
        RubinConfig::unoptimized().validate();
    }

    #[test]
    fn unoptimized_disables_all_knobs() {
        let c = RubinConfig::unoptimized();
        assert_eq!(c.signal_interval, 1);
        assert_eq!(c.recv_batch, 1);
        assert_eq!(c.inline_threshold, 0);
        assert!(!c.zero_copy_send);
        assert!(!c.zero_copy_receive);
    }

    #[test]
    #[should_panic(expected = "signal_interval")]
    fn oversized_signal_interval_rejected() {
        let c = RubinConfig {
            signal_interval: 1000,
            ..RubinConfig::paper()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "recv_batch")]
    fn zero_recv_batch_rejected() {
        let c = RubinConfig {
            recv_batch: 0,
            ..RubinConfig::paper()
        };
        c.validate();
    }
}
