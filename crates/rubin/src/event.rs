//! Interest operations and the hybrid event queue.
//!
//! The Java NIO selector answers both *transmission* and *connection*
//! readiness from the same blocking call. RUBIN therefore merges RDMA
//! completion-queue events and connection-manager events into one **hybrid
//! event queue** (paper §III-B.1); the **event manager** (§III-B.2) replaces
//! epoll by pushing a copy of every new event into this queue and notifying
//! the selector.

use std::collections::VecDeque;
use std::ops::{BitOr, BitOrAssign};

use rdma_verbs::CmEvent;

/// Identifier of a channel registration with an [`RdmaSelector`](crate::RdmaSelector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RubinKey(pub u64);

/// Interest/readiness flags of an RDMA selection key.
///
/// Naming follows the paper (§III-B), which inverts Java's convention:
/// `OP_CONNECT` signals *incoming connections* on a server channel and
/// `OP_ACCEPT` signals *connection establishment* on a client channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest(u8);

impl Interest {
    /// No operations.
    pub const NONE: Interest = Interest(0);
    /// Incoming connection requests (server channels).
    pub const OP_CONNECT: Interest = Interest(1);
    /// Connection establishment completed (client channels).
    pub const OP_ACCEPT: Interest = Interest(2);
    /// Received messages are available.
    pub const OP_RECEIVE: Interest = Interest(4);
    /// Send buffers are available.
    pub const OP_SEND: Interest = Interest(8);

    /// True if every flag of `other` is present.
    pub fn contains(self, other: Interest) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any flag is shared.
    pub fn intersects(self, other: Interest) -> bool {
        self.0 & other.0 != 0
    }

    /// Intersection.
    pub fn and(self, other: Interest) -> Interest {
        Interest(self.0 & other.0)
    }

    /// Set difference.
    pub fn without(self, other: Interest) -> Interest {
        Interest(self.0 & !other.0)
    }

    /// True if empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

impl BitOrAssign for Interest {
    fn bitor_assign(&mut self, rhs: Interest) {
        self.0 |= rhs.0;
    }
}

/// One entry of the hybrid event queue.
#[derive(Debug)]
pub enum RubinEvent {
    /// A connection-management event copied from the device event channel.
    Connection(CmEvent),
    /// Completion activity on the channel registered under `key`.
    Completion {
        /// The affected registration.
        key: RubinKey,
    },
}

/// The hybrid event queue: connection events and completion events merged
/// in arrival order (paper Figure 2, step 4).
#[derive(Debug, Default)]
pub struct HybridEventQueue {
    events: VecDeque<RubinEvent>,
    total: u64,
}

impl HybridEventQueue {
    /// Creates an empty queue.
    pub fn new() -> HybridEventQueue {
        HybridEventQueue::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: RubinEvent) {
        self.events.push_back(ev);
        self.total += 1;
    }

    /// Removes the oldest event.
    pub fn pop(&mut self) -> Option<RubinEvent> {
        self.events.pop_front()
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever enqueued.
    pub fn total_events(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interest_flag_algebra() {
        let rs = Interest::OP_RECEIVE | Interest::OP_SEND;
        assert!(rs.contains(Interest::OP_RECEIVE));
        assert!(rs.intersects(Interest::OP_SEND));
        assert!(!rs.contains(Interest::OP_CONNECT));
        assert_eq!(rs.without(Interest::OP_SEND), Interest::OP_RECEIVE);
        assert_eq!(rs.and(Interest::OP_SEND), Interest::OP_SEND);
        assert!(Interest::NONE.is_empty());
        let mut x = Interest::NONE;
        x |= Interest::OP_ACCEPT;
        assert!(x.contains(Interest::OP_ACCEPT));
    }

    #[test]
    fn hybrid_queue_preserves_arrival_order() {
        let mut q = HybridEventQueue::new();
        q.push(RubinEvent::Completion { key: RubinKey(1) });
        q.push(RubinEvent::Completion { key: RubinKey(2) });
        assert_eq!(q.len(), 2);
        assert!(matches!(
            q.pop(),
            Some(RubinEvent::Completion { key: RubinKey(1) })
        ));
        assert!(matches!(
            q.pop(),
            Some(RubinEvent::Completion { key: RubinKey(2) })
        ));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.total_events(), 2);
    }
}
