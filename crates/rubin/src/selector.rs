//! The RDMA selector and its event manager.
//!
//! The selector is "the key component in RUBIN" (paper §III-B): it lets one
//! simulated thread multiplex many RDMA channels. Registered channels get
//! an [`RubinKey`] selection key with an interest set; the **event
//! manager** — RUBIN's replacement for epoll — copies every completion and
//! connection event into the **hybrid event queue** and notifies the
//! selector, which matches events to channels, updates the keys' ready
//! sets and wakes the parked `select()` (paper Figure 2, steps 1–5).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use rdma_verbs::{CmEvent, QpNum, RdmaDevice};
use simnet::{CoreId, Nanos, Simulator};

use crate::channel::RdmaChannel;
use crate::event::{HybridEventQueue, Interest, RubinEvent, RubinKey};
use crate::server::RdmaServerChannel;

/// One ready key returned by a select call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectedKey {
    /// The registration.
    pub key: RubinKey,
    /// Ready ops intersected with the interest set.
    pub ready: Interest,
}

enum Registered {
    Channel(RdmaChannel),
    Server(RdmaServerChannel),
}

struct KeyEntry {
    what: Registered,
    interest: Interest,
    ready: Interest,
    cancelled: bool,
}

type SelectCb = Box<dyn FnOnce(&mut Simulator, Vec<SelectedKey>)>;

struct SelInner {
    device: RdmaDevice,
    core: CoreId,
    select_ns: u64,
    keys: BTreeMap<RubinKey, KeyEntry>,
    next_key: u64,
    hybrid: HybridEventQueue,
    parked: Option<SelectCb>,
    wake_scheduled: bool,
    process_scheduled: bool,
    cm_hooked: bool,
    selects: u64,
    /// Shared registry plus this selector's `rubin.{host}.selector.` prefix.
    metrics: simnet::Metrics,
    metrics_prefix: String,
}

/// The RUBIN selector: multiplexes RDMA channels on one simulated thread.
#[derive(Clone)]
pub struct RdmaSelector {
    inner: Rc<RefCell<SelInner>>,
}

impl fmt::Debug for RdmaSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("RdmaSelector")
            .field("keys", &inner.keys.len())
            .field("hybrid_pending", &inner.hybrid.len())
            .field("parked", &inner.parked.is_some())
            .field("selects", &inner.selects)
            .finish()
    }
}

impl RdmaSelector {
    /// Creates a selector on `device`, charging `select_ns` per select
    /// call to `core`.
    pub fn new(device: &RdmaDevice, core: CoreId, select_ns: u64) -> RdmaSelector {
        let metrics = device.net().metrics();
        let metrics_prefix = format!("rubin.{}.selector.", device.host());
        RdmaSelector {
            inner: Rc::new(RefCell::new(SelInner {
                device: device.clone(),
                core,
                select_ns,
                keys: BTreeMap::new(),
                next_key: 0,
                hybrid: HybridEventQueue::new(),
                parked: None,
                wake_scheduled: false,
                process_scheduled: false,
                cm_hooked: false,
                selects: 0,
                metrics,
                metrics_prefix,
            })),
        }
    }

    fn alloc_key(&self, what: Registered, interest: Interest) -> RubinKey {
        let mut inner = self.inner.borrow_mut();
        let key = RubinKey(inner.next_key);
        inner.next_key += 1;
        inner.keys.insert(
            key,
            KeyEntry {
                what,
                interest,
                ready: Interest::NONE,
                cancelled: false,
            },
        );
        key
    }

    /// Ensures the device's CM events flow into the hybrid queue.
    fn hook_cm(&self, _sim: &mut Simulator) {
        let already = {
            let mut inner = self.inner.borrow_mut();
            let was = inner.cm_hooked;
            inner.cm_hooked = true;
            was
        };
        if already {
            return;
        }
        let sel = self.clone();
        let device = self.inner.borrow().device.clone();
        device.set_cm_hook(Rc::new(move |sim| {
            // Event manager: copy CM events into the hybrid queue.
            let dev = sel.inner.borrow().device.clone();
            while let Some(ev) = dev.poll_cm_event() {
                sel.inner
                    .borrow_mut()
                    .hybrid
                    .push(RubinEvent::Connection(ev));
            }
            sel.schedule_process(sim);
        }));
    }

    /// Registers an [`RdmaChannel`] with the given interest set and wires
    /// its completion events into the event manager.
    pub fn register_channel(
        &self,
        sim: &mut Simulator,
        channel: &RdmaChannel,
        interest: Interest,
    ) -> RubinKey {
        let key = self.alloc_key(Registered::Channel(channel.clone()), interest);
        channel.set_registration(self, key);
        let sel = self.clone();
        channel.qp().set_event_hook(Rc::new(move |sim| {
            sel.inner
                .borrow_mut()
                .hybrid
                .push(RubinEvent::Completion { key });
            sel.schedule_process(sim);
        }));
        self.hook_cm(sim);
        // Report the channel's current readiness under the new key.
        channel.refresh_readiness(sim);
        key
    }

    /// Registers a server channel for `OP_CONNECT` readiness.
    pub fn register_server(&self, sim: &mut Simulator, server: &RdmaServerChannel) -> RubinKey {
        let key = self.alloc_key(Registered::Server(server.clone()), Interest::OP_CONNECT);
        server.set_registration(self, key);
        self.hook_cm(sim);
        if server.pending_count() > 0 {
            self.set_ready(sim, key, Interest::OP_CONNECT, true);
        }
        key
    }

    /// Replaces a key's interest set.
    ///
    /// # Panics
    ///
    /// Panics on an unknown key.
    pub fn set_interest(&self, sim: &mut Simulator, key: RubinKey, interest: Interest) {
        {
            let mut inner = self.inner.borrow_mut();
            inner
                .keys
                .get_mut(&key)
                .expect("unknown selection key")
                .interest = interest;
        }
        self.maybe_wake(sim);
    }

    /// A key's interest set.
    ///
    /// # Panics
    ///
    /// Panics on an unknown key.
    pub fn interest(&self, key: RubinKey) -> Interest {
        self.inner.borrow().keys[&key].interest
    }

    /// Cancels a registration.
    pub fn cancel(&self, key: RubinKey) {
        if let Some(entry) = self.inner.borrow_mut().keys.get_mut(&key) {
            entry.cancelled = true;
            entry.interest = Interest::NONE;
        }
    }

    /// Channel-side readiness report.
    pub(crate) fn set_ready(&self, sim: &mut Simulator, key: RubinKey, op: Interest, on: bool) {
        {
            let mut inner = self.inner.borrow_mut();
            let Some(entry) = inner.keys.get_mut(&key) else {
                return;
            };
            if entry.cancelled {
                return;
            }
            if on {
                entry.ready |= op;
            } else {
                entry.ready = entry.ready.without(op);
            }
        }
        if on {
            self.maybe_wake(sim);
        }
    }

    /// Schedules hybrid-queue processing (the event-manager notification).
    fn schedule_process(&self, sim: &mut Simulator) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.process_scheduled {
                return;
            }
            inner.process_scheduled = true;
        }
        let sel = self.clone();
        sim.schedule_in(
            Nanos::ZERO,
            Box::new(move |sim| {
                sel.inner.borrow_mut().process_scheduled = false;
                sel.process(sim);
            }),
        );
    }

    /// Drains the hybrid event queue, dispatching each event to the
    /// matching selection key (paper Figure 2, step 5: compare ids and
    /// event type, update the key's ready set).
    fn process(&self, sim: &mut Simulator) {
        let mut dispatched: u64 = 0;
        loop {
            let ev = { self.inner.borrow_mut().hybrid.pop() };
            let Some(ev) = ev else { break };
            dispatched += 1;
            match ev {
                RubinEvent::Completion { key } => {
                    let chan = {
                        let inner = self.inner.borrow();
                        match inner.keys.get(&key) {
                            Some(KeyEntry {
                                what: Registered::Channel(c),
                                cancelled: false,
                                ..
                            }) => Some(c.clone()),
                            _ => None,
                        }
                    };
                    if let Some(c) = chan {
                        c.process_completions(sim);
                    }
                }
                RubinEvent::Connection(cm) => self.dispatch_cm(sim, cm),
            }
        }
        if dispatched > 0 {
            let inner = self.inner.borrow();
            inner.metrics.incr_by(
                &format!("{}events_dispatched", inner.metrics_prefix),
                dispatched,
            );
            inner.metrics.observe(
                &format!("{}events_per_round", inner.metrics_prefix),
                dispatched,
            );
        }
        self.maybe_wake(sim);
    }

    fn dispatch_cm(&self, sim: &mut Simulator, ev: CmEvent) {
        match ev {
            CmEvent::ConnectRequest(req) => {
                let server = self.find_server(req.listen_port);
                match server {
                    Some(s) => s.push_request(sim, req),
                    None => {
                        // No registered server: refuse politely.
                        req.reject(sim, "no listening server channel");
                    }
                }
            }
            CmEvent::Established { qp, conn_id, .. } => {
                if let Some(c) = self.find_channel_by_conn(conn_id, qp.num()) {
                    c.mark_established(sim);
                }
            }
            CmEvent::ConnectFailed { conn_id, reason } => {
                if let Some(c) = self.find_channel_by_conn_id(conn_id) {
                    c.mark_broken(sim, reason);
                }
            }
            CmEvent::Disconnected { qp } => {
                if let Some(c) = self.find_channel_by_qp(qp) {
                    c.mark_disconnected(sim);
                }
            }
        }
    }

    fn find_server(&self, port: u32) -> Option<RdmaServerChannel> {
        let inner = self.inner.borrow();
        inner.keys.values().find_map(|e| match &e.what {
            Registered::Server(s) if !e.cancelled && s.port() == port => Some(s.clone()),
            _ => None,
        })
    }

    fn find_channel_by_conn_id(&self, conn_id: u64) -> Option<RdmaChannel> {
        let inner = self.inner.borrow();
        inner.keys.values().find_map(|e| match &e.what {
            Registered::Channel(c) if !e.cancelled && c.conn_id() == Some(conn_id) => {
                Some(c.clone())
            }
            _ => None,
        })
    }

    fn find_channel_by_qp(&self, qp: QpNum) -> Option<RdmaChannel> {
        let inner = self.inner.borrow();
        inner.keys.values().find_map(|e| match &e.what {
            Registered::Channel(c) if !e.cancelled && c.qp().num() == qp => Some(c.clone()),
            _ => None,
        })
    }

    fn find_channel_by_conn(&self, conn_id: u64, qp: QpNum) -> Option<RdmaChannel> {
        self.find_channel_by_conn_id(conn_id)
            .or_else(|| self.find_channel_by_qp(qp))
    }

    /// The channel registered under `key`, if it is a (live) channel key.
    pub fn channel_for(&self, key: RubinKey) -> Option<RdmaChannel> {
        let inner = self.inner.borrow();
        match inner.keys.get(&key) {
            Some(KeyEntry {
                what: Registered::Channel(c),
                cancelled: false,
                ..
            }) => Some(c.clone()),
            _ => None,
        }
    }

    /// The server channel registered under `key`, if any.
    pub fn server_for(&self, key: RubinKey) -> Option<RdmaServerChannel> {
        let inner = self.inner.borrow();
        match inner.keys.get(&key) {
            Some(KeyEntry {
                what: Registered::Server(s),
                cancelled: false,
                ..
            }) => Some(s.clone()),
            _ => None,
        }
    }

    /// Non-blocking select: charges one select call and returns the
    /// currently ready keys.
    pub fn select_now(&self, sim: &mut Simulator) -> Vec<SelectedKey> {
        self.charge_select(sim);
        self.collect_ready()
    }

    /// Blocking select: `f` runs (after one select-call cost) once at least
    /// one registered key is ready.
    ///
    /// # Panics
    ///
    /// Panics if a select is already parked (single selector thread).
    pub fn select(
        &self,
        sim: &mut Simulator,
        f: impl FnOnce(&mut Simulator, Vec<SelectedKey>) + 'static,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            assert!(
                inner.parked.is_none(),
                "selector already has a parked select call"
            );
            inner.parked = Some(Box::new(f));
        }
        self.maybe_wake(sim);
    }

    /// Select calls performed.
    pub fn selects_performed(&self) -> u64 {
        self.inner.borrow().selects
    }

    /// Diagnostic dump of every key's interest/ready sets.
    pub fn debug_keys(&self) -> String {
        let inner = self.inner.borrow();
        inner
            .keys
            .iter()
            .map(|(k, e)| {
                let what = match &e.what {
                    Registered::Channel(_) => "chan",
                    Registered::Server(_) => "srv",
                };
                format!(
                    "{k:?}:{what} interest={:?} ready={:?} cancelled={}",
                    e.interest, e.ready, e.cancelled
                )
            })
            .collect::<Vec<_>>()
            .join(" | ")
    }

    /// Total events that flowed through the hybrid queue.
    pub fn hybrid_events_total(&self) -> u64 {
        self.inner.borrow().hybrid.total_events()
    }

    fn charge_select(&self, sim: &mut Simulator) -> Nanos {
        let mut inner = self.inner.borrow_mut();
        inner.selects += 1;
        inner
            .metrics
            .incr(&format!("{}polls", inner.metrics_prefix));
        let (core, ns) = (inner.core, inner.select_ns);
        let device = inner.device.clone();
        drop(inner);
        device
            .net()
            .host(device.host())
            .borrow_mut()
            .exec(sim.now(), core, Nanos::from_nanos(ns))
    }

    fn collect_ready(&self) -> Vec<SelectedKey> {
        let inner = self.inner.borrow();
        inner
            .keys
            .iter()
            .filter(|(_, e)| !e.cancelled)
            .filter_map(|(k, e)| {
                let ready = e.ready.and(e.interest);
                (!ready.is_empty()).then_some(SelectedKey { key: *k, ready })
            })
            .collect()
    }

    fn maybe_wake(&self, sim: &mut Simulator) {
        {
            let inner = self.inner.borrow();
            if inner.parked.is_none() || inner.wake_scheduled {
                return;
            }
            let any = inner
                .keys
                .values()
                .any(|e| !e.cancelled && e.ready.intersects(e.interest));
            if !any {
                return;
            }
        }
        self.inner.borrow_mut().wake_scheduled = true;
        let fire_at = self.charge_select(sim);
        let sel = self.clone();
        sim.schedule_at(
            fire_at,
            Box::new(move |sim| {
                let cb = {
                    let mut inner = sel.inner.borrow_mut();
                    inner.wake_scheduled = false;
                    inner.parked.take()
                };
                let Some(cb) = cb else { return };
                let ready = sel.collect_ready();
                if ready.is_empty() {
                    sel.inner.borrow_mut().parked = Some(cb);
                } else {
                    cb(sim, ready);
                }
            }),
        );
    }
}
