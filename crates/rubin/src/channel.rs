//! The RDMA channel: RUBIN's analogue of a non-blocking NIO socket channel.
//!
//! An [`RdmaChannel`] wraps a reliable-connection queue pair together with
//! pre-registered send/receive buffer pools and implements the paper's §IV
//! optimizations (inline sends, selective signaling, batched receive
//! posting, send-side zero copy). `write()` and `read()` are non-blocking
//! and message-oriented: one `write` becomes one RDMA SEND, one `read`
//! returns one received message.
//!
//! The receive path always copies from the pre-posted registered buffer
//! into a fresh application buffer — the cost the paper identifies as the
//! source of RUBIN's degradation beyond 16 KB payloads.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use rdma_verbs::{
    Access, ConnRequest, MemoryRegion, ProtectionDomain, QpConfig, QueuePair, RKey, RdmaDevice,
    RecvWr, SendWr, Sge, VerbsError, WcOpcode, WcStatus, WrId,
};
use simnet::{Addr, CoreId, Nanos, Simulator};

use crate::buffer::{BufferPool, SlabIndex};
use crate::config::RubinConfig;
use crate::event::{Interest, RubinKey};
use crate::selector::RdmaSelector;

/// Errors surfaced by channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The channel is not (yet) connected.
    NotConnected,
    /// The message exceeds the channel's buffer size.
    MessageTooLarge {
        /// Requested message length.
        len: usize,
        /// Maximum supported by the buffer pools.
        max: usize,
    },
    /// The underlying queue pair failed.
    Broken(String),
    /// A verbs-level error at posting time.
    Verbs(VerbsError),
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::NotConnected => write!(f, "channel is not connected"),
            ChannelError::MessageTooLarge { len, max } => {
                write!(
                    f,
                    "message of {len} bytes exceeds channel buffer size {max}"
                )
            }
            ChannelError::Broken(why) => write!(f, "channel broken: {why}"),
            ChannelError::Verbs(e) => write!(f, "verbs error: {e}"),
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<VerbsError> for ChannelError {
    fn from(e: VerbsError) -> ChannelError {
        ChannelError::Verbs(e)
    }
}

/// Result of a non-blocking message read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvOutcome {
    /// One complete message.
    Msg(Vec<u8>),
    /// No message available right now.
    WouldBlock,
    /// The peer disconnected and all messages were drained.
    Eof,
}

/// A received message borrowed in place from the registered receive
/// buffer — the zero-copy receive path of the paper's §VII plan.
///
/// The buffer stays lent to the application until
/// [`release`](BorrowedMsg::release) returns it for re-posting. Dropping
/// without releasing parks the buffer; it is reclaimed on the next
/// `read`/`read_borrowed` call.
#[derive(Debug)]
pub struct BorrowedMsg {
    chan: RdmaChannel,
    slab: SlabIndex,
    len: usize,
    released: bool,
}

impl BorrowedMsg {
    /// Message length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for empty messages.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Runs `f` over the message bytes in place (no copy).
    pub fn with_data<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let inner = self.chan.inner.borrow();
        inner
            .recv_pool
            .slab(self.slab)
            .with_slice(|s| f(&s[..self.len]))
    }

    /// Returns the buffer to the channel for batched re-posting.
    ///
    /// # Errors
    ///
    /// Propagates re-posting failures.
    pub fn release(mut self, sim: &mut Simulator) -> Result<(), ChannelError> {
        self.released = true;
        let slab = self.slab;
        self.chan.clone().return_slab(sim, Some(slab))
    }
}

impl Drop for BorrowedMsg {
    fn drop(&mut self) {
        if !self.released {
            // No simulator here: park the slab; the channel reclaims it on
            // the next read call.
            self.chan.inner.borrow_mut().parked_slabs.push(self.slab);
        }
    }
}

/// Channel statistics (also used by the ablation benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages accepted by `write`.
    pub msgs_sent: u64,
    /// Messages returned by `read`.
    pub msgs_received: u64,
    /// Payload bytes accepted by `write`.
    pub bytes_sent: u64,
    /// Payload bytes returned by `read`.
    pub bytes_received: u64,
    /// Sends that used the inline path.
    pub inline_sends: u64,
    /// Sends that used the zero-copy registered-application-buffer path.
    pub zero_copy_sends: u64,
    /// Sends that copied into a pooled slab.
    pub copied_sends: u64,
    /// Sends posted with a completion request.
    pub signaled_sends: u64,
    /// `write` calls that returned would-block.
    pub send_stalls: u64,
    /// Receive-buffer re-post batches issued.
    pub repost_batches: u64,
    /// Messages delivered through the zero-copy borrowed-receive path.
    pub borrowed_reads: u64,
    /// One-sided RDMA READs posted via [`RdmaChannel::post_read`].
    pub reads_posted: u64,
    /// Bytes pulled by completed one-sided READs.
    pub read_bytes: u64,
    /// One-sided RDMA WRITEs posted via [`RdmaChannel::post_write`].
    pub writes_posted: u64,
    /// Bytes pushed by posted one-sided WRITEs.
    pub write_bytes: u64,
}

/// Completion callback for [`RdmaChannel::post_read`]: `Some(bytes)` on a
/// successful read, `None` if the operation failed or was flushed.
pub type ReadDoneFn = Box<dyn FnOnce(&mut Simulator, Option<Vec<u8>>)>;

/// Completion callback for [`RdmaChannel::post_write`]: `true` once the
/// WRITE is acknowledged, `false` if it was NAK'd (permission revoked) or
/// flushed.
pub type WriteDoneFn = Box<dyn FnOnce(&mut Simulator, bool)>;

/// Local notification that a peer's WRITE_WITH_IMM landed in one of our
/// registered regions: `(imm, byte_len)`. Installed with
/// [`RdmaChannel::set_write_doorbell`].
pub type WriteDoorbellFn = Rc<dyn Fn(&mut Simulator, u32, usize)>;

/// One-sided READ work-request ids live in their own range so the in-order
/// send-completion pop below can never confuse them with SEND wr_ids.
const READ_WR_BASE: u64 = 1 << 48;

/// One-sided WRITE work-request ids: a third disjoint range.
const WRITE_WR_BASE: u64 = 1 << 49;

struct PendingRead {
    sink: MemoryRegion,
    len: usize,
    done: ReadDoneFn,
}

struct PendingWrite {
    src: MemoryRegion,
    done: WriteDoneFn,
}

pub(crate) struct ChanInner {
    device: RdmaDevice,
    qp: QueuePair,
    pd: ProtectionDomain,
    core: CoreId,
    cfg: RubinConfig,
    send_pool: BufferPool,
    recv_pool: BufferPool,
    /// Outstanding sends in posting order: `(wr_id, pooled slab if any)`.
    inflight: VecDeque<(u64, Option<SlabIndex>)>,
    /// Outstanding one-sided READs by wr_id (disjoint id range).
    pending_reads: HashMap<u64, PendingRead>,
    /// Outstanding one-sided WRITEs by wr_id (disjoint id range).
    pending_writes: HashMap<u64, PendingWrite>,
    read_count: u64,
    write_count: u64,
    send_count: u64,
    since_signal: usize,
    outstanding_sends: usize,
    /// Received messages not yet read: `(recv slab, length)`.
    rx_ready: VecDeque<(SlabIndex, usize)>,
    /// Consumed receive slabs awaiting batched re-posting.
    to_repost: Vec<SlabIndex>,
    /// Borrowed slabs dropped without release, reclaimed lazily.
    parked_slabs: Vec<SlabIndex>,
    established: bool,
    accept_ready: bool,
    eof: bool,
    broken: Option<String>,
    conn_id: Option<u64>,
    reg: Option<(RdmaSelector, RubinKey)>,
    /// Invoked for inbound WRITE_WITH_IMM completions instead of queueing
    /// the (payload-free) receive slab as a message.
    write_doorbell: Option<WriteDoorbellFn>,
    stats: ChannelStats,
}

/// A non-blocking, message-oriented RDMA channel.
#[derive(Clone)]
pub struct RdmaChannel {
    pub(crate) inner: Rc<RefCell<ChanInner>>,
}

impl fmt::Debug for RdmaChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("RdmaChannel")
            .field("qp", &inner.qp.num())
            .field("established", &inner.established)
            .field("rx_ready", &inner.rx_ready.len())
            .field("outstanding_sends", &inner.outstanding_sends)
            .field("broken", &inner.broken)
            .finish()
    }
}

impl RdmaChannel {
    fn build(
        sim: &mut Simulator,
        device: &RdmaDevice,
        cfg: RubinConfig,
        core: CoreId,
        make_qp: impl FnOnce(
            &mut Simulator,
            &QpConfig,
        ) -> Result<(QueuePair, Option<u64>, bool), ChannelError>,
    ) -> Result<RdmaChannel, ChannelError> {
        cfg.validate();
        let pd = device.alloc_pd();
        let cq_cap = (cfg.send_buffers + cfg.recv_buffers) * 2;
        let send_cq = device.create_cq(cq_cap, None);
        let recv_cq = device.create_cq(cq_cap, None);
        let qp_cfg = QpConfig {
            pd,
            send_cq,
            recv_cq,
            core,
        };
        let (qp, conn_id, established) = make_qp(sim, &qp_cfg)?;
        let send_pool = BufferPool::register(
            device,
            &pd,
            cfg.send_buffers,
            cfg.buffer_size,
            Access::LOCAL_WRITE,
        );
        let recv_pool = BufferPool::register(
            device,
            &pd,
            cfg.recv_buffers,
            cfg.buffer_size,
            Access::LOCAL_WRITE,
        );
        let channel = RdmaChannel {
            inner: Rc::new(RefCell::new(ChanInner {
                device: device.clone(),
                qp,
                pd,
                core,
                cfg,
                send_pool,
                recv_pool,
                inflight: VecDeque::new(),
                pending_reads: HashMap::new(),
                pending_writes: HashMap::new(),
                read_count: 0,
                write_count: 0,
                send_count: 0,
                since_signal: 0,
                outstanding_sends: 0,
                rx_ready: VecDeque::new(),
                to_repost: Vec::new(),
                parked_slabs: Vec::new(),
                established,
                accept_ready: false,
                eof: false,
                broken: None,
                conn_id,
                reg: None,
                write_doorbell: None,
                stats: ChannelStats::default(),
            })),
        };
        channel.post_initial_receives(sim)?;
        Ok(channel)
    }

    /// Opens a client channel towards an
    /// [`RdmaServerChannel`](crate::RdmaServerChannel) at `remote`.
    ///
    /// The channel is created immediately with its buffer pools registered
    /// and receives pre-posted; `OP_ACCEPT` readiness (or
    /// [`ChannelError::Broken`]) follows once connection management
    /// completes.
    ///
    /// # Errors
    ///
    /// Propagates verbs errors from queue-pair creation or buffer posting.
    pub fn connect(
        sim: &mut Simulator,
        device: &RdmaDevice,
        remote: Addr,
        cfg: RubinConfig,
        core: CoreId,
    ) -> Result<RdmaChannel, ChannelError> {
        RdmaChannel::build(sim, device, cfg, core, |sim, qp_cfg| {
            let (qp, conn_id) = device.connect(sim, remote, qp_cfg, Vec::new())?;
            Ok((qp, Some(conn_id), false))
        })
    }

    /// Creates the server-side channel for an accepted connection request.
    ///
    /// # Errors
    ///
    /// Propagates verbs errors from accepting or buffer posting.
    pub fn from_accepted(
        sim: &mut Simulator,
        device: &RdmaDevice,
        req: ConnRequest,
        cfg: RubinConfig,
        core: CoreId,
    ) -> Result<RdmaChannel, ChannelError> {
        RdmaChannel::build(sim, device, cfg, core, |sim, qp_cfg| {
            let qp = req.accept(sim, qp_cfg, Vec::new())?;
            Ok((qp, None, true))
        })
    }

    fn post_initial_receives(&self, sim: &mut Simulator) -> Result<(), ChannelError> {
        let (qp, wrs, batch_limit) = {
            let mut inner = self.inner.borrow_mut();
            let mut wrs = Vec::with_capacity(inner.cfg.recv_buffers);
            for _ in 0..inner.cfg.recv_buffers {
                let (idx, mr) = inner
                    .recv_pool
                    .lend()
                    .expect("fresh pool has all slabs free");
                wrs.push(RecvWr::new(WrId(idx as u64), Sge::whole(mr)));
            }
            let limit = inner.device.model().max_post_batch;
            (inner.qp.clone(), wrs, limit)
        };
        let mut iter = wrs.into_iter().peekable();
        while iter.peek().is_some() {
            let batch: Vec<RecvWr> = iter.by_ref().take(batch_limit).collect();
            qp.post_recv_batch(sim, batch)?;
        }
        Ok(())
    }

    /// The underlying queue pair (hook installation, tests).
    pub fn qp(&self) -> QueuePair {
        self.inner.borrow().qp.clone()
    }

    /// The connection id of an outgoing connection.
    pub fn conn_id(&self) -> Option<u64> {
        self.inner.borrow().conn_id
    }

    /// True once connected.
    pub fn is_established(&self) -> bool {
        self.inner.borrow().established
    }

    /// True if the peer disconnected or the QP failed.
    pub fn is_eof(&self) -> bool {
        let inner = self.inner.borrow();
        inner.eof || inner.broken.is_some()
    }

    /// Channel statistics.
    pub fn stats(&self) -> ChannelStats {
        self.inner.borrow().stats
    }

    /// The channel's configuration.
    pub fn config(&self) -> RubinConfig {
        self.inner.borrow().cfg.clone()
    }

    pub(crate) fn set_registration(&self, selector: &RdmaSelector, key: RubinKey) {
        self.inner.borrow_mut().reg = Some((selector.clone(), key));
    }

    /// Marks the channel established (selector dispatch of the
    /// `Established` CM event; exposed for driving channels without a
    /// selector).
    pub fn mark_established(&self, sim: &mut Simulator) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.established = true;
            inner.accept_ready = true;
        }
        self.refresh_readiness(sim);
    }

    /// Marks the channel failed.
    pub fn mark_broken(&self, sim: &mut Simulator, reason: impl Into<String>) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.broken = Some(reason.into());
        }
        self.refresh_readiness(sim);
    }

    /// Marks the peer as disconnected (EOF after draining).
    pub fn mark_disconnected(&self, sim: &mut Simulator) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.eof = true;
        }
        self.refresh_readiness(sim);
    }

    /// Consumes the one-shot `OP_ACCEPT` readiness; returns whether the
    /// channel is established.
    pub fn finish_connect(&self, sim: &mut Simulator) -> bool {
        let est = {
            let mut inner = self.inner.borrow_mut();
            inner.accept_ready = false;
            inner.established
        };
        self.refresh_readiness(sim);
        est
    }

    /// Non-blocking message send. Returns `Ok(true)` if the message was
    /// accepted, `Ok(false)` if the channel is temporarily full
    /// (`OP_SEND` readiness will fire when space frees up).
    ///
    /// # Errors
    ///
    /// * [`ChannelError::NotConnected`] before establishment.
    /// * [`ChannelError::Broken`] after a failure.
    /// * [`ChannelError::MessageTooLarge`] if `data` exceeds the buffer
    ///   size.
    /// * [`ChannelError::Verbs`] on posting errors.
    pub fn write(&self, sim: &mut Simulator, data: &[u8]) -> Result<bool, ChannelError> {
        enum Path {
            Inline(SlabIndex, rdma_verbs::MemoryRegion),
            Pooled(SlabIndex, rdma_verbs::MemoryRegion),
            ZeroCopy(rdma_verbs::MemoryRegion),
        }
        let (qp, wr) = {
            let mut inner = self.inner.borrow_mut();
            if let Some(why) = &inner.broken {
                return Err(ChannelError::Broken(why.clone()));
            }
            if !inner.established {
                return Err(ChannelError::NotConnected);
            }
            if data.len() > inner.cfg.buffer_size {
                return Err(ChannelError::MessageTooLarge {
                    len: data.len(),
                    max: inner.cfg.buffer_size,
                });
            }
            if inner.outstanding_sends >= inner.cfg.send_buffers {
                inner.stats.send_stalls += 1;
                drop(inner);
                self.refresh_readiness(sim);
                return Ok(false);
            }
            let use_inline = data.len() <= inner.cfg.inline_threshold;
            let use_zero_copy = !use_inline
                && inner.cfg.zero_copy_send
                && data.len() > inner.cfg.small_copy_threshold;
            let path = if use_zero_copy {
                // Models registering the application's own buffer: the
                // payload is not copied on the send side; only a
                // registration-cache lookup is charged.
                let mr = inner.device.reg_mr(&inner.pd, data.len(), Access::NONE);
                mr.write(0, data).expect("fresh region fits payload");
                Path::ZeroCopy(mr)
            } else {
                let Some((idx, mr)) = inner.send_pool.lend() else {
                    inner.stats.send_stalls += 1;
                    drop(inner);
                    self.refresh_readiness(sim);
                    return Ok(false);
                };
                mr.write(0, data).expect("slab fits message");
                if use_inline {
                    Path::Inline(idx, mr)
                } else {
                    Path::Pooled(idx, mr)
                }
            };

            // CPU cost of the channel write: managed-runtime overhead plus
            // the copy into the registered buffer (skipped for zero copy,
            // where only the registration cache is consulted).
            {
                let host_ref = inner.device.net().host(inner.device.host());
                let mut h = host_ref.borrow_mut();
                let runtime = Nanos::from_nanos(h.cpu().runtime_io_ns);
                match &path {
                    Path::ZeroCopy(_) => {
                        let work = runtime + Nanos::from_nanos(inner.cfg.reg_cache_ns);
                        h.exec(sim.now(), inner.core, work);
                    }
                    _ => {
                        h.charge_user_copy(sim.now(), inner.core, data.len());
                        h.exec(sim.now(), inner.core, runtime);
                    }
                }
            }

            inner.since_signal += 1;
            let signaled = inner.since_signal >= inner.cfg.signal_interval;
            if signaled {
                inner.since_signal = 0;
                inner.stats.signaled_sends += 1;
            }
            let wr_id = inner.send_count;
            inner.send_count += 1;
            inner.outstanding_sends += 1;
            let (sge, slab, inline) = match path {
                Path::Inline(idx, mr) => {
                    inner.stats.inline_sends += 1;
                    (Sge::new(mr, 0, data.len()), Some(idx), true)
                }
                Path::Pooled(idx, mr) => {
                    inner.stats.copied_sends += 1;
                    (Sge::new(mr, 0, data.len()), Some(idx), false)
                }
                Path::ZeroCopy(mr) => {
                    inner.stats.zero_copy_sends += 1;
                    (Sge::new(mr, 0, data.len()), None, false)
                }
            };
            inner.inflight.push_back((wr_id, slab));
            inner.stats.msgs_sent += 1;
            inner.stats.bytes_sent += data.len() as u64;
            let mut wr = SendWr::send(WrId(wr_id), sge);
            if signaled {
                wr = wr.signaled();
            }
            if inline {
                wr = wr.with_inline();
            }
            (inner.qp.clone(), wr)
        };
        qp.post_send(sim, wr)?;
        self.refresh_readiness(sim);
        Ok(true)
    }

    /// Posts a one-sided RDMA READ of `[remote_offset, remote_offset+len)`
    /// from the peer's region `rkey` into a fresh local sink; `done` fires
    /// with the bytes once the read completes (or with `None` if the QP
    /// fails first). The remote CPU does no work serving the read — its
    /// NIC validates the rkey and DMAs the data out directly, which is why
    /// checkpoint state transfer uses this path on RUBIN.
    ///
    /// # Errors
    ///
    /// * [`ChannelError::NotConnected`] before establishment.
    /// * [`ChannelError::Broken`] after a failure.
    /// * [`ChannelError::Verbs`] on posting errors.
    pub fn post_read(
        &self,
        sim: &mut Simulator,
        rkey: u32,
        remote_offset: u64,
        len: usize,
        done: ReadDoneFn,
    ) -> Result<(), ChannelError> {
        let (qp, wr, wr_id) = {
            let mut inner = self.inner.borrow_mut();
            if let Some(why) = &inner.broken {
                return Err(ChannelError::Broken(why.clone()));
            }
            if !inner.established {
                return Err(ChannelError::NotConnected);
            }
            let sink = inner
                .device
                .reg_mr(&inner.pd, len.max(1), Access::LOCAL_WRITE);
            let wr_id = READ_WR_BASE + inner.read_count;
            inner.read_count += 1;
            inner.stats.reads_posted += 1;
            let wr = SendWr::read(
                WrId(wr_id),
                Sge::new(sink.clone(), 0, len),
                RKey(rkey),
                remote_offset as usize,
            )
            .signaled();
            inner
                .pending_reads
                .insert(wr_id, PendingRead { sink, len, done });
            (inner.qp.clone(), wr, wr_id)
        };
        if let Err(e) = qp.post_send(sim, wr) {
            self.inner.borrow_mut().pending_reads.remove(&wr_id);
            return Err(e.into());
        }
        Ok(())
    }

    /// Posts a one-sided RDMA WRITE_WITH_IMM of `data` into the peer's
    /// region `rkey` at `remote_offset`, raising a doorbell completion
    /// (carrying `imm`) on the peer. The peer's CPU does no protocol work
    /// for the transfer itself — its NIC validates the rkey, DMAs the
    /// payload into place, and consumes one receive WR for the immediate.
    /// `done` fires with `true` once the WRITE is acked, `false` if the
    /// RNIC denied it (permission revoked) or the QP failed.
    ///
    /// # Errors
    ///
    /// * [`ChannelError::NotConnected`] before establishment.
    /// * [`ChannelError::Broken`] after a failure.
    /// * [`ChannelError::Verbs`] on posting errors.
    pub fn post_write(
        &self,
        sim: &mut Simulator,
        rkey: u32,
        remote_offset: u64,
        data: &[u8],
        imm: u32,
        done: WriteDoneFn,
    ) -> Result<(), ChannelError> {
        let (qp, wr, wr_id) = {
            let mut inner = self.inner.borrow_mut();
            if let Some(why) = &inner.broken {
                return Err(ChannelError::Broken(why.clone()));
            }
            if !inner.established {
                return Err(ChannelError::NotConnected);
            }
            // Source registration models the zero-copy send path: the
            // application buffer is registered (cache lookup), not copied.
            let src = inner
                .device
                .reg_mr(&inner.pd, data.len().max(1), Access::NONE);
            src.write(0, data).expect("fresh region fits payload");
            {
                let host_ref = inner.device.net().host(inner.device.host());
                let mut h = host_ref.borrow_mut();
                let runtime = Nanos::from_nanos(h.cpu().runtime_io_ns);
                let work = runtime + Nanos::from_nanos(inner.cfg.reg_cache_ns);
                h.exec(sim.now(), inner.core, work);
            }
            let wr_id = WRITE_WR_BASE + inner.write_count;
            inner.write_count += 1;
            inner.stats.writes_posted += 1;
            inner.stats.write_bytes += data.len() as u64;
            let wr = SendWr::write_with_imm(
                WrId(wr_id),
                Sge::new(src.clone(), 0, data.len()),
                RKey(rkey),
                remote_offset as usize,
                imm,
            )
            .signaled();
            inner
                .pending_writes
                .insert(wr_id, PendingWrite { src, done });
            (inner.qp.clone(), wr, wr_id)
        };
        if let Err(e) = qp.post_send(sim, wr) {
            self.inner.borrow_mut().pending_writes.remove(&wr_id);
            return Err(e.into());
        }
        Ok(())
    }

    /// Installs the handler invoked when a peer's WRITE_WITH_IMM lands in
    /// one of our registered regions. With a doorbell installed the
    /// consumed receive slab is recycled immediately (the payload lives in
    /// the target region, not the slab) instead of surfacing as a bogus
    /// inbound message.
    pub fn set_write_doorbell(&self, doorbell: WriteDoorbellFn) {
        self.inner.borrow_mut().write_doorbell = Some(doorbell);
    }

    /// Non-blocking message receive.
    ///
    /// Copies the message out of the pre-posted registered buffer (the
    /// receive-side copy of paper §IV) and batches the freed buffer for
    /// re-posting.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Broken`] after a queue-pair failure, or posting
    /// errors while re-posting receive buffers.
    pub fn read(&self, sim: &mut Simulator) -> Result<RecvOutcome, ChannelError> {
        if !self.inner.borrow().parked_slabs.is_empty() {
            self.return_slab(sim, None)?;
        }
        let (data, repost) = {
            let mut inner = self.inner.borrow_mut();
            let Some((slab, len)) = inner.rx_ready.pop_front() else {
                if inner.eof {
                    return Ok(RecvOutcome::Eof);
                }
                if let Some(why) = &inner.broken {
                    return Err(ChannelError::Broken(why.clone()));
                }
                return Ok(RecvOutcome::WouldBlock);
            };
            {
                let host_ref = inner.device.net().host(inner.device.host());
                let mut h = host_ref.borrow_mut();
                let runtime = Nanos::from_nanos(h.cpu().runtime_io_ns);
                h.charge_user_copy(sim.now(), inner.core, len);
                h.exec(sim.now(), inner.core, runtime);
            }
            let data = inner
                .recv_pool
                .slab(slab)
                .read(0, len)
                .expect("received message fits its slab");
            inner.stats.msgs_received += 1;
            inner.stats.bytes_received += len as u64;
            inner.to_repost.push(slab);
            let repost = if inner.to_repost.len() >= inner.cfg.recv_batch {
                inner.stats.repost_batches += 1;
                let slabs = std::mem::take(&mut inner.to_repost);
                let wrs: Vec<RecvWr> = slabs
                    .iter()
                    .map(|&idx| {
                        RecvWr::new(
                            WrId(idx as u64),
                            Sge::whole(inner.recv_pool.slab(idx).clone()),
                        )
                    })
                    .collect();
                Some((inner.qp.clone(), wrs, inner.device.model().max_post_batch))
            } else {
                None
            };
            (data, repost)
        };
        if let Some((qp, wrs, limit)) = repost {
            let mut iter = wrs.into_iter().peekable();
            while iter.peek().is_some() {
                let batch: Vec<RecvWr> = iter.by_ref().take(limit).collect();
                qp.post_recv_batch(sim, batch)?;
            }
        }
        self.refresh_readiness(sim);
        Ok(RecvOutcome::Msg(data))
    }

    /// Returns a consumed receive slab (if any) to the batched re-posting
    /// queue, also reclaiming slabs parked by dropped [`BorrowedMsg`]s.
    fn return_slab(
        &self,
        sim: &mut Simulator,
        slab: Option<SlabIndex>,
    ) -> Result<(), ChannelError> {
        let repost = {
            let mut inner = self.inner.borrow_mut();
            if let Some(slab) = slab {
                inner.to_repost.push(slab);
            }
            // Reclaim any slabs parked by dropped `BorrowedMsg`s.
            let parked = std::mem::take(&mut inner.parked_slabs);
            inner.to_repost.extend(parked);
            if inner.to_repost.len() >= inner.cfg.recv_batch {
                inner.stats.repost_batches += 1;
                let slabs = std::mem::take(&mut inner.to_repost);
                let wrs: Vec<RecvWr> = slabs
                    .iter()
                    .map(|&idx| {
                        RecvWr::new(
                            WrId(idx as u64),
                            Sge::whole(inner.recv_pool.slab(idx).clone()),
                        )
                    })
                    .collect();
                Some((inner.qp.clone(), wrs, inner.device.model().max_post_batch))
            } else {
                None
            }
        };
        if let Some((qp, wrs, limit)) = repost {
            let mut iter = wrs.into_iter().peekable();
            while iter.peek().is_some() {
                let batch: Vec<RecvWr> = iter.by_ref().take(limit).collect();
                qp.post_recv_batch(sim, batch)?;
            }
        }
        self.refresh_readiness(sim);
        Ok(())
    }

    /// Zero-copy receive: borrows the next message in place instead of
    /// copying it out (paper §VII: "remove any additional buffer copy
    /// steps"). Charges only the runtime dispatch overhead.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Broken`] after a queue-pair failure.
    pub fn read_borrowed(&self, sim: &mut Simulator) -> Result<Option<BorrowedMsg>, ChannelError> {
        // Reclaim buffers parked by earlier dropped borrows.
        if !self.inner.borrow().parked_slabs.is_empty() {
            self.return_slab(sim, None)?;
        }
        let msg = {
            let mut inner = self.inner.borrow_mut();
            let Some((slab, len)) = inner.rx_ready.pop_front() else {
                if let Some(why) = &inner.broken {
                    return Err(ChannelError::Broken(why.clone()));
                }
                return Ok(None);
            };
            let cpu = inner
                .device
                .net()
                .host(inner.device.host())
                .borrow()
                .cpu()
                .clone();
            inner
                .device
                .net()
                .host(inner.device.host())
                .borrow_mut()
                .exec(sim.now(), inner.core, Nanos::from_nanos(cpu.runtime_io_ns));
            inner.stats.msgs_received += 1;
            inner.stats.bytes_received += len as u64;
            inner.stats.borrowed_reads += 1;
            BorrowedMsg {
                chan: self.clone(),
                slab,
                len,
                released: false,
            }
        };
        self.refresh_readiness(sim);
        Ok(Some(msg))
    }

    /// Drains this channel's completion queues, recycling send buffers and
    /// queueing received messages. Charges one poll call. Registered
    /// channels have this driven by the selector's event manager; manual
    /// drivers call it directly.
    pub fn process_completions(&self, sim: &mut Simulator) {
        let (send_wcs, recv_wcs) = {
            let inner = self.inner.borrow();
            let s = inner.qp.send_cq().poll(usize::MAX);
            let r = inner.qp.recv_cq().poll(usize::MAX);
            (s, r)
        };
        let total = send_wcs.len() + recv_wcs.len();
        {
            let inner = self.inner.borrow();
            inner.device.charge_poll(sim, inner.core, total);
        }
        let mut finished_reads: Vec<(ReadDoneFn, Option<Vec<u8>>)> = Vec::new();
        let mut finished_writes: Vec<(WriteDoneFn, bool)> = Vec::new();
        let mut doorbells: Vec<(WriteDoorbellFn, u32, usize)> = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            for wc in send_wcs {
                // One-sided WRITE completions also carry their own id range
                // and resolve a pending-write callback outside the in-order
                // SEND pop. A non-success status here is the RNIC denying a
                // revoked permission (or a flush after one did).
                if wc.opcode == WcOpcode::RdmaWrite {
                    if let Some(pw) = inner.pending_writes.remove(&wc.wr_id.0) {
                        pw.src.invalidate();
                        finished_writes.push((pw.done, wc.status == WcStatus::Success));
                    }
                    if wc.status == WcStatus::WorkRequestFlushed {
                        inner.eof = true;
                    }
                    continue;
                }
                // One-sided READ completions carry their own id range and
                // resolve a pending-read callback; they never participate
                // in the in-order SEND pop below.
                if wc.opcode == WcOpcode::RdmaRead {
                    if let Some(pr) = inner.pending_reads.remove(&wc.wr_id.0) {
                        let data = (wc.status == WcStatus::Success)
                            .then(|| pr.sink.read(0, pr.len).ok())
                            .flatten();
                        if let Some(d) = &data {
                            inner.stats.read_bytes += d.len() as u64;
                        }
                        pr.sink.invalidate();
                        finished_reads.push((pr.done, data));
                    }
                    if wc.status == WcStatus::WorkRequestFlushed {
                        inner.eof = true;
                    }
                    continue;
                }
                match wc.status {
                    WcStatus::Success => {
                        // RC completes in order: everything up to and
                        // including this wr_id is done.
                        while let Some(&(id, slab)) = inner.inflight.front() {
                            if id > wc.wr_id.0 {
                                break;
                            }
                            inner.inflight.pop_front();
                            inner.outstanding_sends -= 1;
                            if let Some(idx) = slab {
                                inner.send_pool.give_back(idx);
                            }
                        }
                    }
                    WcStatus::WorkRequestFlushed => {
                        inner.eof = true;
                    }
                    other => {
                        inner.broken = Some(format!("send failed: {other:?}"));
                    }
                }
            }
            for wc in recv_wcs {
                match wc.status {
                    WcStatus::Success if wc.opcode == WcOpcode::RecvRdmaWithImm => {
                        // A peer's WRITE_WITH_IMM: the payload was DMA'd
                        // into the registered target region, not this slab.
                        // Recycle the slab and ring the doorbell; without a
                        // doorbell installed, surface it as a message for
                        // raw-channel users.
                        match inner.write_doorbell.clone() {
                            Some(db) => {
                                inner.to_repost.push(wc.wr_id.0 as usize);
                                doorbells.push((db, wc.imm.unwrap_or(0), wc.byte_len));
                            }
                            None => {
                                inner.rx_ready.push_back((wc.wr_id.0 as usize, wc.byte_len));
                            }
                        }
                    }
                    WcStatus::Success if wc.opcode == WcOpcode::Recv => {
                        inner.rx_ready.push_back((wc.wr_id.0 as usize, wc.byte_len));
                    }
                    WcStatus::WorkRequestFlushed => {
                        inner.eof = true;
                    }
                    other => {
                        inner.broken = Some(format!("receive failed: {other:?}"));
                    }
                }
            }
        }
        // Callbacks run with the channel borrow released: a completion
        // handler may immediately post follow-up reads or sends.
        for (done, data) in finished_reads {
            done(sim, data);
        }
        for (done, ok) in finished_writes {
            done(sim, ok);
        }
        let rang = !doorbells.is_empty();
        for (db, imm, len) in doorbells {
            db(sim, imm, len);
        }
        if rang {
            // Doorbell slabs were recycled without a read() call; flush the
            // repost batch if it filled up.
            self.return_slab(sim, None).ok();
        }
        self.refresh_readiness(sim);
    }

    /// Recomputes readiness and reports it to the registered selector.
    pub(crate) fn refresh_readiness(&self, sim: &mut Simulator) {
        let (reg, receive, send, accept) = {
            let inner = self.inner.borrow();
            let receive = !inner.rx_ready.is_empty() || inner.eof || inner.broken.is_some();
            let send = inner.established
                && inner.broken.is_none()
                && inner.outstanding_sends < inner.cfg.send_buffers
                && inner.send_pool.available() > 0;
            (inner.reg.clone(), receive, send, inner.accept_ready)
        };
        if let Some((sel, key)) = reg {
            sel.set_ready(sim, key, Interest::OP_RECEIVE, receive);
            sel.set_ready(sim, key, Interest::OP_SEND, send);
            sel.set_ready(sim, key, Interest::OP_ACCEPT, accept);
        }
    }

    /// Disconnects the channel, notifying the peer.
    pub fn close(&self, sim: &mut Simulator) {
        let qp = self.qp();
        qp.disconnect(sim);
        let mut inner = self.inner.borrow_mut();
        inner.eof = true;
    }
}
