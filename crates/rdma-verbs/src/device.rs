//! The device context: entry point to all verbs objects on one host.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use simnet::{Addr, CoreId, HostId, Nanos, Network, Simulator};

use crate::cm::{CmEvent, CmListener};
use crate::config::RnicModel;
use crate::cq::{CompChannel, CompletionQueue};
use crate::error::VerbsResult;
use crate::mr::{MemoryRegion, MrTable, ProtectionDomain};
use crate::packet::RdmaPacket;
use crate::qp::QueuePair;
use crate::types::{Access, CqId, LKey, PdId, QpNum, RKey};

/// A callback invoked when device or queue-pair events arrive (used by
/// selectors to wake their event loops).
pub type EventHook = Rc<dyn Fn(&mut Simulator)>;

/// Configuration for creating a queue pair.
#[derive(Debug, Clone)]
pub struct QpConfig {
    /// Protection domain the QP (and all buffers it uses) belongs to.
    pub pd: ProtectionDomain,
    /// Completion queue for send-side completions.
    pub send_cq: CompletionQueue,
    /// Completion queue for receive-side completions.
    pub recv_cq: CompletionQueue,
    /// Core that posting/polling CPU work is charged to.
    pub core: CoreId,
}

pub(crate) struct DeviceInner {
    net: Network,
    host: HostId,
    model: RnicModel,
    mr_table: RefCell<MrTable>,
    next_pd: Cell<u32>,
    next_cq: Cell<u32>,
    next_qp: Cell<u32>,
    next_key: Cell<u32>,
    next_conn: Cell<u64>,
    cm_events: RefCell<VecDeque<CmEvent>>,
    cm_hook: RefCell<Option<EventHook>>,
    mrs_registered: Cell<u64>,
}

/// An open RDMA device context on a host (the analogue of
/// `ibv_open_device` + an `rdma_event_channel`).
///
/// All verbs objects — protection domains, memory regions, completion
/// queues, queue pairs, listeners — are created through the device. Handles
/// are cheaply cloneable.
#[derive(Clone)]
pub struct RdmaDevice {
    inner: Rc<DeviceInner>,
}

impl fmt::Debug for RdmaDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RdmaDevice")
            .field("host", &self.inner.host)
            .field("qps_created", &self.inner.next_qp.get())
            .field("cm_pending", &self.inner.cm_events.borrow().len())
            .finish()
    }
}

impl RdmaDevice {
    /// Opens a device context on `host`.
    pub fn open(net: &Network, host: HostId, model: RnicModel) -> RdmaDevice {
        RdmaDevice {
            inner: Rc::new(DeviceInner {
                net: net.clone(),
                host,
                model,
                mr_table: RefCell::new(MrTable::default()),
                next_pd: Cell::new(0),
                next_cq: Cell::new(0),
                next_qp: Cell::new(0),
                next_key: Cell::new(1),
                next_conn: Cell::new(0),
                cm_events: RefCell::new(VecDeque::new()),
                cm_hook: RefCell::new(None),
                mrs_registered: Cell::new(0),
            }),
        }
    }

    /// The host this device is attached to.
    pub fn host(&self) -> HostId {
        self.inner.host
    }

    /// The underlying network.
    pub fn net(&self) -> &Network {
        &self.inner.net
    }

    /// The NIC cost/capability model.
    pub fn model(&self) -> &RnicModel {
        &self.inner.model
    }

    /// Allocates a protection domain.
    pub fn alloc_pd(&self) -> ProtectionDomain {
        let id = self.inner.next_pd.get();
        self.inner.next_pd.set(id + 1);
        ProtectionDomain::new(PdId(id))
    }

    /// Registers a memory region of `len` zeroed bytes with the given
    /// access flags.
    ///
    /// Registration is a slow operation on real hardware; the cost is
    /// available via [`RnicModel::reg_mr_cost`] for callers that register
    /// on the critical path (the RUBIN buffer pool pre-registers at setup
    /// precisely to avoid this).
    pub fn reg_mr(&self, pd: &ProtectionDomain, len: usize, access: Access) -> MemoryRegion {
        let key = self.inner.next_key.get();
        self.inner.next_key.set(key + 1);
        let mr = MemoryRegion::new(pd.id(), len, access, LKey(key), RKey(key));
        self.inner.mr_table.borrow_mut().insert(&mr);
        self.inner
            .mrs_registered
            .set(self.inner.mrs_registered.get() + 1);
        mr
    }

    /// Number of regions registered so far.
    pub fn mrs_registered(&self) -> u64 {
        self.inner.mrs_registered.get()
    }

    /// Creates a completion queue of the given capacity, optionally
    /// attached to a completion channel.
    pub fn create_cq(&self, capacity: usize, channel: Option<&CompChannel>) -> CompletionQueue {
        let id = self.inner.next_cq.get();
        self.inner.next_cq.set(id + 1);
        CompletionQueue::new(CqId(id), capacity, channel.cloned())
    }

    /// Creates a queue pair in the `Reset` state and binds its data port.
    pub fn create_qp(&self, cfg: &QpConfig) -> QueuePair {
        let num = QpNum(self.inner.next_qp.get());
        self.inner.next_qp.set(num.0 + 1);
        let addr = self.inner.net.ephemeral_port(self.inner.host);
        let qp = QueuePair::new(
            self.clone(),
            num,
            cfg.pd.id(),
            cfg.core,
            cfg.send_cq.clone(),
            cfg.recv_cq.clone(),
            addr,
        );
        let qp_for_handler = qp.clone();
        self.inner.net.bind(
            addr,
            Box::new(move |sim, frame| {
                let corrupted = frame.corrupted;
                match frame.into_payload::<RdmaPacket>() {
                    Ok(mut pkt) => {
                        if corrupted {
                            corrupt_packet(&mut pkt);
                        }
                        qp_for_handler.handle_packet(sim, pkt)
                    }
                    Err(_) => debug_assert!(false, "non-RDMA frame on QP port"),
                }
            }),
        );
        qp
    }

    /// Validates a remote key for a one-sided operation against this
    /// device's registered regions.
    ///
    /// # Errors
    ///
    /// As for [`MrTable::validate`]: bad key, revoked region, denied access
    /// or out-of-bounds range.
    pub(crate) fn validate_remote(
        &self,
        rkey: RKey,
        offset: usize,
        len: usize,
        required: Access,
    ) -> VerbsResult<MemoryRegion> {
        self.inner
            .mr_table
            .borrow()
            .validate(rkey, offset, len, required)
    }

    /// Charges `work` to `core` of this device's host; returns completion.
    pub(crate) fn host_exec(&self, sim: &Simulator, core: CoreId, work: Nanos) -> Nanos {
        self.inner
            .net
            .host(self.inner.host)
            .borrow_mut()
            .exec(sim.now(), core, work)
    }

    /// Charges the CPU cost of one `poll_cq` call that drained `ncqe`
    /// completions; returns the completion instant. Application drivers
    /// call this to account for polling overhead.
    pub fn charge_poll(&self, sim: &Simulator, core: CoreId, ncqe: usize) -> Nanos {
        let m = &self.inner.model;
        let work = Nanos::from_nanos(m.poll_cq_ns + m.handle_cqe_ns * ncqe as u64);
        self.host_exec(sim, core, work)
    }

    /// Starts listening for connection requests on `port`.
    ///
    /// Connection events are delivered to this device's
    /// [CM event queue](Self::poll_cm_event).
    ///
    /// # Errors
    ///
    /// [`VerbsError::AddrInUse`](crate::VerbsError::AddrInUse) if the
    /// port is already bound.
    pub fn listen(&self, port: u32) -> VerbsResult<CmListener> {
        crate::cm::listen(self, port)
    }

    /// Initiates an outgoing connection to a listener at `remote`.
    ///
    /// Returns the local QP (still connecting) and the connection id; a
    /// [`CmEvent::Established`] or [`CmEvent::ConnectFailed`] event carrying
    /// the same id follows on the CM event queue.
    ///
    /// # Errors
    ///
    /// Currently infallible at call time; failures surface as CM events.
    pub fn connect(
        &self,
        sim: &mut Simulator,
        remote: Addr,
        cfg: &QpConfig,
        private: Vec<u8>,
    ) -> VerbsResult<(QueuePair, u64)> {
        crate::cm::connect(self, sim, remote, cfg, private)
    }

    /// Removes and returns the next connection-management event.
    pub fn poll_cm_event(&self) -> Option<CmEvent> {
        self.inner.cm_events.borrow_mut().pop_front()
    }

    /// Number of queued CM events.
    pub fn cm_pending(&self) -> usize {
        self.inner.cm_events.borrow().len()
    }

    pub(crate) fn push_cm_event(&self, sim: &mut Simulator, ev: CmEvent) {
        self.inner.cm_events.borrow_mut().push_back(ev);
        let hook = self.inner.cm_hook.borrow().clone();
        if let Some(h) = hook {
            h(sim);
        }
    }

    /// Installs a hook invoked whenever a CM event is queued (RUBIN's
    /// event manager uses this to surface connection events in its hybrid
    /// event queue). Replaces any previous hook.
    pub fn set_cm_hook(&self, hook: EventHook) {
        *self.inner.cm_hook.borrow_mut() = Some(hook);
    }

    pub(crate) fn next_conn_id(&self) -> u64 {
        let id = self.inner.next_conn.get();
        self.inner.next_conn.set(id + 1);
        id
    }
}

/// Materializes a fault-injected corruption verdict on a delivered packet:
/// the last payload byte of a data-bearing packet is flipped, so integrity
/// checks layered above (the BFT MACs) see a genuinely damaged message.
/// Control packets pass through untouched — corrupting an ACK on real
/// hardware fails its CRC and is equivalent to a loss, which the fault
/// plane models separately.
fn corrupt_packet(pkt: &mut RdmaPacket) {
    let data = match pkt {
        RdmaPacket::Send { data, .. }
        | RdmaPacket::WriteReq { data, .. }
        | RdmaPacket::ReadResp { data, .. } => data,
        _ => return,
    };
    if let Some(byte) = data.last_mut() {
        *byte ^= 0xff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::TestBed;

    #[test]
    fn device_allocates_unique_ids() {
        let tb = TestBed::paper_testbed(0);
        let dev = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
        let pd1 = dev.alloc_pd();
        let pd2 = dev.alloc_pd();
        assert_ne!(pd1.id(), pd2.id());
        let mr1 = dev.reg_mr(&pd1, 64, Access::LOCAL_WRITE);
        let mr2 = dev.reg_mr(&pd1, 64, Access::LOCAL_WRITE);
        assert_ne!(mr1.rkey(), mr2.rkey());
        assert_eq!(dev.mrs_registered(), 2);
        let cq1 = dev.create_cq(8, None);
        let cq2 = dev.create_cq(8, None);
        assert_ne!(cq1.id(), cq2.id());
    }

    #[test]
    fn qp_ports_are_distinct() {
        let tb = TestBed::paper_testbed(0);
        let dev = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
        let pd = dev.alloc_pd();
        let cq = dev.create_cq(16, None);
        let cfg = QpConfig {
            pd,
            send_cq: cq.clone(),
            recv_cq: cq,
            core: CoreId(0),
        };
        let q1 = dev.create_qp(&cfg);
        let q2 = dev.create_qp(&cfg);
        assert_ne!(q1.num(), q2.num());
        assert_ne!(q1.local_addr(), q2.local_addr());
    }
}
