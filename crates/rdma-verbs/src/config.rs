//! RNIC capability and cost model.

use simnet::Nanos;

/// Timing model and capabilities of the simulated RDMA NIC.
///
/// Defaults model the paper's Mellanox ConnectX-3 Pro (MT27520) accessed
/// through a managed-runtime verbs binding (jVerbs/DiSNI): the *hardware*
/// constants are physically plausible for PCIe gen3, while the *software*
/// constants (posting, polling) include the binding's marshalling overhead,
/// which is what makes ill-advised configurations fall back to TCP-level
/// performance (paper §I).
#[derive(Debug, Clone, PartialEq)]
pub struct RnicModel {
    /// CPU cost of posting one work request (WQE build + doorbell).
    pub post_wr_ns: u64,
    /// CPU cost of each *additional* WR in a batched post; batching posts
    /// amortizes the doorbell (paper §IV optimization).
    pub post_batch_extra_ns: u64,
    /// NIC-side latency to fetch a WQE and start processing.
    pub wqe_fetch_ns: u64,
    /// PCIe DMA cost per byte (NIC reads payload from host memory, or
    /// writes it on the receive side). Not charged for inline sends.
    pub dma_ns_per_byte: f64,
    /// Fixed PCIe round-trip to start a DMA fetch of the payload — the
    /// latency an *inline* send avoids entirely (paper §IV: "the RDMA
    /// device does not need to perform additional read operations to get
    /// the payload").
    pub dma_fetch_base_ns: u64,
    /// NIC-side latency to generate a completion entry.
    pub cqe_ns: u64,
    /// CPU cost of one `poll_cq` call (JNI boundary + queue scan).
    pub poll_cq_ns: u64,
    /// CPU cost of handling one drained completion entry.
    pub handle_cqe_ns: u64,
    /// Maximum payload that can be sent inline in the WQE (no DMA read).
    pub max_inline: usize,
    /// Maximum outstanding send work requests per QP.
    pub max_send_wr: usize,
    /// Maximum outstanding receive work requests per QP.
    pub max_recv_wr: usize,
    /// Maximum WRs accepted by a single post call (device batch limit).
    pub max_post_batch: usize,
    /// Receiver-not-ready retry count before failing a send.
    pub rnr_retry: u32,
    /// Delay between RNR retries.
    pub rnr_timer: Nanos,
    /// Transport retry count: how many times an unacknowledged operation is
    /// retransmitted before the send fails with
    /// [`WcStatus::RetryExceeded`](crate::WcStatus::RetryExceeded) and the
    /// QP enters the error state. Mirrors ibverbs `retry_cnt` (7 is the
    /// common maximum).
    pub retry_cnt: u32,
    /// ACK timeout: how long the connection may go without cumulative ACK
    /// progress before the oldest unacknowledged operation is
    /// retransmitted. Mirrors ibverbs `timeout` (which encodes
    /// `4.096 µs × 2^timeout`); here the duration is given directly. The
    /// clock measures *silence*, not per-packet age — operations queued
    /// behind a deep send window are not retransmitted while ACKs keep
    /// advancing — so the value must exceed the worst-case single-message
    /// ACK round trip, including the receiver's RNR hold window
    /// (`rnr_timer × (rnr_retry + 1)`), not the whole queue's drain time.
    /// `Nanos::ZERO` disables retransmission entirely (pre-recovery
    /// behaviour: a lost frame stalls the sender forever).
    pub timeout: Nanos,
    /// Wire size of a NIC-level acknowledgement.
    pub ack_bytes: usize,
    /// Memory-registration cost: fixed part (ioctl, key allocation).
    pub reg_mr_base_ns: u64,
    /// Memory-registration cost per page pinned (4 KiB pages).
    pub reg_mr_per_page_ns: u64,
}

impl RnicModel {
    /// The paper's testbed NIC (ConnectX-3 Pro over RoCE, DiSNI binding).
    pub fn mt27520() -> RnicModel {
        RnicModel {
            post_wr_ns: 2_500,
            post_batch_extra_ns: 300,
            wqe_fetch_ns: 400,
            dma_ns_per_byte: 0.15,
            dma_fetch_base_ns: 700,
            cqe_ns: 1_500,
            poll_cq_ns: 1_500,
            handle_cqe_ns: 1_000,
            max_inline: 256,
            max_send_wr: 128,
            max_recv_wr: 512,
            max_post_batch: 32,
            rnr_retry: 6,
            rnr_timer: Nanos::from_micros(80),
            retry_cnt: 7,
            // > rnr_timer × (rnr_retry + 1) = 560 µs, so a message held at
            // the receiver is not also retransmitted from the sender.
            timeout: Nanos::from_millis(1),
            ack_bytes: 16,
            reg_mr_base_ns: 15_000,
            reg_mr_per_page_ns: 250,
        }
    }

    /// DMA cost for `bytes` of payload.
    pub fn dma_cost(&self, bytes: usize) -> Nanos {
        Nanos::from_nanos((self.dma_ns_per_byte * bytes as f64) as u64)
    }

    /// Cost of registering a memory region of `len` bytes.
    pub fn reg_mr_cost(&self, len: usize) -> Nanos {
        let pages = len.div_ceil(4096).max(1) as u64;
        Nanos::from_nanos(self.reg_mr_base_ns + pages * self.reg_mr_per_page_ns)
    }

    /// CPU cost of posting a batch of `n` work requests in one call.
    pub fn post_batch_cost(&self, n: usize) -> Nanos {
        if n == 0 {
            return Nanos::ZERO;
        }
        Nanos::from_nanos(self.post_wr_ns + (n as u64 - 1) * self.post_batch_extra_ns)
    }
}

impl Default for RnicModel {
    fn default() -> RnicModel {
        RnicModel::mt27520()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_cost_scales() {
        let m = RnicModel::mt27520();
        assert_eq!(m.dma_cost(0), Nanos::ZERO);
        let one_kb = m.dma_cost(1024).as_nanos();
        let hundred_kb = m.dma_cost(102_400).as_nanos();
        assert!(hundred_kb >= 99 * one_kb);
    }

    #[test]
    fn reg_mr_cost_counts_pages() {
        let m = RnicModel::mt27520();
        let one_page = m.reg_mr_cost(100);
        let two_pages = m.reg_mr_cost(5_000);
        assert_eq!(
            two_pages.as_nanos() - one_page.as_nanos(),
            m.reg_mr_per_page_ns
        );
    }

    #[test]
    fn batched_posting_amortizes() {
        let m = RnicModel::mt27520();
        let ten_single = m.post_batch_cost(1).as_nanos() * 10;
        let one_batch = m.post_batch_cost(10).as_nanos();
        assert!(one_batch < ten_single);
        assert_eq!(m.post_batch_cost(0), Nanos::ZERO);
    }
}
