//! Work requests: the unit of data transfer posted to a queue pair.

use crate::mr::MemoryRegion;
use crate::types::{RKey, WrId};

/// A scatter/gather element: one contiguous slice of a registered region.
///
/// The simulator supports a single SGE per work request, which is all the
/// RUBIN framework and the Reptor stack require.
#[derive(Debug, Clone)]
pub struct Sge {
    /// The registered region.
    pub mr: MemoryRegion,
    /// Start offset within the region.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
}

impl Sge {
    /// References `[offset, offset+len)` of `mr`.
    pub fn new(mr: MemoryRegion, offset: usize, len: usize) -> Sge {
        Sge { mr, offset, len }
    }

    /// References the whole region.
    pub fn whole(mr: MemoryRegion) -> Sge {
        let len = mr.len();
        Sge { mr, offset: 0, len }
    }
}

/// The operation kind of a send-queue work request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendOp {
    /// Two-sided SEND: consumes a receive WR at the remote QP.
    Send {
        /// Optional immediate data delivered with the message.
        imm: Option<u32>,
    },
    /// One-sided RDMA WRITE into remote memory identified by rkey+offset.
    Write {
        /// Remote region key (Steering Tag).
        rkey: RKey,
        /// Offset within the remote region.
        remote_offset: usize,
        /// If set, also consumes a remote receive WR and generates a
        /// remote completion carrying this immediate (WRITE_WITH_IMM).
        imm: Option<u32>,
    },
    /// One-sided RDMA READ from remote memory into the local SGE.
    Read {
        /// Remote region key (Steering Tag).
        rkey: RKey,
        /// Offset within the remote region.
        remote_offset: usize,
    },
}

/// A send-queue work request.
///
/// Construct with the focused constructors and refine with the builder
/// methods:
///
/// ```no_run
/// # use rdma_verbs::{SendWr, Sge, WrId};
/// # fn demo(sge: Sge) {
/// let wr = SendWr::send(WrId(7), sge).signaled().with_inline();
/// # let _ = wr;
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SendWr {
    /// Caller-chosen id echoed in the completion.
    pub wr_id: WrId,
    /// The local buffer (source for SEND/WRITE, destination for READ).
    pub sge: Sge,
    /// Operation kind.
    pub op: SendOp,
    /// Whether a successful completion generates a CQE. Errors always do.
    /// Posting unsignaled WRs is the *selective signaling* optimization of
    /// paper §IV.
    pub signaled: bool,
    /// Whether the payload is placed inline in the WQE, skipping the DMA
    /// read (paper §IV; only valid up to the device inline limit).
    pub inline: bool,
}

impl SendWr {
    /// A two-sided SEND of the SGE contents.
    pub fn send(wr_id: WrId, sge: Sge) -> SendWr {
        SendWr {
            wr_id,
            sge,
            op: SendOp::Send { imm: None },
            signaled: false,
            inline: false,
        }
    }

    /// A two-sided SEND carrying immediate data.
    pub fn send_with_imm(wr_id: WrId, sge: Sge, imm: u32) -> SendWr {
        SendWr {
            op: SendOp::Send { imm: Some(imm) },
            ..SendWr::send(wr_id, sge)
        }
    }

    /// A one-sided RDMA WRITE of the SGE contents into remote memory.
    pub fn write(wr_id: WrId, sge: Sge, rkey: RKey, remote_offset: usize) -> SendWr {
        SendWr {
            wr_id,
            sge,
            op: SendOp::Write {
                rkey,
                remote_offset,
                imm: None,
            },
            signaled: false,
            inline: false,
        }
    }

    /// A one-sided RDMA WRITE that also raises a remote completion with
    /// immediate data.
    pub fn write_with_imm(
        wr_id: WrId,
        sge: Sge,
        rkey: RKey,
        remote_offset: usize,
        imm: u32,
    ) -> SendWr {
        SendWr {
            wr_id,
            sge,
            op: SendOp::Write {
                rkey,
                remote_offset,
                imm: Some(imm),
            },
            signaled: false,
            inline: false,
        }
    }

    /// A one-sided RDMA READ from remote memory into the SGE.
    pub fn read(wr_id: WrId, sge: Sge, rkey: RKey, remote_offset: usize) -> SendWr {
        SendWr {
            wr_id,
            sge,
            op: SendOp::Read {
                rkey,
                remote_offset,
            },
            signaled: false,
            inline: false,
        }
    }

    /// Requests a completion entry on success.
    pub fn signaled(mut self) -> SendWr {
        self.signaled = true;
        self
    }

    /// Requests inline transmission (small payloads only).
    pub fn with_inline(mut self) -> SendWr {
        self.inline = true;
        self
    }
}

/// A receive-queue work request: a buffer the NIC may place one inbound
/// SEND into.
#[derive(Debug, Clone)]
pub struct RecvWr {
    /// Caller-chosen id echoed in the completion.
    pub wr_id: WrId,
    /// Destination buffer; must grant [`Access::LOCAL_WRITE`](crate::Access::LOCAL_WRITE).
    pub sge: Sge,
}

impl RecvWr {
    /// Creates a receive work request for the given buffer.
    pub fn new(wr_id: WrId, sge: Sge) -> RecvWr {
        RecvWr { wr_id, sge }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr::MemoryRegion;
    use crate::types::{Access, LKey, PdId};

    fn mr() -> MemoryRegion {
        MemoryRegion::new(PdId(0), 64, Access::LOCAL_WRITE, LKey(1), RKey(2))
    }

    #[test]
    fn constructors_set_ops() {
        let wr = SendWr::send(WrId(1), Sge::whole(mr()));
        assert_eq!(wr.op, SendOp::Send { imm: None });
        assert!(!wr.signaled);
        assert!(!wr.inline);

        let wr = SendWr::send_with_imm(WrId(1), Sge::whole(mr()), 9);
        assert_eq!(wr.op, SendOp::Send { imm: Some(9) });

        let wr = SendWr::write(WrId(2), Sge::whole(mr()), RKey(5), 8).signaled();
        assert!(matches!(
            wr.op,
            SendOp::Write {
                rkey: RKey(5),
                remote_offset: 8,
                imm: None
            }
        ));
        assert!(wr.signaled);

        let wr = SendWr::write_with_imm(WrId(2), Sge::whole(mr()), RKey(5), 0, 3);
        assert!(matches!(wr.op, SendOp::Write { imm: Some(3), .. }));

        let wr = SendWr::read(WrId(3), Sge::whole(mr()), RKey(5), 16).with_inline();
        assert!(matches!(wr.op, SendOp::Read { .. }));
        assert!(wr.inline);
    }

    #[test]
    fn sge_whole_covers_region() {
        let sge = Sge::whole(mr());
        assert_eq!(sge.offset, 0);
        assert_eq!(sge.len, 64);
        let sge = Sge::new(mr(), 8, 16);
        assert_eq!((sge.offset, sge.len), (8, 16));
    }
}
