//! Error types for the verbs API.

use std::error::Error;
use std::fmt;

use crate::types::{Access, QpNum, QpState, RKey};

/// Result alias for verbs operations.
pub type VerbsResult<T> = Result<T, VerbsError>;

/// Errors returned synchronously by verbs calls.
///
/// Asynchronous failures (remote access violations, RNR exhaustion) surface
/// as error [work completions](crate::Wc) instead, as on real hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerbsError {
    /// The referenced byte range does not fit in the memory region.
    InvalidRange {
        /// Requested start offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Region capacity.
        capacity: usize,
    },
    /// The memory region was deregistered.
    Deregistered,
    /// No region is registered under this remote key.
    BadRKey(RKey),
    /// The region does not grant the required access.
    AccessDenied {
        /// The offending key.
        rkey: RKey,
        /// Access the region grants.
        granted: Access,
        /// Access the operation required.
        required: Access,
    },
    /// Operation not permitted in the QP's current state.
    InvalidQpState {
        /// The queue pair.
        qp: QpNum,
        /// Its current state.
        state: QpState,
    },
    /// The send or receive queue is full.
    QueueFull {
        /// The queue pair.
        qp: QpNum,
        /// Capacity that was exceeded.
        capacity: usize,
    },
    /// Inline send payload exceeds the device's inline limit.
    InlineTooLarge {
        /// Payload length requested inline.
        len: usize,
        /// Device inline capacity.
        max: usize,
    },
    /// A memory region from a different protection domain was used.
    PdMismatch,
    /// The post call exceeded the device's batch limit.
    BatchTooLarge {
        /// Requested batch size.
        len: usize,
        /// Device maximum.
        max: usize,
    },
    /// Local MR lacks permission needed by the operation (e.g. receive
    /// buffer without `LOCAL_WRITE`).
    LocalAccess,
    /// Connection establishment failed.
    ConnectFailed(String),
    /// The address is already in use by another listener.
    AddrInUse,
}

impl fmt::Display for VerbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbsError::InvalidRange {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "range [{offset}, {offset}+{len}) exceeds region capacity {capacity}"
            ),
            VerbsError::Deregistered => write!(f, "memory region was deregistered"),
            VerbsError::BadRKey(k) => write!(f, "no region registered for rkey {}", k.0),
            VerbsError::AccessDenied { rkey, .. } => {
                write!(f, "region rkey {} denies the requested access", rkey.0)
            }
            VerbsError::InvalidQpState { qp, state } => {
                write!(f, "{qp} cannot perform this operation in state {state:?}")
            }
            VerbsError::QueueFull { qp, capacity } => {
                write!(f, "{qp} queue full (capacity {capacity})")
            }
            VerbsError::InlineTooLarge { len, max } => {
                write!(
                    f,
                    "inline payload of {len} bytes exceeds device limit {max}"
                )
            }
            VerbsError::PdMismatch => {
                write!(f, "memory region belongs to a different protection domain")
            }
            VerbsError::BatchTooLarge { len, max } => {
                write!(f, "posted batch of {len} exceeds device limit {max}")
            }
            VerbsError::LocalAccess => {
                write!(f, "local memory region lacks required access flags")
            }
            VerbsError::ConnectFailed(why) => write!(f, "connection failed: {why}"),
            VerbsError::AddrInUse => write!(f, "address already in use"),
        }
    }
}

impl Error for VerbsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errs = [
            VerbsError::InvalidRange {
                offset: 1,
                len: 2,
                capacity: 2,
            },
            VerbsError::Deregistered,
            VerbsError::BadRKey(RKey(9)),
            VerbsError::AccessDenied {
                rkey: RKey(9),
                granted: Access::NONE,
                required: Access::REMOTE_READ,
            },
            VerbsError::InvalidQpState {
                qp: QpNum(1),
                state: QpState::Reset,
            },
            VerbsError::QueueFull {
                qp: QpNum(1),
                capacity: 8,
            },
            VerbsError::InlineTooLarge { len: 512, max: 256 },
            VerbsError::PdMismatch,
            VerbsError::BatchTooLarge { len: 64, max: 32 },
            VerbsError::LocalAccess,
            VerbsError::ConnectFailed("refused".into()),
            VerbsError::AddrInUse,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: Error + Send + Sync>(_e: E) {}
        takes_err(VerbsError::Deregistered);
    }
}
