//! Queue pairs: the RC (reliable connection) transport endpoint.
//!
//! A [`QueuePair`] owns a send queue and a receive queue. Posted send work
//! requests are charged to the owning core (WQE build + doorbell), then the
//! simulated NIC fetches the WQE, DMAs the payload (unless inline) and emits
//! a packet; the remote NIC validates, places data and acknowledges. All
//! latencies come from the [`RnicModel`](crate::RnicModel).
//!
//! ## Divergences from hardware, by design
//!
//! * Receiver-not-ready is modelled as a bounded *hold window*: an inbound
//!   SEND that finds no receive WR waits up to `rnr_timer × (rnr_retry+1)`
//!   for one to be posted, then fails the sender with `RnrRetryExceeded`.
//!   This preserves RC's in-order delivery without simulating per-packet
//!   RNR polling, while still failing loudly when an application
//!   under-posts receives (the pitfall paper §II-A warns about).
//! * Loss recovery is retransmission at *message* granularity: every
//!   unacknowledged operation keeps a copy of its packet and an ACK-timeout
//!   timer ([`RnicModel::timeout`](crate::RnicModel)); on expiry the packet
//!   is re-sent up to [`RnicModel::retry_cnt`](crate::RnicModel) times, then
//!   the WR fails with [`WcStatus::RetryExceeded`] and the QP enters the
//!   error state. The receiver accepts request packets only at its in-order
//!   sequence watermark, exactly like RC hardware's go-back-N responder: a
//!   packet ahead of the watermark (an earlier one was lost in flight) is
//!   dropped without an ACK and recovered by the sender's timeout, and a
//!   packet behind it (a retransmitted or fault-duplicated copy) is
//!   suppressed and re-ACKed. Delivery is therefore exactly-once *and
//!   in-order* even on lossy links — protocol layers above may rely on RC
//!   FIFO semantics.
//! * A NAK moves the QP to the error state and flushes outstanding work,
//!   as on real hardware.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use simnet::{Addr, CoreId, EventId, Frame, Nanos, Simulator};

use crate::device::{EventHook, RdmaDevice};
use crate::error::{VerbsError, VerbsResult};
use crate::packet::RdmaPacket;
use crate::types::{Access, QpNum, QpState, Wc, WcOpcode, WcStatus, WrId};
use crate::wr::{RecvWr, SendOp, SendWr};
use crate::CompletionQueue;

/// Counters exposed for tests, ablations and debugging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QpStats {
    /// Send-queue WRs posted.
    pub sends_posted: u64,
    /// Receive-queue WRs posted.
    pub recvs_posted: u64,
    /// Payload bytes carried by completed outbound operations.
    pub bytes_sent: u64,
    /// Payload bytes placed by inbound operations.
    pub bytes_received: u64,
    /// Inbound messages that had to wait for a receive WR (RNR holds).
    pub rnr_stalls: u64,
    /// Successful completions suppressed by selective signaling.
    pub completions_suppressed: u64,
    /// Packets dropped because the QP could not receive.
    pub dropped_packets: u64,
    /// Operations retransmitted after an ACK timeout.
    pub retransmits: u64,
    /// Inbound duplicates (retransmitted or fault-duplicated copies)
    /// suppressed by receiver-side sequence tracking.
    pub duplicates_suppressed: u64,
    /// Inbound request packets dropped for arriving ahead of the in-order
    /// sequence watermark (go-back-N: an earlier packet was lost and the
    /// sender will retransmit the whole tail in order).
    pub ooo_dropped: u64,
}

struct PendingSend {
    wr_id: WrId,
    signaled: bool,
    opcode: WcOpcode,
    byte_len: usize,
    /// Local destination for READ responses.
    read_sink: Option<crate::wr::Sge>,
    /// Copy of the emitted packet, kept for retransmission.
    packet: RdmaPacket,
    /// Transport retries remaining before `RetryExceeded`.
    retries_left: u32,
    /// The armed ACK-timeout event, cancelled when the operation completes.
    retry_timer: Option<EventId>,
}

struct HeldInbound {
    seq: u64,
    packet: RdmaPacket,
}

pub(crate) struct QpInner {
    num: QpNum,
    state: QpState,
    pd: crate::types::PdId,
    core: CoreId,
    send_cq: CompletionQueue,
    recv_cq: CompletionQueue,
    local_addr: Addr,
    remote: Option<(Addr, QpNum)>,
    recv_queue: VecDeque<RecvWr>,
    held: VecDeque<HeldInbound>,
    pending: HashMap<u64, PendingSend>,
    /// Send WRs accepted but not yet completed (capacity accounting).
    outstanding_sends: usize,
    /// The NIC's WQE-processing horizon: send work requests are fetched
    /// and executed in posting order.
    nic_busy_until: Nanos,
    next_seq: u64,
    /// Receiver-side sequence watermark: the next in-order sequence number
    /// expected from the remote QP. Request packets are accepted only at
    /// exactly this value (RC go-back-N ordering); anything below it is a
    /// duplicate, anything above it is dropped for the sender to retransmit.
    rx_expected: u64,
    /// When the last ACK advanced the pending window. The retransmission
    /// timeout clocks *silence*, not per-packet age: as long as cumulative
    /// ACK progress is being made, queued-behind operations are not
    /// retransmitted (RC hardware times the oldest unacknowledged PSN and
    /// restarts the clock on every ACK).
    last_ack_progress: Nanos,
    stats: QpStats,
    /// Shared cross-layer registry (the owning network's), plus this QP's
    /// key prefix `rdma.{host}.{qpnum}.`.
    metrics: simnet::Metrics,
    metrics_prefix: String,
    /// Invoked after packet processing that may have produced completions
    /// or state changes — the completion-interrupt analogue RUBIN's event
    /// manager hooks into.
    event_hook: Option<EventHook>,
}

impl QpInner {
    fn bump(&self, metric: &str, n: u64) {
        self.metrics
            .incr_by(&format!("{}{metric}", self.metrics_prefix), n);
    }

    /// Advances the in-order watermark after accepting the expected
    /// sequence number. No-op for re-served duplicates (idempotent READs).
    fn rx_mark_seen(&mut self, seq: u64) {
        debug_assert!(seq <= self.rx_expected, "packet past the ordering gate");
        if seq == self.rx_expected {
            self.rx_expected += 1;
        }
    }
}

/// A reliable-connection queue pair.
///
/// Create with [`RdmaDevice::create_qp`](crate::RdmaDevice::create_qp);
/// connect either through the connection manager
/// ([`RdmaDevice::listen`](crate::RdmaDevice::listen) /
/// [`RdmaDevice::connect`](crate::RdmaDevice::connect)) or manually with
/// [`connect_pair`] in tests.
#[derive(Clone)]
pub struct QueuePair {
    pub(crate) inner: Rc<RefCell<QpInner>>,
    pub(crate) device: RdmaDevice,
}

impl fmt::Debug for QueuePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("QueuePair")
            .field("num", &inner.num)
            .field("state", &inner.state)
            .field("local_addr", &inner.local_addr)
            .field("remote", &inner.remote)
            .field("recv_posted", &inner.recv_queue.len())
            .field("pending_sends", &inner.pending.len())
            .finish()
    }
}

impl QueuePair {
    pub(crate) fn new(
        device: RdmaDevice,
        num: QpNum,
        pd: crate::types::PdId,
        core: CoreId,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        local_addr: Addr,
    ) -> QueuePair {
        let metrics = device.net().metrics();
        let metrics_prefix = format!("rdma.{}.{num}.", local_addr.host);
        QueuePair {
            inner: Rc::new(RefCell::new(QpInner {
                num,
                state: QpState::Reset,
                pd,
                core,
                send_cq,
                recv_cq,
                local_addr,
                remote: None,
                recv_queue: VecDeque::new(),
                held: VecDeque::new(),
                pending: HashMap::new(),
                outstanding_sends: 0,
                nic_busy_until: Nanos::ZERO,
                next_seq: 0,
                rx_expected: 0,
                last_ack_progress: Nanos::ZERO,
                stats: QpStats::default(),
                metrics,
                metrics_prefix,
                event_hook: None,
            })),
            device,
        }
    }

    /// The queue pair number.
    pub fn num(&self) -> QpNum {
        self.inner.borrow().num
    }

    /// Current state.
    pub fn state(&self) -> QpState {
        self.inner.borrow().state
    }

    /// The address inbound packets for this QP arrive on.
    pub fn local_addr(&self) -> Addr {
        self.inner.borrow().local_addr
    }

    /// Remote endpoint, once connected.
    pub fn remote(&self) -> Option<(Addr, QpNum)> {
        self.inner.borrow().remote
    }

    /// The core this QP's posting/polling work is charged to.
    pub fn core(&self) -> CoreId {
        self.inner.borrow().core
    }

    /// The send completion queue.
    pub fn send_cq(&self) -> CompletionQueue {
        self.inner.borrow().send_cq.clone()
    }

    /// The receive completion queue.
    pub fn recv_cq(&self) -> CompletionQueue {
        self.inner.borrow().recv_cq.clone()
    }

    /// Operation counters.
    pub fn stats(&self) -> QpStats {
        self.inner.borrow().stats
    }

    /// Number of receive WRs currently posted.
    pub fn recv_posted(&self) -> usize {
        self.inner.borrow().recv_queue.len()
    }

    /// Installs a hook invoked after any NIC activity that may have pushed
    /// a completion or changed connection state (the completion-event
    /// interrupt). Replaces any previous hook.
    pub fn set_event_hook(&self, hook: EventHook) {
        self.inner.borrow_mut().event_hook = Some(hook);
    }

    fn fire_hook(&self, sim: &mut Simulator) {
        let hook = self.inner.borrow().event_hook.clone();
        if let Some(h) = hook {
            h(sim);
        }
    }

    /// Transitions `Reset → Init`.
    ///
    /// # Errors
    ///
    /// [`VerbsError::InvalidQpState`] unless currently `Reset`.
    pub fn modify_to_init(&self) -> VerbsResult<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.state != QpState::Reset {
            return Err(VerbsError::InvalidQpState {
                qp: inner.num,
                state: inner.state,
            });
        }
        inner.state = QpState::Init;
        Ok(())
    }

    /// Transitions `Init → ReadyToReceive`, recording the remote endpoint.
    ///
    /// # Errors
    ///
    /// [`VerbsError::InvalidQpState`] unless currently `Init`.
    pub fn modify_to_rtr(&self, remote_addr: Addr, remote_qp: QpNum) -> VerbsResult<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.state != QpState::Init {
            return Err(VerbsError::InvalidQpState {
                qp: inner.num,
                state: inner.state,
            });
        }
        inner.remote = Some((remote_addr, remote_qp));
        inner.state = QpState::ReadyToReceive;
        Ok(())
    }

    /// Transitions `ReadyToReceive → ReadyToSend`.
    ///
    /// # Errors
    ///
    /// [`VerbsError::InvalidQpState`] unless currently `ReadyToReceive`.
    pub fn modify_to_rts(&self) -> VerbsResult<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.state != QpState::ReadyToReceive {
            return Err(VerbsError::InvalidQpState {
                qp: inner.num,
                state: inner.state,
            });
        }
        inner.state = QpState::ReadyToSend;
        Ok(())
    }

    /// Posts one receive work request. See [`post_recv_batch`](Self::post_recv_batch).
    ///
    /// # Errors
    ///
    /// As for [`post_recv_batch`](Self::post_recv_batch).
    pub fn post_recv(&self, sim: &mut Simulator, wr: RecvWr) -> VerbsResult<()> {
        self.post_recv_batch(sim, vec![wr])
    }

    /// Posts a batch of receive work requests in one doorbell, the
    /// batched-posting optimization of paper §IV.
    ///
    /// # Errors
    ///
    /// * [`VerbsError::InvalidQpState`] before `Init`.
    /// * [`VerbsError::BatchTooLarge`] beyond the device batch limit.
    /// * [`VerbsError::QueueFull`] beyond `max_recv_wr` outstanding.
    /// * [`VerbsError::PdMismatch`] / [`VerbsError::InvalidRange`] /
    ///   [`VerbsError::LocalAccess`] for bad buffers.
    pub fn post_recv_batch(&self, sim: &mut Simulator, wrs: Vec<RecvWr>) -> VerbsResult<()> {
        let model = self.device.model().clone();
        let cpu_done;
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.state.can_post_recv() {
                return Err(VerbsError::InvalidQpState {
                    qp: inner.num,
                    state: inner.state,
                });
            }
            if wrs.len() > model.max_post_batch {
                return Err(VerbsError::BatchTooLarge {
                    len: wrs.len(),
                    max: model.max_post_batch,
                });
            }
            if inner.recv_queue.len() + wrs.len() > model.max_recv_wr {
                return Err(VerbsError::QueueFull {
                    qp: inner.num,
                    capacity: model.max_recv_wr,
                });
            }
            for wr in &wrs {
                if wr.sge.mr.pd() != inner.pd {
                    return Err(VerbsError::PdMismatch);
                }
                wr.sge.mr.check_range(wr.sge.offset, wr.sge.len)?;
                if !wr.sge.mr.access().allows(Access::LOCAL_WRITE) {
                    return Err(VerbsError::LocalAccess);
                }
            }
            let cost = model.post_batch_cost(wrs.len());
            let core = inner.core;
            cpu_done = self.device.host_exec(sim, core, cost);
            inner.stats.recvs_posted += wrs.len() as u64;
            inner.bump("recvs_posted", wrs.len() as u64);
            inner.recv_queue.extend(wrs);
        }
        // Any held inbound messages can now be delivered (after the posting
        // CPU work completes).
        let qp = self.clone();
        sim.schedule_at(cpu_done, Box::new(move |sim| qp.drain_held(sim)));
        Ok(())
    }

    /// Posts one send work request. See [`post_send_batch`](Self::post_send_batch).
    ///
    /// # Errors
    ///
    /// As for [`post_send_batch`](Self::post_send_batch).
    pub fn post_send(&self, sim: &mut Simulator, wr: SendWr) -> VerbsResult<()> {
        self.post_send_batch(sim, vec![wr])
    }

    /// Posts a batch of send work requests in one doorbell.
    ///
    /// Successful completions are only generated for WRs with
    /// [`signaled`](SendWr::signaled) set (selective signaling); failed
    /// operations always complete with an error status.
    ///
    /// # Errors
    ///
    /// * [`VerbsError::InvalidQpState`] unless in `ReadyToSend`.
    /// * [`VerbsError::BatchTooLarge`] beyond the device batch limit.
    /// * [`VerbsError::QueueFull`] beyond `max_send_wr` outstanding.
    /// * [`VerbsError::InlineTooLarge`] for oversized inline payloads.
    /// * [`VerbsError::PdMismatch`] / [`VerbsError::InvalidRange`] /
    ///   [`VerbsError::LocalAccess`] for bad buffers.
    pub fn post_send_batch(&self, sim: &mut Simulator, wrs: Vec<SendWr>) -> VerbsResult<()> {
        let model = self.device.model().clone();
        let cpu_done;
        {
            let mut inner = self.inner.borrow_mut();
            if !inner.state.can_post_send() {
                return Err(VerbsError::InvalidQpState {
                    qp: inner.num,
                    state: inner.state,
                });
            }
            if wrs.len() > model.max_post_batch {
                return Err(VerbsError::BatchTooLarge {
                    len: wrs.len(),
                    max: model.max_post_batch,
                });
            }
            if inner.outstanding_sends + wrs.len() > model.max_send_wr {
                return Err(VerbsError::QueueFull {
                    qp: inner.num,
                    capacity: model.max_send_wr,
                });
            }
            for wr in &wrs {
                if wr.sge.mr.pd() != inner.pd {
                    return Err(VerbsError::PdMismatch);
                }
                wr.sge.mr.check_range(wr.sge.offset, wr.sge.len)?;
                if wr.inline && wr.sge.len > model.max_inline {
                    return Err(VerbsError::InlineTooLarge {
                        len: wr.sge.len,
                        max: model.max_inline,
                    });
                }
                if matches!(wr.op, SendOp::Read { .. })
                    && !wr.sge.mr.access().allows(Access::LOCAL_WRITE)
                {
                    return Err(VerbsError::LocalAccess);
                }
            }
            let cost = model.post_batch_cost(wrs.len());
            let core = inner.core;
            cpu_done = self.device.host_exec(sim, core, cost);
            inner.stats.sends_posted += wrs.len() as u64;
            inner.bump("sends_posted", wrs.len() as u64);
            for wr in &wrs {
                if wr.inline {
                    inner.bump("inline_sends", 1);
                } else {
                    inner.bump("dma_sends", 1);
                }
            }
            inner.outstanding_sends += wrs.len();
        }
        // NIC processing: WQE fetch plus payload DMA (skipped inline).
        // The NIC consumes WQEs strictly in posting order (RC ordering).
        for wr in wrs {
            let nic_ready = {
                let mut inner = self.inner.borrow_mut();
                let start = cpu_done.max(inner.nic_busy_until);
                let mut ready = start + Nanos::from_nanos(model.wqe_fetch_ns);
                let needs_dma = !wr.inline && !matches!(wr.op, SendOp::Read { .. });
                if needs_dma {
                    ready +=
                        Nanos::from_nanos(model.dma_fetch_base_ns) + model.dma_cost(wr.sge.len);
                    self.device
                        .net()
                        .host(inner.local_addr.host)
                        .borrow()
                        .count_dma(wr.sge.len);
                }
                inner.nic_busy_until = ready;
                ready
            };
            let qp = self.clone();
            sim.schedule_at(nic_ready, Box::new(move |sim| qp.nic_transmit(sim, wr)));
        }
        Ok(())
    }

    /// NIC-side: fetch payload and emit the packet for one WR.
    fn nic_transmit(&self, sim: &mut Simulator, wr: SendWr) {
        let model = self.device.model().clone();
        let pool = self.device.net().buffer_pool();
        let (remote, seq, packet) = {
            let mut inner = self.inner.borrow_mut();
            if inner.state == QpState::Error {
                // Queue pair failed between posting and fetch: flush.
                inner.outstanding_sends = inner.outstanding_sends.saturating_sub(1);
                let wc = Wc {
                    wr_id: wr.wr_id,
                    status: WcStatus::WorkRequestFlushed,
                    opcode: opcode_of(&wr.op),
                    byte_len: 0,
                    qp: inner.num,
                    imm: None,
                };
                inner.send_cq.push(wc);
                return;
            }
            let remote = inner.remote.expect("QP in RTS must have a remote endpoint");
            let seq = inner.next_seq;
            inner.next_seq += 1;

            let packet = match &wr.op {
                SendOp::Send { imm } => {
                    match wr.sge.mr.dma_read_pooled(wr.sge.offset, wr.sge.len, &pool) {
                        Ok(data) => RdmaPacket::Send {
                            src_qp: inner.num,
                            data,
                            imm: *imm,
                            seq,
                        },
                        Err(_) => {
                            let num = inner.num;
                            drop(inner);
                            self.complete_error(sim, wr.wr_id, opcode_of(&wr.op), num);
                            return;
                        }
                    }
                }
                SendOp::Write {
                    rkey,
                    remote_offset,
                    imm,
                } => match wr.sge.mr.dma_read_pooled(wr.sge.offset, wr.sge.len, &pool) {
                    Ok(data) => RdmaPacket::WriteReq {
                        src_qp: inner.num,
                        rkey: rkey.0,
                        offset: *remote_offset,
                        data,
                        imm: *imm,
                        seq,
                    },
                    Err(_) => {
                        let num = inner.num;
                        drop(inner);
                        self.complete_error(sim, wr.wr_id, opcode_of(&wr.op), num);
                        return;
                    }
                },
                SendOp::Read {
                    rkey,
                    remote_offset,
                } => RdmaPacket::ReadReq {
                    src_qp: inner.num,
                    rkey: rkey.0,
                    offset: *remote_offset,
                    len: wr.sge.len,
                    seq,
                },
            };
            inner.pending.insert(
                seq,
                PendingSend {
                    wr_id: wr.wr_id,
                    signaled: wr.signaled,
                    opcode: opcode_of(&wr.op),
                    byte_len: wr.sge.len,
                    read_sink: matches!(wr.op, SendOp::Read { .. }).then(|| wr.sge.clone()),
                    packet: packet.clone_with_pool(&pool),
                    retries_left: model.retry_cnt,
                    retry_timer: None,
                },
            );
            (remote, seq, packet)
        };
        let wire = packet.wire_bytes(model.ack_bytes);
        let local = self.local_addr();
        self.device
            .net()
            .send(sim, Frame::new(local, remote.0, wire, packet));
        self.arm_retry(sim, seq);
    }

    /// Arms (or re-arms) the ACK-timeout retransmission timer for `seq`.
    fn arm_retry(&self, sim: &mut Simulator, seq: u64) {
        let timeout = self.device.model().timeout;
        if timeout == Nanos::ZERO {
            return;
        }
        self.arm_retry_in(sim, seq, timeout);
    }

    /// Arms the retransmission timer for `seq` with an explicit delay.
    fn arm_retry_in(&self, sim: &mut Simulator, seq: u64, delay: Nanos) {
        let qp = self.clone();
        let id = sim.schedule_in(delay, Box::new(move |sim| qp.retry_fire(sim, seq)));
        if let Some(p) = self.inner.borrow_mut().pending.get_mut(&seq) {
            p.retry_timer = Some(id);
        }
    }

    /// ACK timeout expired for `seq`: retransmit the stored packet, or fail
    /// the operation with [`WcStatus::RetryExceeded`] once the transport
    /// retry budget is spent.
    fn retry_fire(&self, sim: &mut Simulator, seq: u64) {
        let model = self.device.model().clone();
        let rearm = {
            let inner = self.inner.borrow();
            if inner.state == QpState::Error || !inner.pending.contains_key(&seq) {
                return;
            }
            let oldest = inner.pending.keys().min().copied();
            if oldest != Some(seq) {
                // Go-back-N: only the oldest unacknowledged operation's
                // timer drives retransmission. Entries queued behind it
                // re-arm without consuming their retry budget — on a deep
                // send queue their ACKs are late because of queueing, not
                // loss.
                Some(model.timeout)
            } else {
                // Oldest entry, but the window advanced less than one
                // timeout ago: the link is live, so keep clocking silence
                // rather than age.
                let idle = sim.now() - inner.last_ack_progress;
                (inner.last_ack_progress > Nanos::ZERO && idle < model.timeout)
                    .then(|| Nanos::from_nanos(model.timeout.as_nanos() - idle.as_nanos()))
            }
        };
        if let Some(delay) = rearm {
            self.arm_retry_in(sim, seq, delay);
            return;
        }
        let resend = {
            let mut inner = self.inner.borrow_mut();
            let Some(p) = inner.pending.get_mut(&seq) else {
                // Completed while the timer event was already popped.
                return;
            };
            if p.retries_left == 0 {
                let p = inner.pending.remove(&seq).expect("checked present");
                inner.outstanding_sends = inner.outstanding_sends.saturating_sub(1);
                inner.bump("retry_exceeded", 1);
                inner.metrics.trace(
                    sim.now(),
                    "rdma",
                    format!("{}retry_exceeded seq={seq}", inner.metrics_prefix),
                );
                let wc = Wc {
                    wr_id: p.wr_id,
                    status: WcStatus::RetryExceeded,
                    opcode: p.opcode,
                    byte_len: 0,
                    qp: inner.num,
                    imm: None,
                };
                inner.send_cq.push(wc);
                None
            } else {
                p.retries_left -= 1;
                p.retry_timer = None;
                let pkt = p.packet.clone();
                inner.stats.retransmits += 1;
                inner.bump("retransmits", 1);
                Some((pkt, inner.local_addr, inner.remote))
            }
        };
        match resend {
            Some((pkt, local, Some((raddr, _)))) => {
                let wire = pkt.wire_bytes(model.ack_bytes);
                self.device
                    .net()
                    .send(sim, Frame::new(local, raddr, wire, pkt));
                self.arm_retry(sim, seq);
            }
            Some(_) => {}
            None => {
                // The peer is unreachable: fail the QP so the remaining
                // queue flushes, exactly as RC hardware reports
                // IBV_WC_RETRY_EXC_ERR and transitions to the error state.
                self.enter_error();
                self.fire_hook(sim);
            }
        }
    }

    /// Local-protection failure discovered at WQE fetch time.
    fn complete_error(&self, sim: &mut Simulator, wr_id: WrId, opcode: WcOpcode, num: QpNum) {
        {
            let inner = self.inner.borrow();
            inner.send_cq.push(Wc {
                wr_id,
                status: WcStatus::LocalProtectionError,
                opcode,
                byte_len: 0,
                qp: num,
                imm: None,
            });
        }
        self.enter_error();
        self.fire_hook(sim);
    }

    /// Delivers held inbound messages now that receive WRs are available.
    fn drain_held(&self, sim: &mut Simulator) {
        loop {
            let item = {
                let mut inner = self.inner.borrow_mut();
                if inner.held.is_empty() || inner.recv_queue.is_empty() {
                    break;
                }
                inner.held.pop_front().expect("checked non-empty")
            };
            // Held packets already passed the sequence gate on arrival;
            // deliver directly (redelivery) so they are neither mistaken
            // for duplicates nor blocked behind the remaining held tail.
            match item.packet {
                RdmaPacket::Send {
                    src_qp,
                    data,
                    imm,
                    seq,
                } => self.handle_inbound_send(sim, src_qp, data, imm, seq, true),
                other => self.dispatch(sim, other),
            }
        }
    }

    /// Entry point for inbound packets, called by the device dispatcher.
    ///
    /// Applies the receiver-side sequence gate before dispatching. RC
    /// responders process request packets strictly in sequence order
    /// (go-back-N), so:
    ///
    /// * `seq > rx_expected` — an earlier packet of the stream was lost in
    ///   flight; this one is dropped without an ACK and the sender's ACK
    ///   timeout retransmits the tail in order. Accepting it here would
    ///   reorder delivery, which layers above (replica request dedup, frame
    ///   reassembly) are entitled to assume cannot happen on RC.
    /// * `seq < rx_expected` — a retransmitted or fault-duplicated copy of
    ///   an already-accepted packet: suppressed, and re-ACKed when the
    ///   original ACK may have been the loss. A duplicate READ is instead
    ///   re-served, because the data response itself may have been lost and
    ///   re-execution is idempotent.
    /// * `seq == rx_expected` — accepted; the watermark advances at the
    ///   accept sites once the packet passes validation.
    pub(crate) fn handle_packet(&self, sim: &mut Simulator, pkt: RdmaPacket) {
        let gate = match &pkt {
            RdmaPacket::Send { seq, .. } | RdmaPacket::WriteReq { seq, .. } => Some((*seq, false)),
            RdmaPacket::ReadReq { seq, .. } => Some((*seq, true)),
            _ => None,
        };
        if let Some((seq, is_read)) = gate {
            enum Verdict {
                Accept,
                Drop,
                ReAck,
                Silent,
            }
            let verdict = {
                let mut inner = self.inner.borrow_mut();
                if seq > inner.rx_expected {
                    inner.stats.ooo_dropped += 1;
                    inner.bump("ooo_dropped", 1);
                    Verdict::Drop
                } else if seq == inner.rx_expected || is_read {
                    Verdict::Accept
                } else {
                    inner.stats.duplicates_suppressed += 1;
                    inner.bump("duplicates_suppressed", 1);
                    // If the first copy is still parked in the RNR hold
                    // queue, stay silent: acking now would confirm data
                    // that may yet be rejected. Otherwise re-ack, because
                    // a retransmission means our original ACK was lost.
                    if inner.held.iter().any(|h| h.seq == seq) {
                        Verdict::Silent
                    } else {
                        Verdict::ReAck
                    }
                }
            };
            match verdict {
                Verdict::Drop | Verdict::Silent => return,
                Verdict::ReAck => return self.send_ack(sim, seq),
                Verdict::Accept => {}
            }
        }
        self.dispatch(sim, pkt)
    }

    /// Dispatches a packet that passed (or is exempt from) duplicate
    /// suppression.
    fn dispatch(&self, sim: &mut Simulator, pkt: RdmaPacket) {
        match pkt {
            RdmaPacket::Send {
                src_qp,
                data,
                imm,
                seq,
            } => self.handle_inbound_send(sim, src_qp, data, imm, seq, false),
            RdmaPacket::WriteReq {
                src_qp,
                rkey,
                offset,
                data,
                imm,
                seq,
            } => self.handle_write(sim, src_qp, rkey, offset, data, imm, seq),
            RdmaPacket::ReadReq {
                src_qp: _,
                rkey,
                offset,
                len,
                seq,
            } => self.handle_read(sim, rkey, offset, len, seq),
            RdmaPacket::ReadResp { seq, data } => self.handle_read_resp(sim, seq, data),
            RdmaPacket::Ack { seq } => self.handle_ack(sim, seq),
            RdmaPacket::RnrNak { seq } => self.handle_nak(sim, seq, WcStatus::RnrRetryExceeded),
            RdmaPacket::Nak { seq, status } => self.handle_nak(sim, seq, status),
            RdmaPacket::Disconnect { .. } => {
                let num = self.num();
                self.enter_error();
                self.device
                    .push_cm_event(sim, crate::cm::CmEvent::Disconnected { qp: num });
                self.fire_hook(sim);
            }
            // CM packets are routed to listeners, not QPs.
            other => {
                debug_assert!(false, "unexpected CM packet at QP: {other:?}");
            }
        }
    }

    fn handle_inbound_send(
        &self,
        sim: &mut Simulator,
        src_qp: QpNum,
        data: Vec<u8>,
        imm: Option<u32>,
        seq: u64,
        redelivery: bool,
    ) {
        let model = self.device.model().clone();
        enum Action {
            Place(RecvWr),
            Hold,
            Drop,
            FailLength(RecvWr),
        }
        let action = {
            let mut inner = self.inner.borrow_mut();
            // FIFO: while earlier messages wait in the RNR hold queue, a
            // later arrival must queue behind them rather than grab a
            // fresh receive WR and overtake them.
            let wr = if redelivery || inner.held.is_empty() {
                inner.recv_queue.pop_front()
            } else {
                None
            };
            if !inner.state.can_receive() {
                inner.stats.dropped_packets += 1;
                if let Some(rwr) = wr {
                    inner.recv_queue.push_front(rwr);
                }
                Action::Drop
            } else if let Some(rwr) = wr {
                if rwr.sge.len >= data.len() && rwr.sge.mr.is_valid() {
                    inner.rx_mark_seen(seq);
                    Action::Place(rwr)
                } else {
                    Action::FailLength(rwr)
                }
            } else {
                if !redelivery {
                    inner.stats.rnr_stalls += 1;
                    inner.bump("rnr_retries", 1);
                    inner.metrics.trace(
                        sim.now(),
                        "rdma",
                        format!("{}rnr_hold seq={seq}", inner.metrics_prefix),
                    );
                }
                inner.rx_mark_seen(seq);
                Action::Hold
            }
        };
        match action {
            Action::Drop => {
                self.device.net().buffer_pool().put(data);
            }
            Action::Place(rwr) => {
                let dma = model.dma_cost(data.len());
                let cqe_at = sim.now() + dma + Nanos::from_nanos(model.cqe_ns);
                let qp = self.clone();
                let len = data.len();
                sim.schedule_at(
                    cqe_at,
                    Box::new(move |sim| {
                        let (num, remote, local) = {
                            let mut inner = qp.inner.borrow_mut();
                            let _ = rwr.sge.mr.dma_write(rwr.sge.offset, &data);
                            qp.device.net().buffer_pool().put(data);
                            inner.stats.bytes_received += len as u64;
                            inner.bump("recvs_completed", 1);
                            qp.device
                                .net()
                                .host(inner.local_addr.host)
                                .borrow()
                                .count_dma(len);
                            let wc = Wc {
                                wr_id: rwr.wr_id,
                                status: WcStatus::Success,
                                opcode: WcOpcode::Recv,
                                byte_len: len,
                                qp: inner.num,
                                imm,
                            };
                            inner.recv_cq.push(wc);
                            (inner.num, inner.remote, inner.local_addr)
                        };
                        let _ = num;
                        if let Some((raddr, _)) = remote {
                            let ack = RdmaPacket::Ack { seq };
                            let wire = ack.wire_bytes(model.ack_bytes);
                            qp.device
                                .net()
                                .send(sim, Frame::new(local, raddr, wire, ack));
                        }
                        qp.fire_hook(sim);
                    }),
                );
            }
            Action::FailLength(rwr) => {
                let (local, remote) = {
                    let inner = self.inner.borrow_mut();
                    let wc = Wc {
                        wr_id: rwr.wr_id,
                        status: WcStatus::LocalLengthError,
                        opcode: WcOpcode::Recv,
                        byte_len: data.len(),
                        qp: inner.num,
                        imm,
                    };
                    inner.recv_cq.push(wc);
                    (inner.local_addr, inner.remote)
                };
                self.device.net().buffer_pool().put(data);
                if let Some((raddr, _)) = remote {
                    let nak = RdmaPacket::Nak {
                        seq,
                        status: WcStatus::RemoteOperationError,
                    };
                    let wire = nak.wire_bytes(model.ack_bytes);
                    self.device
                        .net()
                        .send(sim, Frame::new(local, raddr, wire, nak));
                }
                self.enter_error();
                self.fire_hook(sim);
            }
            Action::Hold => {
                let deadline = sim.now()
                    + Nanos::from_nanos(model.rnr_timer.as_nanos() * (model.rnr_retry as u64 + 1));
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.held.push_back(HeldInbound {
                        seq,
                        packet: RdmaPacket::Send {
                            src_qp,
                            data,
                            imm,
                            seq,
                        },
                    });
                }
                let qp = self.clone();
                sim.schedule_at(deadline, Box::new(move |sim| qp.expire_held(sim, seq)));
            }
        }
    }

    /// RNR window expired for a held message: reject it.
    fn expire_held(&self, sim: &mut Simulator, seq: u64) {
        let model = self.device.model().clone();
        let (expired, local, remote) = {
            let mut inner = self.inner.borrow_mut();
            let before = inner.held.len();
            inner.held.retain(|h| h.seq != seq);
            (inner.held.len() != before, inner.local_addr, inner.remote)
        };
        if expired {
            if let Some((raddr, _)) = remote {
                let nak = RdmaPacket::RnrNak { seq };
                let wire = nak.wire_bytes(model.ack_bytes);
                self.device
                    .net()
                    .send(sim, Frame::new(local, raddr, wire, nak));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_write(
        &self,
        sim: &mut Simulator,
        src_qp: QpNum,
        rkey: u32,
        offset: usize,
        data: Vec<u8>,
        imm: Option<u32>,
        seq: u64,
    ) {
        let model = self.device.model().clone();
        {
            let inner = self.inner.borrow();
            if !inner.state.can_receive() {
                drop(inner);
                self.device.net().buffer_pool().put(data);
                return;
            }
        }
        let target = self.device.validate_remote(
            crate::types::RKey(rkey),
            offset,
            data.len(),
            Access::REMOTE_WRITE,
        );
        let target = match target {
            Ok(mr) => mr,
            Err(e) => {
                // A WRITE with a revoked (re-registered) rkey is the fast-path
                // permission fence firing: a deposed or equivocating leader's
                // in-flight proposal is denied in the RNIC, never in software.
                if matches!(e, VerbsError::Deregistered) {
                    self.inner.borrow().bump("stale_rkey_denied", 1);
                }
                self.inner.borrow().bump("fast_path_write_denied", 1);
                self.device.net().buffer_pool().put(data);
                self.send_nak(sim, seq, WcStatus::RemoteAccessError);
                return;
            }
        };
        if imm.is_some() {
            // WRITE_WITH_IMM consumes a receive WR; hold if none is posted.
            let has_recv = !self.inner.borrow().recv_queue.is_empty();
            if !has_recv {
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.stats.rnr_stalls += 1;
                    inner.bump("rnr_retries", 1);
                    inner.rx_mark_seen(seq);
                    inner.held.push_back(HeldInbound {
                        seq,
                        packet: RdmaPacket::WriteReq {
                            src_qp,
                            rkey,
                            offset,
                            data,
                            imm,
                            seq,
                        },
                    });
                }
                let deadline = sim.now()
                    + Nanos::from_nanos(model.rnr_timer.as_nanos() * (model.rnr_retry as u64 + 1));
                let qp = self.clone();
                sim.schedule_at(deadline, Box::new(move |sim| qp.expire_held(sim, seq)));
                return;
            }
        }
        self.inner.borrow_mut().rx_mark_seen(seq);
        let dma = model.dma_cost(data.len());
        let done_at = sim.now() + dma;
        let qp = self.clone();
        sim.schedule_at(
            done_at,
            Box::new(move |sim| {
                let len = data.len();
                let write_ok = target.dma_write(offset, &data).is_ok();
                qp.device.net().buffer_pool().put(data);
                if !write_ok {
                    qp.send_nak(sim, seq, WcStatus::RemoteAccessError);
                    return;
                }
                let (local, remote) = {
                    let mut inner = qp.inner.borrow_mut();
                    inner.stats.bytes_received += len as u64;
                    qp.device
                        .net()
                        .host(inner.local_addr.host)
                        .borrow()
                        .count_dma(len);
                    if let Some(iv) = imm {
                        if let Some(rwr) = inner.recv_queue.pop_front() {
                            inner.bump("recvs_completed", 1);
                            let wc = Wc {
                                wr_id: rwr.wr_id,
                                status: WcStatus::Success,
                                opcode: WcOpcode::RecvRdmaWithImm,
                                byte_len: len,
                                qp: inner.num,
                                imm: Some(iv),
                            };
                            inner.recv_cq.push(wc);
                        }
                    }
                    (inner.local_addr, inner.remote)
                };
                if let Some((raddr, _)) = remote {
                    let ack = RdmaPacket::Ack { seq };
                    let wire = ack.wire_bytes(model.ack_bytes);
                    qp.device
                        .net()
                        .send(sim, Frame::new(local, raddr, wire, ack));
                }
                qp.fire_hook(sim);
            }),
        );
    }

    fn handle_read(&self, sim: &mut Simulator, rkey: u32, offset: usize, len: usize, seq: u64) {
        let model = self.device.model().clone();
        {
            let inner = self.inner.borrow();
            if !inner.state.can_receive() {
                return;
            }
        }
        let target =
            self.device
                .validate_remote(crate::types::RKey(rkey), offset, len, Access::REMOTE_READ);
        let target = match target {
            Ok(mr) => mr,
            Err(e) => {
                // A revoked-but-known rkey is the proactive-recovery fence
                // firing: the region was invalidated on an epoch roll and
                // the requester is reading with a stale offer.
                if matches!(e, VerbsError::Deregistered) {
                    self.inner.borrow().bump("stale_rkey_denied", 1);
                }
                self.send_nak(sim, seq, WcStatus::RemoteAccessError);
                return;
            }
        };
        // READs share the request sequence space: advance the in-order
        // watermark so later SENDs/WRITEs are not gated behind this seq.
        self.inner.borrow_mut().rx_mark_seen(seq);
        let dma = model.dma_cost(len);
        let qp = self.clone();
        sim.schedule_at(
            sim.now() + dma,
            Box::new(move |sim| {
                let pool = qp.device.net().buffer_pool();
                let data = match target.dma_read_pooled(offset, len, &pool) {
                    Ok(d) => d,
                    Err(_) => {
                        qp.send_nak(sim, seq, WcStatus::RemoteAccessError);
                        return;
                    }
                };
                let (local, remote) = {
                    let inner = qp.inner.borrow();
                    (inner.local_addr, inner.remote)
                };
                if let Some((raddr, _)) = remote {
                    let resp = RdmaPacket::ReadResp { seq, data };
                    let wire = resp.wire_bytes(model.ack_bytes);
                    qp.device
                        .net()
                        .send(sim, Frame::new(local, raddr, wire, resp));
                }
            }),
        );
    }

    fn handle_read_resp(&self, sim: &mut Simulator, seq: u64, data: Vec<u8>) {
        let model = self.device.model().clone();
        let pending = {
            let mut inner = self.inner.borrow_mut();
            let p = inner.pending.remove(&seq);
            if p.is_some() {
                inner.outstanding_sends = inner.outstanding_sends.saturating_sub(1);
            }
            p
        };
        let Some(p) = pending else { return };
        if let Some(id) = p.retry_timer {
            sim.cancel(id);
        }
        let sink = p.read_sink.expect("READ pending entries carry a sink");
        let dma = model.dma_cost(data.len());
        let qp = self.clone();
        sim.schedule_at(
            sim.now() + dma + Nanos::from_nanos(model.cqe_ns),
            Box::new(move |sim| {
                let len = data.len();
                let ok = sink.mr.dma_write(sink.offset, &data).is_ok();
                qp.device.net().buffer_pool().put(data);
                {
                    let mut inner = qp.inner.borrow_mut();
                    inner.stats.bytes_sent += len as u64;
                    inner.bump("sends_completed", 1);
                    qp.device
                        .net()
                        .host(inner.local_addr.host)
                        .borrow()
                        .count_dma(len);
                    if p.signaled || !ok {
                        inner.bump("signaled_completions", 1);
                        let wc = Wc {
                            wr_id: p.wr_id,
                            status: if ok {
                                WcStatus::Success
                            } else {
                                WcStatus::LocalProtectionError
                            },
                            opcode: WcOpcode::RdmaRead,
                            byte_len: len,
                            qp: inner.num,
                            imm: None,
                        };
                        inner.send_cq.push(wc);
                    } else {
                        inner.stats.completions_suppressed += 1;
                        inner.bump("unsignaled_completions", 1);
                    }
                }
                qp.fire_hook(sim);
            }),
        );
    }

    fn handle_ack(&self, sim: &mut Simulator, seq: u64) {
        let timer = {
            let mut inner = self.inner.borrow_mut();
            if let Some(p) = inner.pending.remove(&seq) {
                inner.last_ack_progress = sim.now();
                inner.outstanding_sends = inner.outstanding_sends.saturating_sub(1);
                inner.stats.bytes_sent += p.byte_len as u64;
                inner.bump("sends_completed", 1);
                if p.signaled {
                    inner.bump("signaled_completions", 1);
                    let wc = Wc {
                        wr_id: p.wr_id,
                        status: WcStatus::Success,
                        opcode: p.opcode,
                        byte_len: p.byte_len,
                        qp: inner.num,
                        imm: None,
                    };
                    inner.send_cq.push(wc);
                } else {
                    inner.stats.completions_suppressed += 1;
                    inner.bump("unsignaled_completions", 1);
                }
                let timer = p.retry_timer;
                drop(inner);
                // Recycle the parked retransmission copy now that the
                // message is acknowledged.
                if let Some(buf) = p.packet.into_data() {
                    self.device.net().buffer_pool().put(buf);
                }
                timer
            } else {
                None
            }
        };
        if let Some(id) = timer {
            sim.cancel(id);
        }
        self.fire_hook(sim);
    }

    fn handle_nak(&self, sim: &mut Simulator, seq: u64, status: WcStatus) {
        let timer = {
            let mut inner = self.inner.borrow_mut();
            if let Some(p) = inner.pending.remove(&seq) {
                inner.outstanding_sends = inner.outstanding_sends.saturating_sub(1);
                let wc = Wc {
                    wr_id: p.wr_id,
                    status,
                    opcode: p.opcode,
                    byte_len: 0,
                    qp: inner.num,
                    imm: None,
                };
                inner.send_cq.push(wc);
                let timer = p.retry_timer;
                drop(inner);
                if let Some(buf) = p.packet.into_data() {
                    self.device.net().buffer_pool().put(buf);
                }
                timer
            } else {
                None
            }
        };
        if let Some(id) = timer {
            sim.cancel(id);
        }
        self.enter_error();
        self.fire_hook(sim);
    }

    /// Re-acknowledges an already-delivered sequence number (the original
    /// ACK was lost, so the sender retransmitted).
    fn send_ack(&self, sim: &mut Simulator, seq: u64) {
        let model = self.device.model().clone();
        let (local, remote) = {
            let inner = self.inner.borrow();
            (inner.local_addr, inner.remote)
        };
        if let Some((raddr, _)) = remote {
            let ack = RdmaPacket::Ack { seq };
            let wire = ack.wire_bytes(model.ack_bytes);
            self.device
                .net()
                .send(sim, Frame::new(local, raddr, wire, ack));
        }
    }

    fn send_nak(&self, sim: &mut Simulator, seq: u64, status: WcStatus) {
        let model = self.device.model().clone();
        let (local, remote) = {
            let inner = self.inner.borrow();
            (inner.local_addr, inner.remote)
        };
        if let Some((raddr, _)) = remote {
            let nak = RdmaPacket::Nak { seq, status };
            let wire = nak.wire_bytes(model.ack_bytes);
            self.device
                .net()
                .send(sim, Frame::new(local, raddr, wire, nak));
        }
    }

    /// Moves the QP to the error state and flushes all outstanding work.
    pub(crate) fn enter_error(&self) {
        let mut inner = self.inner.borrow_mut();
        if inner.state == QpState::Error {
            return;
        }
        inner.state = QpState::Error;
        let num = inner.num;
        inner.outstanding_sends = 0;
        let pending: Vec<PendingSend> = inner.pending.drain().map(|(_, p)| p).collect();
        for p in pending {
            inner.send_cq.push(Wc {
                wr_id: p.wr_id,
                status: WcStatus::WorkRequestFlushed,
                opcode: p.opcode,
                byte_len: 0,
                qp: num,
                imm: None,
            });
        }
        let recvs: Vec<RecvWr> = inner.recv_queue.drain(..).collect();
        for r in recvs {
            inner.recv_cq.push(Wc {
                wr_id: r.wr_id,
                status: WcStatus::WorkRequestFlushed,
                opcode: WcOpcode::Recv,
                byte_len: 0,
                qp: num,
                imm: None,
            });
        }
        inner.held.clear();
    }

    /// Sends a disconnect notification and enters the error state.
    pub fn disconnect(&self, sim: &mut Simulator) {
        let model = self.device.model().clone();
        let (local, remote, num) = {
            let inner = self.inner.borrow();
            (inner.local_addr, inner.remote, inner.num)
        };
        if let Some((raddr, _)) = remote {
            let pkt = RdmaPacket::Disconnect { src_qp: num };
            let wire = pkt.wire_bytes(model.ack_bytes);
            self.device
                .net()
                .send(sim, Frame::new(local, raddr, wire, pkt));
        }
        self.enter_error();
    }

    /// Unbinds the QP's network port. The QP is unusable afterwards.
    pub fn destroy(&self) {
        let addr = self.local_addr();
        self.device.net().unbind(addr);
        self.enter_error();
    }
}

fn opcode_of(op: &SendOp) -> WcOpcode {
    match op {
        SendOp::Send { .. } => WcOpcode::Send,
        SendOp::Write { .. } => WcOpcode::RdmaWrite,
        SendOp::Read { .. } => WcOpcode::RdmaRead,
    }
}

/// Manually wires two queue pairs into a connected RC pair (for tests and
/// micro-benchmarks that skip the connection manager).
///
/// # Errors
///
/// Propagates state-transition errors if either QP is not in `Reset`.
pub fn connect_pair(a: &QueuePair, b: &QueuePair) -> VerbsResult<()> {
    a.modify_to_init()?;
    b.modify_to_init()?;
    a.modify_to_rtr(b.local_addr(), b.num())?;
    b.modify_to_rtr(a.local_addr(), a.num())?;
    a.modify_to_rts()?;
    b.modify_to_rts()?;
    Ok(())
}
