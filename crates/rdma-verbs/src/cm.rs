//! Connection management (the `rdma_cm` analogue).
//!
//! Establishing an RC connection exchanges small CM packets: the active side
//! sends a `ConnReq` with optional private data, the passive side's listener
//! surfaces a [`CmEvent::ConnectRequest`], and the application accepts or
//! rejects it. Both sides end with fully connected [`QueuePair`]s.
//!
//! All CM events are delivered to the *device-wide* event queue
//! ([`RdmaDevice::poll_cm_event`]), mirroring `rdma_event_channel`; the
//! RUBIN selector drains this queue to implement `OP_CONNECT` / `OP_ACCEPT`
//! readiness.

use std::fmt;

use simnet::{Addr, Frame, Simulator};

use crate::device::{QpConfig, RdmaDevice};
use crate::error::{VerbsError, VerbsResult};
use crate::packet::RdmaPacket;
use crate::qp::QueuePair;
use crate::types::QpNum;

/// A connection-management event, polled from
/// [`RdmaDevice::poll_cm_event`].
#[derive(Debug)]
pub enum CmEvent {
    /// A remote peer wants to connect to one of this device's listeners.
    ConnectRequest(ConnRequest),
    /// An outgoing or accepted connection is fully established.
    Established {
        /// The now-connected local queue pair.
        qp: QueuePair,
        /// Private data supplied by the peer.
        private: Vec<u8>,
        /// Connection identifier (matches the `connect` call's QP).
        conn_id: u64,
    },
    /// An outgoing connection attempt failed.
    ConnectFailed {
        /// Connection identifier of the failed attempt.
        conn_id: u64,
        /// Human-readable reason from the peer.
        reason: String,
    },
    /// The peer disconnected; the local QP has entered the error state.
    Disconnected {
        /// The affected local queue pair number.
        qp: QpNum,
    },
}

/// An inbound connection request awaiting accept/reject.
pub struct ConnRequest {
    device: RdmaDevice,
    /// Port of the local listener that received the request.
    pub listen_port: u32,
    /// Private data carried in the request.
    pub private: Vec<u8>,
    peer_reply: Addr,
    peer_data_addr: Addr,
    peer_qp: QpNum,
    conn_id: u64,
}

impl fmt::Debug for ConnRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConnRequest")
            .field("listen_port", &self.listen_port)
            .field("peer", &self.peer_data_addr)
            .field("conn_id", &self.conn_id)
            .finish()
    }
}

impl ConnRequest {
    /// Accepts the connection: creates a local QP wired to the peer and
    /// notifies the peer. Returns the connected QP (already `ReadyToSend`).
    ///
    /// # Errors
    ///
    /// Propagates QP state errors (which cannot occur for a fresh QP).
    pub fn accept(
        self,
        sim: &mut Simulator,
        cfg: &QpConfig,
        private: Vec<u8>,
    ) -> VerbsResult<QueuePair> {
        let qp = self.device.create_qp(cfg);
        qp.modify_to_init()?;
        qp.modify_to_rtr(self.peer_data_addr, self.peer_qp)?;
        qp.modify_to_rts()?;
        let pkt = RdmaPacket::ConnAccept {
            conn_id: self.conn_id,
            src_data_addr: qp.local_addr(),
            src_qp: qp.num(),
            private,
        };
        let wire = pkt.wire_bytes(self.device.model().ack_bytes);
        self.device
            .net()
            .send(sim, Frame::new(qp.local_addr(), self.peer_reply, wire, pkt));
        Ok(qp)
    }

    /// Rejects the connection with a reason delivered to the peer.
    pub fn reject(self, sim: &mut Simulator, reason: impl Into<String>) {
        let reason = reason.into();
        let pkt = RdmaPacket::ConnReject {
            conn_id: self.conn_id,
            reason,
        };
        let wire = pkt.wire_bytes(self.device.model().ack_bytes);
        let from = Addr::new(self.device.host(), self.listen_port);
        self.device
            .net()
            .send(sim, Frame::new(from, self.peer_reply, wire, pkt));
    }
}

/// A listening endpoint. Dropping it does not unbind; call
/// [`CmListener::close`].
#[derive(Debug)]
pub struct CmListener {
    device: RdmaDevice,
    addr: Addr,
}

impl CmListener {
    /// The address the listener is bound to.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Stops listening and releases the port.
    pub fn close(self) {
        self.device.net().unbind(self.addr);
    }
}

pub(crate) fn listen(device: &RdmaDevice, port: u32) -> VerbsResult<CmListener> {
    let addr = Addr::new(device.host(), port);
    if device.net().is_bound(addr) {
        return Err(VerbsError::AddrInUse);
    }
    let dev = device.clone();
    device.net().bind(
        addr,
        Box::new(move |sim, frame| {
            let Ok(pkt) = frame.into_payload::<RdmaPacket>() else {
                return;
            };
            if let RdmaPacket::ConnReq {
                src_data_addr,
                reply_to,
                src_qp,
                private,
                conn_id,
            } = pkt
            {
                dev.push_cm_event(
                    sim,
                    CmEvent::ConnectRequest(ConnRequest {
                        device: dev.clone(),
                        listen_port: port,
                        private,
                        peer_reply: reply_to,
                        peer_data_addr: src_data_addr,
                        peer_qp: src_qp,
                        conn_id,
                    }),
                );
            }
        }),
    );
    Ok(CmListener {
        device: device.clone(),
        addr,
    })
}

pub(crate) fn connect(
    device: &RdmaDevice,
    sim: &mut Simulator,
    remote: Addr,
    cfg: &QpConfig,
    private: Vec<u8>,
) -> VerbsResult<(QueuePair, u64)> {
    let qp = device.create_qp(cfg);
    qp.modify_to_init()?;
    let conn_id = device.next_conn_id();
    let reply_addr = device.net().ephemeral_port(device.host());

    // Bind a one-shot reply port for the accept/reject.
    let dev = device.clone();
    let qp_for_reply = qp.clone();
    device.net().bind(
        reply_addr,
        Box::new(move |sim, frame| {
            let Ok(pkt) = frame.into_payload::<RdmaPacket>() else {
                return;
            };
            match pkt {
                RdmaPacket::ConnAccept {
                    conn_id,
                    src_data_addr,
                    src_qp,
                    private,
                } => {
                    let established = qp_for_reply
                        .modify_to_rtr(src_data_addr, src_qp)
                        .and_then(|()| qp_for_reply.modify_to_rts());
                    match established {
                        Ok(()) => dev.push_cm_event(
                            sim,
                            CmEvent::Established {
                                qp: qp_for_reply.clone(),
                                private,
                                conn_id,
                            },
                        ),
                        Err(e) => dev.push_cm_event(
                            sim,
                            CmEvent::ConnectFailed {
                                conn_id,
                                reason: e.to_string(),
                            },
                        ),
                    }
                    dev.net().unbind(reply_addr);
                }
                RdmaPacket::ConnReject { conn_id, reason } => {
                    qp_for_reply.enter_error();
                    dev.push_cm_event(sim, CmEvent::ConnectFailed { conn_id, reason });
                    dev.net().unbind(reply_addr);
                }
                _ => {}
            }
        }),
    );

    let pkt = RdmaPacket::ConnReq {
        src_data_addr: qp.local_addr(),
        reply_to: reply_addr,
        src_qp: qp.num(),
        private,
        conn_id,
    };
    let wire = pkt.wire_bytes(device.model().ack_bytes);
    device
        .net()
        .send(sim, Frame::new(reply_addr, remote, wire, pkt));
    Ok((qp, conn_id))
}
