//! Completion queues and completion event channels.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::types::{CqId, Wc};

/// A completion event channel, mirroring `ibv_comp_channel`.
///
/// Completion queues can be attached to a channel; when an *armed* CQ
/// receives a completion, the CQ's id is pushed onto the channel and the CQ
/// disarms (one-shot semantics, like `ibv_req_notify_cq`). RUBIN's selector
/// drains this channel instead of busy-polling every CQ.
#[derive(Clone, Default)]
pub struct CompChannel {
    events: Rc<RefCell<VecDeque<CqId>>>,
}

impl fmt::Debug for CompChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompChannel")
            .field("pending", &self.events.borrow().len())
            .finish()
    }
}

impl CompChannel {
    /// Creates an empty channel.
    pub fn new() -> CompChannel {
        CompChannel::default()
    }

    /// Removes and returns the next completion notification, if any.
    pub fn poll_event(&self) -> Option<CqId> {
        self.events.borrow_mut().pop_front()
    }

    /// Number of pending notifications.
    pub fn pending(&self) -> usize {
        self.events.borrow().len()
    }

    fn notify(&self, cq: CqId) {
        self.events.borrow_mut().push_back(cq);
    }
}

struct CqInner {
    id: CqId,
    entries: VecDeque<Wc>,
    capacity: usize,
    overflowed: bool,
    channel: Option<CompChannel>,
    armed: bool,
    total_completions: u64,
}

/// A completion queue, mirroring `ibv_cq`.
///
/// Work completions ([`Wc`]) are appended by the simulated NIC and drained
/// by the application with [`poll`](CompletionQueue::poll). Handles are
/// cheaply cloneable and shared between the NIC side and the application.
#[derive(Clone)]
pub struct CompletionQueue {
    inner: Rc<RefCell<CqInner>>,
}

impl fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("CompletionQueue")
            .field("id", &inner.id)
            .field("pending", &inner.entries.len())
            .field("capacity", &inner.capacity)
            .field("overflowed", &inner.overflowed)
            .finish()
    }
}

impl CompletionQueue {
    pub(crate) fn new(id: CqId, capacity: usize, channel: Option<CompChannel>) -> CompletionQueue {
        assert!(capacity > 0, "completion queue capacity must be positive");
        CompletionQueue {
            inner: Rc::new(RefCell::new(CqInner {
                id,
                entries: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
                overflowed: false,
                channel,
                armed: false,
                total_completions: 0,
            })),
        }
    }

    /// The queue's identifier.
    pub fn id(&self) -> CqId {
        self.inner.borrow().id
    }

    /// Appends a completion (NIC side). Sets the overflow flag and drops the
    /// entry if the queue is full — real CQ overflow is a fatal device error,
    /// and tests assert we never hit it in correct configurations.
    pub(crate) fn push(&self, wc: Wc) {
        let mut inner = self.inner.borrow_mut();
        if inner.entries.len() >= inner.capacity {
            inner.overflowed = true;
            return;
        }
        inner.entries.push_back(wc);
        inner.total_completions += 1;
        if inner.armed {
            if let Some(ch) = inner.channel.clone() {
                inner.armed = false;
                drop(inner);
                ch.notify(self.id());
            }
        }
    }

    /// Drains up to `max` completions.
    pub fn poll(&self, max: usize) -> Vec<Wc> {
        let mut inner = self.inner.borrow_mut();
        let n = max.min(inner.entries.len());
        inner.entries.drain(..n).collect()
    }

    /// Number of completions currently queued.
    pub fn pending(&self) -> usize {
        self.inner.borrow().entries.len()
    }

    /// Total completions ever enqueued (statistics).
    pub fn total_completions(&self) -> u64 {
        self.inner.borrow().total_completions
    }

    /// True if the queue ever overflowed.
    pub fn overflowed(&self) -> bool {
        self.inner.borrow().overflowed
    }

    /// Requests a one-shot notification on the attached channel for the next
    /// completion (mirrors `ibv_req_notify_cq`). No-op without a channel.
    pub fn req_notify(&self) {
        self.inner.borrow_mut().armed = true;
    }

    /// True if a completion channel is attached.
    pub fn has_channel(&self) -> bool {
        self.inner.borrow().channel.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{QpNum, WcOpcode, WcStatus, WrId};

    fn wc(id: u64) -> Wc {
        Wc {
            wr_id: WrId(id),
            status: WcStatus::Success,
            opcode: WcOpcode::Send,
            byte_len: 0,
            qp: QpNum(0),
            imm: None,
        }
    }

    #[test]
    fn poll_drains_fifo() {
        let cq = CompletionQueue::new(CqId(0), 8, None);
        cq.push(wc(1));
        cq.push(wc(2));
        cq.push(wc(3));
        let got = cq.poll(2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].wr_id, WrId(1));
        assert_eq!(got[1].wr_id, WrId(2));
        assert_eq!(cq.pending(), 1);
        assert_eq!(cq.total_completions(), 3);
    }

    #[test]
    fn overflow_sets_flag_and_drops() {
        let cq = CompletionQueue::new(CqId(0), 2, None);
        cq.push(wc(1));
        cq.push(wc(2));
        cq.push(wc(3));
        assert!(cq.overflowed());
        assert_eq!(cq.pending(), 2);
    }

    #[test]
    fn notification_is_one_shot_until_rearmed() {
        let ch = CompChannel::new();
        let cq = CompletionQueue::new(CqId(7), 8, Some(ch.clone()));
        // Not armed: no notification.
        cq.push(wc(1));
        assert_eq!(ch.pending(), 0);
        // Armed: exactly one notification even for several completions.
        cq.req_notify();
        cq.push(wc(2));
        cq.push(wc(3));
        assert_eq!(ch.pending(), 1);
        assert_eq!(ch.poll_event(), Some(CqId(7)));
        assert_eq!(ch.poll_event(), None);
        // Re-arm produces the next notification.
        cq.req_notify();
        cq.push(wc(4));
        assert_eq!(ch.poll_event(), Some(CqId(7)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = CompletionQueue::new(CqId(0), 0, None);
    }
}
