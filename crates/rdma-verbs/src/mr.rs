//! Protection domains and registered memory regions.
//!
//! RDMA requires applications to register memory with the NIC before any
//! network operation (paper §II-A). Registration produces a local key
//! ([`LKey`]) proving local ownership and a remote key ([`RKey`], the iWARP
//! *Steering Tag*) that — combined with [`Access`] flags — governs what
//! remote peers may do to the region. The paper's security analysis (§III-C)
//! hinges on these checks, so this module enforces them strictly.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::error::{VerbsError, VerbsResult};
use crate::types::{Access, LKey, PdId, RKey};

/// A protection domain: memory regions and queue pairs can only be used
/// together when they belong to the same domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectionDomain {
    id: PdId,
}

impl ProtectionDomain {
    pub(crate) fn new(id: PdId) -> ProtectionDomain {
        ProtectionDomain { id }
    }

    /// The domain's identifier.
    pub fn id(&self) -> PdId {
        self.id
    }
}

struct MrInner {
    buf: RefCell<Vec<u8>>,
    lkey: LKey,
    rkey: RKey,
    access: Access,
    pd: PdId,
    valid: Cell<bool>,
}

/// A registered memory region: a byte buffer the simulated NIC can DMA
/// into and out of.
///
/// Handles are cheaply cloneable and share the underlying buffer.
/// Deregistration ([`MemoryRegion::invalidate`]) makes every handle invalid;
/// subsequent NIC access fails with a protection error, as real hardware
/// would.
#[derive(Clone)]
pub struct MemoryRegion {
    inner: Rc<MrInner>,
}

impl fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryRegion")
            .field("len", &self.len())
            .field("lkey", &self.inner.lkey)
            .field("rkey", &self.inner.rkey)
            .field("access", &self.inner.access)
            .field("pd", &self.inner.pd)
            .field("valid", &self.inner.valid.get())
            .finish()
    }
}

impl MemoryRegion {
    pub(crate) fn new(
        pd: PdId,
        len: usize,
        access: Access,
        lkey: LKey,
        rkey: RKey,
    ) -> MemoryRegion {
        MemoryRegion {
            inner: Rc::new(MrInner {
                buf: RefCell::new(vec![0; len]),
                lkey,
                rkey,
                access,
                pd,
                valid: Cell::new(true),
            }),
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.inner.buf.borrow().len()
    }

    /// True if the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The local key.
    pub fn lkey(&self) -> LKey {
        self.inner.lkey
    }

    /// The remote key (Steering Tag).
    pub fn rkey(&self) -> RKey {
        self.inner.rkey
    }

    /// Granted access flags.
    pub fn access(&self) -> Access {
        self.inner.access
    }

    /// Owning protection domain.
    pub fn pd(&self) -> PdId {
        self.inner.pd
    }

    /// True until the region is deregistered.
    pub fn is_valid(&self) -> bool {
        self.inner.valid.get()
    }

    /// Deregisters the region. All clones become invalid; in-flight NIC
    /// operations targeting it will complete with protection errors.
    pub fn invalidate(&self) {
        self.inner.valid.set(false);
    }

    /// Validates that `[offset, offset+len)` lies within the region and the
    /// region is still registered.
    ///
    /// # Errors
    ///
    /// [`VerbsError::InvalidRange`] on out-of-bounds, or
    /// [`VerbsError::Deregistered`] if invalidated.
    pub fn check_range(&self, offset: usize, len: usize) -> VerbsResult<()> {
        if !self.is_valid() {
            return Err(VerbsError::Deregistered);
        }
        let end = offset.checked_add(len).ok_or(VerbsError::InvalidRange {
            offset,
            len,
            capacity: self.len(),
        })?;
        if end > self.len() {
            return Err(VerbsError::InvalidRange {
                offset,
                len,
                capacity: self.len(),
            });
        }
        Ok(())
    }

    /// Copies `data` into the region at `offset` (application-side access,
    /// not charged to the NIC).
    ///
    /// # Errors
    ///
    /// Fails like [`MemoryRegion::check_range`].
    pub fn write(&self, offset: usize, data: &[u8]) -> VerbsResult<()> {
        self.check_range(offset, data.len())?;
        self.inner.buf.borrow_mut()[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Copies `len` bytes out of the region starting at `offset`.
    ///
    /// # Errors
    ///
    /// Fails like [`MemoryRegion::check_range`].
    pub fn read(&self, offset: usize, len: usize) -> VerbsResult<Vec<u8>> {
        self.check_range(offset, len)?;
        Ok(self.inner.buf.borrow()[offset..offset + len].to_vec())
    }

    /// Runs `f` over an immutable view of the whole buffer.
    pub fn with_slice<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.inner.buf.borrow())
    }

    /// Runs `f` over a mutable view of the whole buffer.
    pub fn with_slice_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.inner.buf.borrow_mut())
    }

    /// NIC-side write used by packet processing (DMA placement). Validates
    /// registration and bounds but *not* access flags — callers check those
    /// against the operation type first.
    pub(crate) fn dma_write(&self, offset: usize, data: &[u8]) -> VerbsResult<()> {
        self.write(offset, data)
    }

    /// DMA fetch into a buffer recycled from `pool`, so the steady-state
    /// send path allocates nothing per message.
    pub(crate) fn dma_read_pooled(
        &self,
        offset: usize,
        len: usize,
        pool: &simnet::BytePool,
    ) -> VerbsResult<Vec<u8>> {
        self.check_range(offset, len)?;
        let mut out = pool.take(len);
        out.extend_from_slice(&self.inner.buf.borrow()[offset..offset + len]);
        Ok(out)
    }
}

/// Device-wide table of remotely accessible regions, consulted by the
/// simulated NIC when a one-sided operation arrives.
#[derive(Debug, Default)]
pub(crate) struct MrTable {
    by_rkey: std::collections::HashMap<u32, MemoryRegion>,
}

impl MrTable {
    pub fn insert(&mut self, mr: &MemoryRegion) {
        self.by_rkey.insert(mr.rkey().0, mr.clone());
    }

    /// Looks up a region by rkey and validates access + bounds, exactly the
    /// checks a real RNIC performs before honouring a one-sided request.
    pub fn validate(
        &self,
        rkey: RKey,
        offset: usize,
        len: usize,
        required: Access,
    ) -> VerbsResult<MemoryRegion> {
        let mr = self.by_rkey.get(&rkey.0).ok_or(VerbsError::BadRKey(rkey))?;
        if !mr.is_valid() {
            return Err(VerbsError::Deregistered);
        }
        if !mr.access().allows(required) {
            return Err(VerbsError::AccessDenied {
                rkey,
                granted: mr.access(),
                required,
            });
        }
        mr.check_range(offset, len)?;
        Ok(mr.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(len: usize, access: Access) -> MemoryRegion {
        MemoryRegion::new(PdId(0), len, access, LKey(1), RKey(100))
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mr = region(16, Access::LOCAL_WRITE);
        mr.write(4, b"abcd").unwrap();
        assert_eq!(mr.read(4, 4).unwrap(), b"abcd");
        assert_eq!(mr.read(0, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mr = region(8, Access::NONE);
        assert!(matches!(
            mr.write(6, b"abcd"),
            Err(VerbsError::InvalidRange { .. })
        ));
        assert!(matches!(
            mr.read(0, 9),
            Err(VerbsError::InvalidRange { .. })
        ));
        // Offset overflow must not panic.
        assert!(mr.check_range(usize::MAX, 2).is_err());
    }

    #[test]
    fn invalidation_poisons_all_handles() {
        let mr = region(8, Access::NONE);
        let clone = mr.clone();
        mr.invalidate();
        assert!(!clone.is_valid());
        assert!(matches!(clone.read(0, 1), Err(VerbsError::Deregistered)));
    }

    #[test]
    fn mr_table_validates_rkey_access_and_bounds() {
        let mut table = MrTable::default();
        let mr = region(16, Access::REMOTE_READ);
        table.insert(&mr);

        assert!(table
            .validate(RKey(100), 0, 16, Access::REMOTE_READ)
            .is_ok());
        assert!(matches!(
            table.validate(RKey(999), 0, 1, Access::REMOTE_READ),
            Err(VerbsError::BadRKey(_))
        ));
        assert!(matches!(
            table.validate(RKey(100), 0, 1, Access::REMOTE_WRITE),
            Err(VerbsError::AccessDenied { .. })
        ));
        assert!(matches!(
            table.validate(RKey(100), 8, 9, Access::REMOTE_READ),
            Err(VerbsError::InvalidRange { .. })
        ));
        mr.invalidate();
        assert!(matches!(
            table.validate(RKey(100), 0, 1, Access::REMOTE_READ),
            Err(VerbsError::Deregistered)
        ));
    }

    #[test]
    fn with_slice_views() {
        let mr = region(4, Access::NONE);
        mr.with_slice_mut(|s| s.copy_from_slice(b"wxyz"));
        let sum: u32 = mr.with_slice(|s| s.iter().map(|&b| b as u32).sum());
        assert_eq!(sum, b"wxyz".iter().map(|&b| b as u32).sum::<u32>());
    }
}
