//! # rdma-verbs — a simulated RDMA Verbs stack
//!
//! A faithful, simulation-backed reproduction of the OFED Verbs programming
//! model the paper builds RUBIN on (§II-A): protection domains, registered
//! memory regions with local/remote keys, reliable-connection queue pairs,
//! work requests, completion queues with completion channels, and an
//! `rdma_cm`-style connection manager.
//!
//! Both RDMA modes the paper compares are implemented:
//!
//! * **Two-sided SEND/RECV** — each send consumes a receive work request on
//!   the remote QP; data lands in the receiver-chosen buffer (the mode RUBIN
//!   adopts for its security properties, §III-A/C).
//! * **One-sided READ/WRITE** — direct remote-memory access validated by
//!   rkey (Steering Tag), access flags and bounds, with **no remote CPU
//!   involvement**, which is why it shows the lowest latency in Figure 3.
//!
//! The §IV optimizations are first-class: inline sends (no DMA fetch below
//! the inline limit), selective signaling (unsignaled WRs produce no
//! completion), and batched posting (one doorbell for many WRs).
//!
//! Timing comes from the [`RnicModel`]; data movement is real (bytes travel
//! end-to-end through the simulated fabric), so integrity and protection
//! checks are genuine.
//!
//! # Example: connected echo over SEND/RECV
//!
//! ```
//! use rdma_verbs::{Access, QpConfig, RdmaDevice, RecvWr, RnicModel, SendWr, Sge, WrId};
//! use simnet::{CoreId, TestBed};
//!
//! let mut tb = TestBed::paper_testbed(1);
//! let dev_a = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
//! let dev_b = RdmaDevice::open(&tb.net, tb.b, RnicModel::mt27520());
//!
//! let (pd_a, pd_b) = (dev_a.alloc_pd(), dev_b.alloc_pd());
//! let cq_a = dev_a.create_cq(64, None);
//! let cq_b = dev_b.create_cq(64, None);
//! let qp_a = dev_a.create_qp(&QpConfig { pd: pd_a, send_cq: cq_a.clone(), recv_cq: cq_a.clone(), core: CoreId(0) });
//! let qp_b = dev_b.create_qp(&QpConfig { pd: pd_b, send_cq: cq_b.clone(), recv_cq: cq_b.clone(), core: CoreId(0) });
//! rdma_verbs::connect_pair(&qp_a, &qp_b)?;
//!
//! // B posts a receive buffer; A sends 1 KiB.
//! let rbuf = dev_b.reg_mr(&pd_b, 4096, Access::LOCAL_WRITE);
//! qp_b.post_recv(&mut tb.sim, RecvWr::new(WrId(1), Sge::whole(rbuf.clone())))?;
//! let sbuf = dev_a.reg_mr(&pd_a, 1024, Access::NONE);
//! sbuf.write(0, &[7u8; 1024])?;
//! qp_a.post_send(&mut tb.sim, SendWr::send(WrId(2), Sge::whole(sbuf)).signaled())?;
//!
//! tb.sim.run_until_idle();
//! let rx = cq_b.poll(16);
//! assert_eq!(rx.len(), 1);
//! assert_eq!(rx[0].byte_len, 1024);
//! assert_eq!(rbuf.read(0, 1024)?, vec![7u8; 1024]);
//! assert_eq!(cq_a.poll(16).len(), 1); // signaled send completed
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod cm;
mod config;
mod cq;
mod device;
mod error;
mod mr;
mod packet;
mod qp;
mod types;
mod wr;

pub use cm::{CmEvent, CmListener, ConnRequest};
pub use config::RnicModel;
pub use cq::{CompChannel, CompletionQueue};
pub use device::{EventHook, QpConfig, RdmaDevice};
pub use error::{VerbsError, VerbsResult};
pub use mr::{MemoryRegion, ProtectionDomain};
pub use qp::{connect_pair, QpStats, QueuePair};
pub use types::{Access, CqId, LKey, PdId, QpNum, QpState, RKey, Wc, WcOpcode, WcStatus, WrId};
pub use wr::{RecvWr, SendOp, SendWr, Sge};

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{CoreId, Nanos, TestBed};

    #[allow(dead_code)]
    struct Pair {
        tb: TestBed,
        dev_a: RdmaDevice,
        dev_b: RdmaDevice,
        pd_a: ProtectionDomain,
        pd_b: ProtectionDomain,
        scq_a: CompletionQueue,
        rcq_a: CompletionQueue,
        scq_b: CompletionQueue,
        rcq_b: CompletionQueue,
        qp_a: QueuePair,
        qp_b: QueuePair,
    }

    fn connected_pair() -> Pair {
        connected_pair_with(RnicModel::mt27520())
    }

    fn connected_pair_with(model: RnicModel) -> Pair {
        let tb = TestBed::paper_testbed(3);
        let dev_a = RdmaDevice::open(&tb.net, tb.a, model.clone());
        let dev_b = RdmaDevice::open(&tb.net, tb.b, model);
        let pd_a = dev_a.alloc_pd();
        let pd_b = dev_b.alloc_pd();
        let scq_a = dev_a.create_cq(256, None);
        let rcq_a = dev_a.create_cq(256, None);
        let scq_b = dev_b.create_cq(256, None);
        let rcq_b = dev_b.create_cq(256, None);
        let qp_a = dev_a.create_qp(&QpConfig {
            pd: pd_a,
            send_cq: scq_a.clone(),
            recv_cq: rcq_a.clone(),
            core: CoreId(0),
        });
        let qp_b = dev_b.create_qp(&QpConfig {
            pd: pd_b,
            send_cq: scq_b.clone(),
            recv_cq: rcq_b.clone(),
            core: CoreId(0),
        });
        connect_pair(&qp_a, &qp_b).unwrap();
        Pair {
            tb,
            dev_a,
            dev_b,
            pd_a,
            pd_b,
            scq_a,
            rcq_a,
            scq_b,
            rcq_b,
            qp_a,
            qp_b,
        }
    }

    fn send_bytes(p: &mut Pair, data: &[u8], signaled: bool) {
        let sbuf = p.dev_a.reg_mr(&p.pd_a, data.len(), Access::NONE);
        sbuf.write(0, data).unwrap();
        let mut wr = SendWr::send(WrId(42), Sge::whole(sbuf));
        if signaled {
            wr = wr.signaled();
        }
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
    }

    #[test]
    fn send_recv_transfers_data() {
        let mut p = connected_pair();
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 8192, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(
                &mut p.tb.sim,
                RecvWr::new(WrId(1), Sge::whole(rbuf.clone())),
            )
            .unwrap();
        let payload: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        send_bytes(&mut p, &payload, true);
        p.tb.sim.run_until_idle();
        let rx = p.rcq_b.poll(8);
        assert_eq!(rx.len(), 1);
        assert!(rx[0].is_ok());
        assert_eq!(rx[0].opcode, WcOpcode::Recv);
        assert_eq!(rx[0].byte_len, 2048);
        assert_eq!(rbuf.read(0, 2048).unwrap(), payload);
        let tx = p.scq_a.poll(8);
        assert_eq!(tx.len(), 1);
        assert!(tx[0].is_ok());
        assert_eq!(tx[0].opcode, WcOpcode::Send);
    }

    #[test]
    fn unsignaled_send_suppresses_completion() {
        let mut p = connected_pair();
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 4096, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(&mut p.tb.sim, RecvWr::new(WrId(1), Sge::whole(rbuf)))
            .unwrap();
        send_bytes(&mut p, &[1u8; 100], false);
        p.tb.sim.run_until_idle();
        assert_eq!(p.scq_a.poll(8).len(), 0);
        assert_eq!(p.qp_a.stats().completions_suppressed, 1);
        // Data still arrived.
        assert_eq!(p.rcq_b.poll(8).len(), 1);
    }

    #[test]
    fn send_without_recv_is_held_then_delivered() {
        let mut p = connected_pair();
        send_bytes(&mut p, &[9u8; 64], true);
        // Let the message arrive and stall.
        p.tb.sim.run_for(Nanos::from_micros(50));
        assert_eq!(p.qp_b.stats().rnr_stalls, 1);
        // Now post the receive; message must be delivered.
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 4096, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(
                &mut p.tb.sim,
                RecvWr::new(WrId(1), Sge::whole(rbuf.clone())),
            )
            .unwrap();
        p.tb.sim.run_until_idle();
        assert_eq!(p.rcq_b.poll(8).len(), 1);
        assert_eq!(rbuf.read(0, 64).unwrap(), vec![9u8; 64]);
        assert_eq!(p.scq_a.poll(8).len(), 1);
    }

    #[test]
    fn rnr_window_expiry_fails_sender() {
        let mut p = connected_pair();
        send_bytes(&mut p, &[9u8; 64], true);
        // Never post a receive: the hold window expires.
        p.tb.sim.run_until_idle();
        let tx = p.scq_a.poll(8);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].status, WcStatus::RnrRetryExceeded);
        assert_eq!(p.qp_a.state(), QpState::Error);
    }

    #[test]
    fn rdma_write_places_data_without_remote_cqe() {
        let mut p = connected_pair();
        let target = p
            .dev_b
            .reg_mr(&p.pd_b, 4096, Access::LOCAL_WRITE | Access::REMOTE_WRITE);
        let src = p.dev_a.reg_mr(&p.pd_a, 1024, Access::NONE);
        src.write(0, &[0xAB; 1024]).unwrap();
        let wr = SendWr::write(WrId(5), Sge::whole(src), target.rkey(), 512).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_until_idle();
        // Requester completion, no responder completion.
        let tx = p.scq_a.poll(8);
        assert_eq!(tx.len(), 1);
        assert!(tx[0].is_ok());
        assert_eq!(tx[0].opcode, WcOpcode::RdmaWrite);
        assert_eq!(p.rcq_b.poll(8).len(), 0);
        assert_eq!(target.read(512, 1024).unwrap(), vec![0xAB; 1024]);
    }

    #[test]
    fn rdma_write_with_imm_consumes_recv_and_notifies() {
        let mut p = connected_pair();
        let target = p
            .dev_b
            .reg_mr(&p.pd_b, 4096, Access::LOCAL_WRITE | Access::REMOTE_WRITE);
        let notify_buf = p.dev_b.reg_mr(&p.pd_b, 16, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(&mut p.tb.sim, RecvWr::new(WrId(1), Sge::whole(notify_buf)))
            .unwrap();
        let src = p.dev_a.reg_mr(&p.pd_a, 256, Access::NONE);
        let wr =
            SendWr::write_with_imm(WrId(5), Sge::whole(src), target.rkey(), 0, 0xFEED).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_until_idle();
        let rx = p.rcq_b.poll(8);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].opcode, WcOpcode::RecvRdmaWithImm);
        assert_eq!(rx[0].imm, Some(0xFEED));
    }

    #[test]
    fn rdma_read_fetches_remote_data() {
        let mut p = connected_pair();
        let remote = p
            .dev_b
            .reg_mr(&p.pd_b, 4096, Access::LOCAL_WRITE | Access::REMOTE_READ);
        remote.write(100, b"remote-secret").unwrap();
        let local = p.dev_a.reg_mr(&p.pd_a, 13, Access::LOCAL_WRITE);
        let wr = SendWr::read(WrId(6), Sge::whole(local.clone()), remote.rkey(), 100).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_until_idle();
        let tx = p.scq_a.poll(8);
        assert_eq!(tx.len(), 1);
        assert!(tx[0].is_ok());
        assert_eq!(tx[0].opcode, WcOpcode::RdmaRead);
        assert_eq!(local.read(0, 13).unwrap(), b"remote-secret");
    }

    #[test]
    fn bad_rkey_yields_remote_access_error() {
        let mut p = connected_pair();
        let src = p.dev_a.reg_mr(&p.pd_a, 64, Access::NONE);
        let wr = SendWr::write(WrId(7), Sge::whole(src), RKey(0xDEAD), 0).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_until_idle();
        let tx = p.scq_a.poll(8);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].status, WcStatus::RemoteAccessError);
        assert_eq!(p.qp_a.state(), QpState::Error);
    }

    #[test]
    fn write_to_read_only_region_denied() {
        let mut p = connected_pair();
        // Region grants REMOTE_READ only: a WRITE must be refused (the
        // paper's §III-C Steering-Tag permission scenario).
        let target = p
            .dev_b
            .reg_mr(&p.pd_b, 4096, Access::LOCAL_WRITE | Access::REMOTE_READ);
        let before = target.read(0, 16).unwrap();
        let src = p.dev_a.reg_mr(&p.pd_a, 16, Access::NONE);
        src.write(0, &[0xFF; 16]).unwrap();
        let wr = SendWr::write(WrId(8), Sge::whole(src), target.rkey(), 0).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_until_idle();
        assert_eq!(p.scq_a.poll(8)[0].status, WcStatus::RemoteAccessError);
        assert_eq!(
            target.read(0, 16).unwrap(),
            before,
            "data must be untouched"
        );
    }

    #[test]
    fn out_of_bounds_write_denied() {
        let mut p = connected_pair();
        let target = p
            .dev_b
            .reg_mr(&p.pd_b, 128, Access::LOCAL_WRITE | Access::REMOTE_WRITE);
        let src = p.dev_a.reg_mr(&p.pd_a, 64, Access::NONE);
        let wr = SendWr::write(WrId(9), Sge::whole(src), target.rkey(), 100).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_until_idle();
        assert_eq!(p.scq_a.poll(8)[0].status, WcStatus::RemoteAccessError);
    }

    #[test]
    fn read_from_writeonly_region_denied() {
        let mut p = connected_pair();
        let remote = p
            .dev_b
            .reg_mr(&p.pd_b, 128, Access::LOCAL_WRITE | Access::REMOTE_WRITE);
        let local = p.dev_a.reg_mr(&p.pd_a, 64, Access::LOCAL_WRITE);
        let wr = SendWr::read(WrId(10), Sge::whole(local), remote.rkey(), 0).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_until_idle();
        assert_eq!(p.scq_a.poll(8)[0].status, WcStatus::RemoteAccessError);
    }

    #[test]
    fn invalidated_stag_denies_access() {
        let mut p = connected_pair();
        let target = p.dev_b.reg_mr(
            &p.pd_b,
            128,
            Access::LOCAL_WRITE | Access::REMOTE_WRITE | Access::REMOTE_READ,
        );
        target.invalidate();
        let src = p.dev_a.reg_mr(&p.pd_a, 16, Access::NONE);
        let wr = SendWr::write(WrId(11), Sge::whole(src), target.rkey(), 0).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_until_idle();
        assert_eq!(p.scq_a.poll(8)[0].status, WcStatus::RemoteAccessError);
        // The revoked-but-known rkey is the proactive-recovery fence: it is
        // counted separately from a never-registered rkey.
        let metrics = p.tb.net.metrics();
        assert_eq!(metrics.total("stale_rkey_denied"), 1);

        // A one-sided READ with the same stale rkey is fenced identically
        // (the state-transfer fast path after an epoch roll). The QP went
        // into error on the failed WRITE, so use a fresh pair.
        let mut p = connected_pair();
        let remote = p.dev_b.reg_mr(&p.pd_b, 128, Access::REMOTE_READ);
        remote.invalidate();
        let local = p.dev_a.reg_mr(&p.pd_a, 64, Access::LOCAL_WRITE);
        let wr = SendWr::read(WrId(12), Sge::whole(local), remote.rkey(), 0).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_until_idle();
        assert_eq!(p.scq_a.poll(8)[0].status, WcStatus::RemoteAccessError);
        assert_eq!(p.tb.net.metrics().total("stale_rkey_denied"), 1);
    }

    /// An in-flight one-sided READ racing the MR invalidation: the rkey is
    /// valid when the requester posts the READ, and the region is revoked
    /// while the request packet is still on the wire. The responder-side
    /// permission check must fence it (deny + count) — permission is
    /// checked at access time, not at post time.
    #[test]
    fn in_flight_read_racing_invalidation_is_fenced() {
        let mut p = connected_pair();
        let remote = p
            .dev_b
            .reg_mr(&p.pd_b, 256, Access::LOCAL_WRITE | Access::REMOTE_READ);
        remote.write(0, &[0x5A; 256]).unwrap();
        let local = p.dev_a.reg_mr(&p.pd_a, 256, Access::LOCAL_WRITE);
        let wr = SendWr::read(WrId(13), Sge::whole(local.clone()), remote.rkey(), 0).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        // Revoke shortly after posting — long before the ~µs propagation
        // delay delivers the request to the responder RNIC.
        let mr = remote.clone();
        p.tb.sim
            .schedule_in(Nanos::from_nanos(10), Box::new(move |_| mr.invalidate()));
        p.tb.sim.run_until_idle();
        let tx = p.scq_a.poll(8);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].status, WcStatus::RemoteAccessError);
        assert_eq!(p.tb.net.metrics().total("stale_rkey_denied"), 1);
        assert_eq!(
            local.read(0, 256).unwrap(),
            vec![0u8; 256],
            "no bytes may land from a fenced READ"
        );
    }

    #[test]
    fn recv_buffer_too_small_is_length_error() {
        let mut p = connected_pair();
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 16, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(&mut p.tb.sim, RecvWr::new(WrId(1), Sge::whole(rbuf)))
            .unwrap();
        send_bytes(&mut p, &[5u8; 64], true);
        p.tb.sim.run_until_idle();
        let rx = p.rcq_b.poll(8);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].status, WcStatus::LocalLengthError);
        let tx = p.scq_a.poll(8);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].status, WcStatus::RemoteOperationError);
    }

    #[test]
    fn inline_send_respects_limit() {
        let mut p = connected_pair();
        let sbuf = p.dev_a.reg_mr(&p.pd_a, 1024, Access::NONE);
        let wr = SendWr::send(WrId(1), Sge::whole(sbuf.clone())).with_inline();
        let err = p.qp_a.post_send(&mut p.tb.sim, wr).unwrap_err();
        assert!(matches!(err, VerbsError::InlineTooLarge { .. }));
        // Within the limit it is accepted and faster (no DMA fetch).
        let small = p.dev_a.reg_mr(&p.pd_a, 128, Access::NONE);
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 4096, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(&mut p.tb.sim, RecvWr::new(WrId(1), Sge::whole(rbuf)))
            .unwrap();
        p.qp_a
            .post_send(
                &mut p.tb.sim,
                SendWr::send(WrId(2), Sge::whole(small))
                    .with_inline()
                    .signaled(),
            )
            .unwrap();
        p.tb.sim.run_until_idle();
        assert!(p.scq_a.poll(8)[0].is_ok());
    }

    #[test]
    fn inline_is_faster_than_dma_for_small_messages() {
        // Measure completion times for inline vs non-inline 200-byte sends.
        let t_inline = small_send_latency(true);
        let t_dma = small_send_latency(false);
        assert!(t_inline < t_dma, "inline {t_inline} !< dma {t_dma}");
    }

    fn small_send_latency(inline: bool) -> Nanos {
        let mut p = connected_pair();
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 4096, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(&mut p.tb.sim, RecvWr::new(WrId(1), Sge::whole(rbuf)))
            .unwrap();
        let sbuf = p.dev_a.reg_mr(&p.pd_a, 200, Access::NONE);
        let mut wr = SendWr::send(WrId(2), Sge::whole(sbuf)).signaled();
        if inline {
            wr = wr.with_inline();
        }
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_until_idle();
        assert_eq!(p.rcq_b.poll(8).len(), 1);
        p.tb.sim.now()
    }

    #[test]
    fn pd_mismatch_rejected() {
        let mut p = connected_pair();
        let other_pd = p.dev_a.alloc_pd();
        let sbuf = p.dev_a.reg_mr(&other_pd, 64, Access::NONE);
        let err = p
            .qp_a
            .post_send(&mut p.tb.sim, SendWr::send(WrId(1), Sge::whole(sbuf)))
            .unwrap_err();
        assert_eq!(err, VerbsError::PdMismatch);
    }

    #[test]
    fn posting_limits_enforced() {
        let mut p = connected_pair();
        let model = RnicModel::mt27520();
        let sbuf = p.dev_a.reg_mr(&p.pd_a, 64, Access::NONE);
        // Batch too large.
        let wrs: Vec<SendWr> = (0..model.max_post_batch + 1)
            .map(|i| SendWr::send(WrId(i as u64), Sge::whole(sbuf.clone())))
            .collect();
        assert!(matches!(
            p.qp_a.post_send_batch(&mut p.tb.sim, wrs).unwrap_err(),
            VerbsError::BatchTooLarge { .. }
        ));
        // Send queue capacity.
        for i in 0..model.max_send_wr {
            p.qp_a
                .post_send(
                    &mut p.tb.sim,
                    SendWr::send(WrId(i as u64), Sge::whole(sbuf.clone())),
                )
                .unwrap();
        }
        assert!(matches!(
            p.qp_a
                .post_send(&mut p.tb.sim, SendWr::send(WrId(999), Sge::whole(sbuf)))
                .unwrap_err(),
            VerbsError::QueueFull { .. }
        ));
    }

    #[test]
    fn post_send_requires_rts() {
        let tb = TestBed::paper_testbed(0);
        let mut sim = tb.sim;
        let dev = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
        let pd = dev.alloc_pd();
        let cq = dev.create_cq(8, None);
        let qp = dev.create_qp(&QpConfig {
            pd,
            send_cq: cq.clone(),
            recv_cq: cq,
            core: CoreId(0),
        });
        let buf = dev.reg_mr(&pd, 16, Access::LOCAL_WRITE);
        assert!(matches!(
            qp.post_send(&mut sim, SendWr::send(WrId(1), Sge::whole(buf.clone())))
                .unwrap_err(),
            VerbsError::InvalidQpState { .. }
        ));
        // Receives can be posted from Init onwards.
        assert!(matches!(
            qp.post_recv(&mut sim, RecvWr::new(WrId(1), Sge::whole(buf.clone())))
                .unwrap_err(),
            VerbsError::InvalidQpState { .. }
        ));
        qp.modify_to_init().unwrap();
        qp.post_recv(&mut sim, RecvWr::new(WrId(1), Sge::whole(buf)))
            .unwrap();
    }

    #[test]
    fn recv_buffer_requires_local_write() {
        let mut p = connected_pair();
        let buf = p.dev_b.reg_mr(&p.pd_b, 64, Access::NONE);
        assert_eq!(
            p.qp_b
                .post_recv(&mut p.tb.sim, RecvWr::new(WrId(1), Sge::whole(buf)))
                .unwrap_err(),
            VerbsError::LocalAccess
        );
    }

    #[test]
    fn one_sided_write_uses_no_responder_cpu() {
        let mut p = connected_pair();
        let target = p
            .dev_b
            .reg_mr(&p.pd_b, 65536, Access::LOCAL_WRITE | Access::REMOTE_WRITE);
        let src = p.dev_a.reg_mr(&p.pd_a, 65536, Access::NONE);
        let busy_before = p.tb.net.host(p.tb.b).borrow().total_busy_time();
        let wr = SendWr::write(WrId(1), Sge::whole(src), target.rkey(), 0).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_until_idle();
        let busy_after = p.tb.net.host(p.tb.b).borrow().total_busy_time();
        assert_eq!(busy_before, busy_after, "responder CPU must stay idle");
        assert!(p.scq_a.poll(8)[0].is_ok());
    }

    #[test]
    fn cm_connect_accept_flow() {
        let mut tb = TestBed::paper_testbed(5);
        let dev_a = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
        let dev_b = RdmaDevice::open(&tb.net, tb.b, RnicModel::mt27520());
        let pd_b = dev_b.alloc_pd();
        let cq_b = dev_b.create_cq(16, None);
        let _listener = dev_b.listen(500).unwrap();
        assert!(matches!(
            dev_b.listen(500).unwrap_err(),
            VerbsError::AddrInUse
        ));

        let pd_a = dev_a.alloc_pd();
        let cq_a = dev_a.create_cq(16, None);
        let (qp_a, _conn) = dev_a
            .connect(
                &mut tb.sim,
                simnet::Addr::new(tb.b, 500),
                &QpConfig {
                    pd: pd_a,
                    send_cq: cq_a.clone(),
                    recv_cq: cq_a.clone(),
                    core: CoreId(0),
                },
                b"hello-from-a".to_vec(),
            )
            .unwrap();
        tb.sim.run_until_idle();

        // Server sees the request with private data.
        let ev = dev_b.poll_cm_event().expect("connect request pending");
        let CmEvent::ConnectRequest(req) = ev else {
            panic!("expected ConnectRequest, got {ev:?}");
        };
        assert_eq!(req.private, b"hello-from-a");
        assert_eq!(req.listen_port, 500);
        let qp_b = req
            .accept(
                &mut tb.sim,
                &QpConfig {
                    pd: pd_b,
                    send_cq: cq_b.clone(),
                    recv_cq: cq_b.clone(),
                    core: CoreId(0),
                },
                b"welcome".to_vec(),
            )
            .unwrap();
        tb.sim.run_until_idle();

        // Client sees Established with the server's private data.
        let ev = dev_a.poll_cm_event().expect("established pending");
        let CmEvent::Established { qp, private, .. } = ev else {
            panic!("expected Established, got {ev:?}");
        };
        assert_eq!(private, b"welcome");
        assert_eq!(qp.state(), QpState::ReadyToSend);
        assert_eq!(qp_a.state(), QpState::ReadyToSend);
        assert_eq!(qp_b.state(), QpState::ReadyToSend);

        // And the pair can actually move data.
        let rbuf = dev_b.reg_mr(&pd_b, 256, Access::LOCAL_WRITE);
        qp_b.post_recv(&mut tb.sim, RecvWr::new(WrId(1), Sge::whole(rbuf.clone())))
            .unwrap();
        let sbuf = dev_a.reg_mr(&pd_a, 5, Access::NONE);
        sbuf.write(0, b"ping!").unwrap();
        qp_a.post_send(
            &mut tb.sim,
            SendWr::send(WrId(2), Sge::whole(sbuf)).signaled(),
        )
        .unwrap();
        tb.sim.run_until_idle();
        assert_eq!(rbuf.read(0, 5).unwrap(), b"ping!");
    }

    #[test]
    fn cm_reject_flow() {
        let mut tb = TestBed::paper_testbed(5);
        let dev_a = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
        let dev_b = RdmaDevice::open(&tb.net, tb.b, RnicModel::mt27520());
        let _listener = dev_b.listen(600).unwrap();
        let pd_a = dev_a.alloc_pd();
        let cq_a = dev_a.create_cq(16, None);
        let (qp_a, _conn) = dev_a
            .connect(
                &mut tb.sim,
                simnet::Addr::new(tb.b, 600),
                &QpConfig {
                    pd: pd_a,
                    send_cq: cq_a.clone(),
                    recv_cq: cq_a,
                    core: CoreId(0),
                },
                vec![],
            )
            .unwrap();
        tb.sim.run_until_idle();
        let CmEvent::ConnectRequest(req) = dev_b.poll_cm_event().unwrap() else {
            panic!("expected request");
        };
        req.reject(&mut tb.sim, "not today");
        tb.sim.run_until_idle();
        let CmEvent::ConnectFailed { reason, .. } = dev_a.poll_cm_event().unwrap() else {
            panic!("expected failure");
        };
        assert_eq!(reason, "not today");
        assert_eq!(qp_a.state(), QpState::Error);
    }

    #[test]
    fn disconnect_raises_event_and_flushes() {
        let mut p = connected_pair();
        // B has a receive posted that must be flushed.
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 64, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(&mut p.tb.sim, RecvWr::new(WrId(77), Sge::whole(rbuf)))
            .unwrap();
        p.qp_a.disconnect(&mut p.tb.sim);
        p.tb.sim.run_until_idle();
        assert_eq!(p.qp_a.state(), QpState::Error);
        assert_eq!(p.qp_b.state(), QpState::Error);
        let flushed = p.rcq_b.poll(8);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].status, WcStatus::WorkRequestFlushed);
        assert!(matches!(
            p.dev_b.poll_cm_event(),
            Some(CmEvent::Disconnected { .. })
        ));
    }

    #[test]
    fn completion_channel_notifies_selector_style() {
        let mut p = connected_pair();
        let ch = CompChannel::new();
        let rcq = p.dev_b.create_cq(32, Some(&ch));
        // New QP on B using the channel-attached CQ.
        let qp_b2 = p.dev_b.create_qp(&QpConfig {
            pd: p.pd_b,
            send_cq: rcq.clone(),
            recv_cq: rcq.clone(),
            core: CoreId(0),
        });
        let cq_a2 = p.dev_a.create_cq(32, None);
        let qp_a2 = p.dev_a.create_qp(&QpConfig {
            pd: p.pd_a,
            send_cq: cq_a2.clone(),
            recv_cq: cq_a2,
            core: CoreId(0),
        });
        connect_pair(&qp_a2, &qp_b2).unwrap();
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 256, Access::LOCAL_WRITE);
        qp_b2
            .post_recv(&mut p.tb.sim, RecvWr::new(WrId(1), Sge::whole(rbuf)))
            .unwrap();
        rcq.req_notify();
        let sbuf = p.dev_a.reg_mr(&p.pd_a, 32, Access::NONE);
        qp_a2
            .post_send(&mut p.tb.sim, SendWr::send(WrId(2), Sge::whole(sbuf)))
            .unwrap();
        p.tb.sim.run_until_idle();
        assert_eq!(ch.poll_event(), Some(rcq.id()));
        assert_eq!(rcq.poll(8).len(), 1);
    }

    #[test]
    fn many_messages_arrive_in_order() {
        let mut p = connected_pair();
        let n = 50usize;
        let rbufs: Vec<MemoryRegion> = (0..n)
            .map(|_| p.dev_b.reg_mr(&p.pd_b, 64, Access::LOCAL_WRITE))
            .collect();
        let recvs: Vec<RecvWr> = rbufs
            .iter()
            .enumerate()
            .map(|(i, mr)| RecvWr::new(WrId(i as u64), Sge::whole(mr.clone())))
            .collect();
        for chunk in recvs.chunks(16) {
            p.qp_b
                .post_recv_batch(&mut p.tb.sim, chunk.to_vec())
                .unwrap();
        }
        for i in 0..n {
            let sbuf = p.dev_a.reg_mr(&p.pd_a, 8, Access::NONE);
            sbuf.write(0, &(i as u64).to_le_bytes()).unwrap();
            p.qp_a
                .post_send(
                    &mut p.tb.sim,
                    SendWr::send(WrId(i as u64), Sge::whole(sbuf)),
                )
                .unwrap();
        }
        p.tb.sim.run_until_idle();
        let wcs = p.rcq_b.poll(n);
        assert_eq!(wcs.len(), n);
        for (i, wc) in wcs.iter().enumerate() {
            assert_eq!(wc.wr_id, WrId(i as u64), "order preserved");
            let got = rbufs[i].read(0, 8).unwrap();
            assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), i as u64);
        }
    }

    #[test]
    fn cq_overflow_sets_flag_instead_of_panicking() {
        // A 2-entry CQ with many signaled sends overflows; the device
        // reports it via the flag (fatal on real hardware, observable in
        // tests here).
        let tb = TestBed::paper_testbed(9);
        let mut sim = tb.sim;
        let dev_a = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
        let dev_b = RdmaDevice::open(&tb.net, tb.b, RnicModel::mt27520());
        let pd_a = dev_a.alloc_pd();
        let pd_b = dev_b.alloc_pd();
        let tiny_scq = dev_a.create_cq(2, None);
        let rcq_a = dev_a.create_cq(64, None);
        let cq_b = dev_b.create_cq(64, None);
        let qp_a = dev_a.create_qp(&QpConfig {
            pd: pd_a,
            send_cq: tiny_scq.clone(),
            recv_cq: rcq_a,
            core: CoreId(0),
        });
        let qp_b = dev_b.create_qp(&QpConfig {
            pd: pd_b,
            send_cq: cq_b.clone(),
            recv_cq: cq_b.clone(),
            core: CoreId(0),
        });
        connect_pair(&qp_a, &qp_b).unwrap();
        for i in 0..6u64 {
            let rbuf = dev_b.reg_mr(&pd_b, 64, Access::LOCAL_WRITE);
            qp_b.post_recv(&mut sim, RecvWr::new(WrId(i), Sge::whole(rbuf)))
                .unwrap();
            let sbuf = dev_a.reg_mr(&pd_a, 16, Access::NONE);
            qp_a.post_send(&mut sim, SendWr::send(WrId(i), Sge::whole(sbuf)).signaled())
                .unwrap();
        }
        sim.run_until_idle();
        assert!(tiny_scq.overflowed(), "overflow must be flagged");
        assert_eq!(tiny_scq.pending(), 2, "only capacity entries retained");
    }

    #[test]
    fn destroyed_qp_stops_receiving() {
        let mut p = connected_pair();
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 64, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(&mut p.tb.sim, RecvWr::new(WrId(1), Sge::whole(rbuf)))
            .unwrap();
        // Flushed receive from the destroy.
        p.qp_b.destroy();
        assert_eq!(p.qp_b.state(), QpState::Error);
        let flushed = p.rcq_b.poll(8);
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].status, WcStatus::WorkRequestFlushed);
        // A send towards the destroyed QP goes nowhere (unroutable frame);
        // the sender retransmits until the retry budget is spent, then the
        // operation fails with RetryExceeded and the QP enters error state.
        let unroutable_before = p.tb.net.stats().unroutable;
        send_bytes(&mut p, &[1u8; 16], true);
        p.tb.sim.run_until_idle();
        assert!(p.tb.net.stats().unroutable > unroutable_before);
        let model = RnicModel::mt27520();
        assert_eq!(p.qp_a.stats().retransmits, model.retry_cnt as u64);
        let wcs = p.scq_a.poll(8);
        assert_eq!(wcs.len(), 1);
        assert_eq!(wcs[0].status, WcStatus::RetryExceeded);
        assert_eq!(p.qp_a.state(), QpState::Error);
    }

    #[test]
    fn deep_send_queue_on_healthy_link_never_retransmits() {
        // 30 × 100 KB takes far longer to drain (≈3 MB at 10 Gbps ≈ 2.4 ms)
        // than one ACK `timeout` (1 ms). The timeout must clock ACK
        // *silence*, not per-packet age — otherwise a deep send queue on a
        // lossless link spuriously exhausts `retry_cnt` and breaks the QP
        // (the regression behind the fig4 100 KB stall).
        let mut p = connected_pair();
        const N: usize = 30;
        const LEN: usize = 100 * 1024;
        for i in 0..N {
            let rbuf = p.dev_b.reg_mr(&p.pd_b, LEN, Access::LOCAL_WRITE);
            p.qp_b
                .post_recv(&mut p.tb.sim, RecvWr::new(WrId(i as u64), Sge::whole(rbuf)))
                .unwrap();
        }
        let payload = vec![7u8; LEN];
        for _ in 0..N {
            send_bytes(&mut p, &payload, true);
        }
        p.tb.sim.run_until_idle();
        assert_eq!(p.rcq_b.poll(64).len(), N, "all messages delivered");
        let tx = p.scq_a.poll(64);
        assert_eq!(tx.len(), N);
        assert!(tx.iter().all(|wc| wc.is_ok()));
        assert_eq!(
            p.qp_a.stats().retransmits,
            0,
            "a healthy link must never retransmit, however deep the queue"
        );
        assert_ne!(p.qp_a.state(), QpState::Error);
    }

    #[test]
    fn recv_posted_accounting_tracks_queue() {
        let mut p = connected_pair();
        assert_eq!(p.qp_b.recv_posted(), 0);
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 4096, Access::LOCAL_WRITE);
        for i in 0..5 {
            p.qp_b
                .post_recv(
                    &mut p.tb.sim,
                    RecvWr::new(WrId(i), Sge::whole(rbuf.clone())),
                )
                .unwrap();
        }
        assert_eq!(p.qp_b.recv_posted(), 5);
        send_bytes(&mut p, &[1u8; 32], false);
        p.tb.sim.run_until_idle();
        assert_eq!(p.qp_b.recv_posted(), 4, "one receive consumed");
        assert_eq!(p.qp_b.stats().recvs_posted, 5);
        assert_eq!(p.qp_b.stats().bytes_received, 32);
    }

    #[test]
    fn write_with_imm_waits_for_recv_like_send() {
        let mut p = connected_pair();
        let target = p
            .dev_b
            .reg_mr(&p.pd_b, 1024, Access::LOCAL_WRITE | Access::REMOTE_WRITE);
        let src = p.dev_a.reg_mr(&p.pd_a, 64, Access::NONE);
        // No receive posted: WRITE_WITH_IMM is held in the RNR window.
        let wr = SendWr::write_with_imm(WrId(1), Sge::whole(src), target.rkey(), 0, 7).signaled();
        p.qp_a.post_send(&mut p.tb.sim, wr).unwrap();
        p.tb.sim.run_for(Nanos::from_micros(50));
        assert_eq!(p.rcq_b.poll(8).len(), 0, "held, not delivered");
        // Posting the receive releases it.
        let notify = p.dev_b.reg_mr(&p.pd_b, 4, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(&mut p.tb.sim, RecvWr::new(WrId(9), Sge::whole(notify)))
            .unwrap();
        p.tb.sim.run_until_idle();
        let rx = p.rcq_b.poll(8);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].imm, Some(7));
        assert!(p.scq_a.poll(8)[0].is_ok());
    }

    #[test]
    fn reg_mr_cost_is_exposed_for_critical_path_decisions() {
        // RUBIN's pool pre-registers at setup because registration is
        // expensive; the cost model makes that trade-off measurable.
        let model = RnicModel::mt27520();
        let small = model.reg_mr_cost(256);
        let big = model.reg_mr_cost(128 * 1024);
        assert!(big > small);
        // Registering dwarfs a copy of the same small payload.
        let copy = simnet::CpuModel::xeon_v2().copy_cost(256);
        assert!(small > copy * 10);
    }

    #[test]
    fn larger_payloads_take_longer() {
        let lat = |size: usize| -> Nanos {
            let mut p = connected_pair();
            let rbuf = p.dev_b.reg_mr(&p.pd_b, size, Access::LOCAL_WRITE);
            p.qp_b
                .post_recv(&mut p.tb.sim, RecvWr::new(WrId(1), Sge::whole(rbuf)))
                .unwrap();
            let sbuf = p.dev_a.reg_mr(&p.pd_a, size, Access::NONE);
            p.qp_a
                .post_send(
                    &mut p.tb.sim,
                    SendWr::send(WrId(2), Sge::whole(sbuf)).signaled(),
                )
                .unwrap();
            let mut done = Nanos::ZERO;
            while p.tb.sim.step() {
                if p.rcq_b.pending() > 0 && done == Nanos::ZERO {
                    done = p.tb.sim.now();
                }
            }
            assert!(done > Nanos::ZERO);
            done
        };
        let small = lat(1024);
        let big = lat(102_400);
        assert!(big > small * 10, "100KB ({big}) should dwarf 1KB ({small})");
    }

    #[test]
    fn lost_send_is_retransmitted_and_delivered_once() {
        let mut p = connected_pair();
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 64, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(
                &mut p.tb.sim,
                RecvWr::new(WrId(1), Sge::whole(rbuf.clone())),
            )
            .unwrap();
        // Blackhole the data direction: the first transmission (and early
        // retransmissions) are lost. Heal mid-run so a later retry lands.
        let (a, b) = (p.tb.a, p.tb.b);
        p.tb.net.with_faults(|f| f.set_loss(a, b, 1.0));
        let net = p.tb.net.clone();
        p.tb.sim.schedule_at(
            Nanos::from_micros(2_500),
            Box::new(move |_| net.with_faults(|f| f.set_loss(a, b, 0.0))),
        );
        send_bytes(&mut p, &[9u8; 32], true);
        p.tb.sim.run_until_idle();
        assert!(p.qp_a.stats().retransmits >= 2, "early copies were lost");
        let tx = p.scq_a.poll(8);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].status, WcStatus::Success);
        let rx = p.rcq_b.poll(8);
        assert_eq!(rx.len(), 1, "delivered exactly once");
        assert_eq!(rbuf.read(0, 32).unwrap(), vec![9u8; 32]);
        assert_eq!(p.qp_b.stats().duplicates_suppressed, 0);
    }

    #[test]
    fn lost_ack_is_recovered_by_reack_without_redelivery() {
        let mut p = connected_pair();
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 64, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(&mut p.tb.sim, RecvWr::new(WrId(1), Sge::whole(rbuf)))
            .unwrap();
        // Blackhole only the ACK direction: data arrives, every ACK (and
        // re-ACK) is lost until the link heals, forcing the sender to
        // retransmit a message the receiver already executed.
        let (a, b) = (p.tb.a, p.tb.b);
        p.tb.net.with_faults(|f| f.set_loss(b, a, 1.0));
        let net = p.tb.net.clone();
        p.tb.sim.schedule_at(
            Nanos::from_micros(2_500),
            Box::new(move |_| net.with_faults(|f| f.set_loss(b, a, 0.0))),
        );
        send_bytes(&mut p, &[5u8; 32], true);
        p.tb.sim.run_until_idle();
        assert!(p.qp_b.stats().duplicates_suppressed >= 1);
        assert_eq!(p.rcq_b.poll(8).len(), 1, "executed exactly once");
        let tx = p.scq_a.poll(8);
        assert_eq!(tx.len(), 1, "sender completes once, via the re-ACK");
        assert_eq!(tx[0].status, WcStatus::Success);
        assert_eq!(p.qp_a.state(), QpState::ReadyToSend, "no spurious error");
    }

    #[test]
    fn fault_duplicated_frames_deliver_exactly_once() {
        let mut p = connected_pair();
        let rbuf = p.dev_b.reg_mr(&p.pd_b, 64, Access::LOCAL_WRITE);
        p.qp_b
            .post_recv(&mut p.tb.sim, RecvWr::new(WrId(1), Sge::whole(rbuf)))
            .unwrap();
        let (a, b) = (p.tb.a, p.tb.b);
        p.tb.net.with_faults(|f| f.set_duplication(a, b, 1.0));
        send_bytes(&mut p, &[3u8; 32], true);
        p.tb.sim.run_until_idle();
        assert_eq!(p.rcq_b.poll(8).len(), 1, "dup copy must not redeliver");
        assert!(p.qp_b.stats().duplicates_suppressed >= 1);
        assert_eq!(p.scq_a.poll(8).len(), 1);
    }

    /// An RNR hold and the ACK-timeout retransmission path must not double
    /// up: with a timeout *shorter* than the RNR window, the sender
    /// retransmits a message the receiver is holding, and the receiver must
    /// suppress those copies silently (no re-ACK, no second hold). When the
    /// window expires, exactly one RNR NAK fails the send — not a second
    /// RetryExceeded completion on top.
    #[test]
    fn rnr_hold_is_not_also_retransmitted() {
        let mut model = RnicModel::mt27520();
        model.timeout = Nanos::from_micros(100); // < 80 µs × 7 = 560 µs window
        let mut p = connected_pair_with(model);
        // No receive posted: the send is held at the receiver.
        send_bytes(&mut p, &[1u8; 16], true);
        p.tb.sim.run_until_idle();
        assert_eq!(p.qp_b.stats().rnr_stalls, 1, "held once, not per copy");
        assert!(
            p.qp_b.stats().duplicates_suppressed >= 1,
            "retransmitted copies of the held seq are suppressed"
        );
        let tx = p.scq_a.poll(8);
        assert_eq!(tx.len(), 1, "exactly one failure completion");
        assert_eq!(tx[0].status, WcStatus::RnrRetryExceeded);
        assert_eq!(p.qp_a.state(), QpState::Error);
    }
}
