//! Wire packets exchanged between simulated RNICs.
//!
//! These are internal to the crate: applications never see packets, only
//! work completions and CM events, exactly as with real verbs.

use simnet::{Addr, BytePool};

use crate::types::{QpNum, WcStatus};

/// Header bytes charged for a RoCE data packet (Ethernet + IP + UDP + BTH
/// are modelled by the link's per-segment overhead; this is the transport
/// extension overhead per message).
pub(crate) const ROCE_MSG_OVERHEAD: usize = 14;

/// RDMA transport packets (RC service).
///
/// `Clone` serves two masters: the sender keeps a copy of every
/// unacknowledged data packet for retransmission, and the simulated network
/// needs cloneable payloads to model fault-injected duplication.
#[derive(Debug, Clone)]
pub(crate) enum RdmaPacket {
    /// Two-sided SEND payload.
    Send {
        /// Sender's QP number (for completion bookkeeping on acks).
        src_qp: QpNum,
        /// Message payload (the DMA'd bytes).
        data: Vec<u8>,
        /// Optional immediate data.
        imm: Option<u32>,
        /// Sender-side sequence number for ack matching.
        seq: u64,
    },
    /// One-sided RDMA WRITE request.
    WriteReq {
        src_qp: QpNum,
        /// Remote key presented for validation.
        rkey: u32,
        /// Destination offset within the remote region.
        offset: usize,
        data: Vec<u8>,
        /// Present for WRITE_WITH_IMM: consumes a remote receive WR.
        imm: Option<u32>,
        seq: u64,
    },
    /// One-sided RDMA READ request.
    ReadReq {
        #[allow(dead_code)]
        src_qp: QpNum,
        rkey: u32,
        offset: usize,
        len: usize,
        seq: u64,
    },
    /// Response to a READ request carrying the remote data.
    ReadResp { seq: u64, data: Vec<u8> },
    /// Positive acknowledgement completing a SEND or WRITE at the requester.
    Ack { seq: u64 },
    /// Receiver-not-ready: no receive WR was posted within the RNR window.
    RnrNak { seq: u64 },
    /// Negative acknowledgement (access violation, responder error, …).
    Nak { seq: u64, status: WcStatus },
    /// Connection management: request to establish an RC connection.
    ConnReq {
        /// Address (QP port) the active side receives data on.
        src_data_addr: Addr,
        /// Address the active side receives CM replies on.
        reply_to: Addr,
        src_qp: QpNum,
        /// Application-provided private data (rdma_cm style).
        private: Vec<u8>,
        conn_id: u64,
    },
    /// Connection management: accept, carrying the passive side's QP info.
    ConnAccept {
        conn_id: u64,
        src_data_addr: Addr,
        src_qp: QpNum,
        private: Vec<u8>,
    },
    /// Connection management: rejection.
    ConnReject { conn_id: u64, reason: String },
    /// Orderly teardown notification.
    Disconnect {
        #[allow(dead_code)]
        src_qp: QpNum,
    },
}

impl RdmaPacket {
    /// Bytes this packet occupies on the wire (before per-segment framing).
    pub(crate) fn wire_bytes(&self, ack_bytes: usize) -> usize {
        match self {
            RdmaPacket::Send { data, .. } => data.len() + ROCE_MSG_OVERHEAD,
            RdmaPacket::WriteReq { data, .. } => data.len() + ROCE_MSG_OVERHEAD + 16,
            RdmaPacket::ReadReq { .. } => ROCE_MSG_OVERHEAD + 16,
            RdmaPacket::ReadResp { data, .. } => data.len() + ROCE_MSG_OVERHEAD,
            RdmaPacket::Ack { .. } | RdmaPacket::RnrNak { .. } | RdmaPacket::Nak { .. } => {
                ack_bytes
            }
            RdmaPacket::ConnReq { private, .. } => 64 + private.len(),
            RdmaPacket::ConnAccept { private, .. } => 64 + private.len(),
            RdmaPacket::ConnReject { reason, .. } => 64 + reason.len(),
            RdmaPacket::Disconnect { .. } => 32,
        }
    }

    /// Clones the packet with its payload buffer drawn from `pool` — the
    /// retransmission copy the sender parks per unacked data packet.
    pub(crate) fn clone_with_pool(&self, pool: &BytePool) -> RdmaPacket {
        let pooled = |data: &[u8]| {
            let mut c = pool.take(data.len());
            c.extend_from_slice(data);
            c
        };
        match self {
            RdmaPacket::Send {
                src_qp,
                data,
                imm,
                seq,
            } => RdmaPacket::Send {
                src_qp: *src_qp,
                data: pooled(data),
                imm: *imm,
                seq: *seq,
            },
            RdmaPacket::WriteReq {
                src_qp,
                rkey,
                offset,
                data,
                imm,
                seq,
            } => RdmaPacket::WriteReq {
                src_qp: *src_qp,
                rkey: *rkey,
                offset: *offset,
                data: pooled(data),
                imm: *imm,
                seq: *seq,
            },
            other => other.clone(),
        }
    }

    /// Takes the payload buffer out of a data packet so the caller can
    /// recycle it (`None` for control packets).
    pub(crate) fn into_data(self) -> Option<Vec<u8>> {
        match self {
            RdmaPacket::Send { data, .. }
            | RdmaPacket::WriteReq { data, .. }
            | RdmaPacket::ReadResp { data, .. } => Some(data),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_reflect_payload() {
        let send = RdmaPacket::Send {
            src_qp: QpNum(0),
            data: vec![0; 1000],
            imm: None,
            seq: 1,
        };
        assert_eq!(send.wire_bytes(16), 1000 + ROCE_MSG_OVERHEAD);
        let ack = RdmaPacket::Ack { seq: 1 };
        assert_eq!(ack.wire_bytes(16), 16);
        let rr = RdmaPacket::ReadReq {
            src_qp: QpNum(0),
            rkey: 1,
            offset: 0,
            len: 4096,
            seq: 2,
        };
        // Read requests are small regardless of requested length.
        assert!(rr.wire_bytes(16) < 64);
    }
}
