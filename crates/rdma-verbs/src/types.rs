//! Identifier and enum types shared across the verbs API.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Queue pair number, unique per device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QpNum(pub u32);

impl fmt::Display for QpNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

/// Completion queue identifier, unique per device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CqId(pub u32);

/// Protection domain identifier, unique per device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PdId(pub u32);

/// Local memory key: proves the posting process registered the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LKey(pub u32);

/// Remote memory key (the iWARP "Steering Tag" / IB rkey): grants remote
/// peers access to a registered region, subject to its access flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RKey(pub u32);

/// Caller-chosen identifier echoed back in the work completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WrId(pub u64);

/// Memory-region access permissions.
///
/// Mirrors `IBV_ACCESS_*`. Combine with `|`:
///
/// ```
/// use rdma_verbs::Access;
///
/// let acc = Access::LOCAL_WRITE | Access::REMOTE_READ;
/// assert!(acc.allows(Access::REMOTE_READ));
/// assert!(!acc.allows(Access::REMOTE_WRITE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Access(u8);

impl Access {
    /// No permissions (local read is always implied).
    pub const NONE: Access = Access(0);
    /// The local NIC may write into the region (needed for receive buffers
    /// and as the target of RDMA READ responses).
    pub const LOCAL_WRITE: Access = Access(1);
    /// Remote peers may issue RDMA READ against the region.
    pub const REMOTE_READ: Access = Access(2);
    /// Remote peers may issue RDMA WRITE against the region.
    pub const REMOTE_WRITE: Access = Access(4);

    /// True if `self` includes every permission in `other`.
    pub fn allows(self, other: Access) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no remote permission is granted.
    pub fn is_local_only(self) -> bool {
        self.0 & (Self::REMOTE_READ.0 | Self::REMOTE_WRITE.0) == 0
    }
}

impl BitOr for Access {
    type Output = Access;
    fn bitor(self, rhs: Access) -> Access {
        Access(self.0 | rhs.0)
    }
}

impl BitOrAssign for Access {
    fn bitor_assign(&mut self, rhs: Access) {
        self.0 |= rhs.0;
    }
}

/// Queue pair state machine, mirroring `ibv_qp_state`.
///
/// Transitions: `Reset → Init → ReadyToReceive → ReadyToSend`, with any
/// state able to fall into `Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QpState {
    /// Freshly created; no posting allowed.
    Reset,
    /// Initialized; receive WRs may be posted.
    Init,
    /// Connected to the remote QP; inbound packets are processed.
    ReadyToReceive,
    /// Fully operational; send WRs may be posted.
    ReadyToSend,
    /// Fatal error; all posted work completes with flush errors.
    Error,
}

impl QpState {
    /// True if receive work requests may be posted in this state.
    pub fn can_post_recv(self) -> bool {
        matches!(
            self,
            QpState::Init | QpState::ReadyToReceive | QpState::ReadyToSend
        )
    }

    /// True if send work requests may be posted in this state.
    pub fn can_post_send(self) -> bool {
        self == QpState::ReadyToSend
    }

    /// True if inbound packets are processed in this state.
    pub fn can_receive(self) -> bool {
        matches!(self, QpState::ReadyToReceive | QpState::ReadyToSend)
    }
}

/// Status of a completed work request, mirroring `ibv_wc_status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WcStatus {
    /// Operation completed successfully.
    Success,
    /// Local length error (e.g. receive buffer smaller than the message).
    LocalLengthError,
    /// Local protection error (buffer not covered by a valid, permitted MR).
    LocalProtectionError,
    /// Remote access error (bad rkey, out-of-bounds, or permission denied).
    RemoteAccessError,
    /// Remote operation error (responder failure).
    RemoteOperationError,
    /// Receiver-not-ready retries exhausted (no receive WR posted remotely).
    RnrRetryExceeded,
    /// Transport retries exhausted: the operation was retransmitted
    /// `retry_cnt` times without an acknowledgement (remote NIC dead,
    /// link blackholed, or every copy lost). Mirrors
    /// `IBV_WC_RETRY_EXC_ERR`.
    RetryExceeded,
    /// Work request flushed because the QP entered the error state.
    WorkRequestFlushed,
}

impl WcStatus {
    /// True for `Success`.
    pub fn is_ok(self) -> bool {
        self == WcStatus::Success
    }
}

/// Which operation a work completion refers to, mirroring `ibv_wc_opcode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WcOpcode {
    /// A send work request completed.
    Send,
    /// An RDMA WRITE work request completed.
    RdmaWrite,
    /// An RDMA READ work request completed.
    RdmaRead,
    /// A receive work request completed (two-sided SEND arrived).
    Recv,
    /// A receive completed due to RDMA WRITE-with-immediate.
    RecvRdmaWithImm,
}

/// A work completion: one entry polled from a completion queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wc {
    /// The caller-chosen id of the completed work request.
    pub wr_id: WrId,
    /// Completion status.
    pub status: WcStatus,
    /// Completed operation kind.
    pub opcode: WcOpcode,
    /// Bytes transferred (payload length).
    pub byte_len: usize,
    /// The QP the work request was posted on.
    pub qp: QpNum,
    /// Immediate data, present for `RecvRdmaWithImm` (and SENDs with
    /// immediate).
    pub imm: Option<u32>,
}

impl Wc {
    /// Convenience: true if the completion is successful.
    pub fn is_ok(&self) -> bool {
        self.status.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_flags_compose() {
        let a = Access::LOCAL_WRITE | Access::REMOTE_WRITE;
        assert!(a.allows(Access::LOCAL_WRITE));
        assert!(a.allows(Access::REMOTE_WRITE));
        assert!(!a.allows(Access::REMOTE_READ));
        assert!(!a.is_local_only());
        assert!(Access::LOCAL_WRITE.is_local_only());
        assert!(Access::NONE.allows(Access::NONE));
        let mut b = Access::NONE;
        b |= Access::REMOTE_READ;
        assert!(b.allows(Access::REMOTE_READ));
    }

    #[test]
    fn qp_state_permissions() {
        assert!(!QpState::Reset.can_post_recv());
        assert!(QpState::Init.can_post_recv());
        assert!(!QpState::Init.can_post_send());
        assert!(QpState::ReadyToReceive.can_receive());
        assert!(!QpState::ReadyToReceive.can_post_send());
        assert!(QpState::ReadyToSend.can_post_send());
        assert!(QpState::ReadyToSend.can_receive());
        assert!(!QpState::Error.can_post_send());
        assert!(!QpState::Error.can_receive());
    }

    #[test]
    fn wc_status_ok() {
        assert!(WcStatus::Success.is_ok());
        assert!(!WcStatus::RemoteAccessError.is_ok());
        let wc = Wc {
            wr_id: WrId(1),
            status: WcStatus::Success,
            opcode: WcOpcode::Send,
            byte_len: 10,
            qp: QpNum(0),
            imm: None,
        };
        assert!(wc.is_ok());
    }

    #[test]
    fn display_impls() {
        assert_eq!(QpNum(3).to_string(), "qp3");
    }
}
