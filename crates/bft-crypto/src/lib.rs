//! # bft-crypto — cryptographic primitives for the BFT stack
//!
//! From-scratch implementations (the offline environment provides no crypto
//! crates) of everything Reptor's message authentication needs:
//!
//! * [`Sha256`] / [`sha256`] — FIPS 180-4, validated against NIST vectors.
//! * [`hmac_sha256`] / [`verify_hmac`] — RFC 2104, validated against
//!   RFC 4231 vectors.
//! * [`Digest`] — the digest newtype used for requests, batches,
//!   checkpoints and blockchain blocks.
//! * [`KeyTable`] / [`Authenticator`] — PBFT-style MAC vectors with
//!   pairwise session keys ("additional integrity protection mechanisms
//!   such as HMACs are employed in Reptor to detect invalid messages",
//!   paper §III-C).
//!
//! # Example
//!
//! ```
//! use bft_crypto::{Digest, KeyTable};
//!
//! let alice = KeyTable::new(0, b"shared-domain-secret".to_vec());
//! let bob = KeyTable::new(1, b"shared-domain-secret".to_vec());
//!
//! let msg = b"PRE-PREPARE v0 n42";
//! let auth = alice.authenticate(msg, &[1, 2, 3]);
//! assert!(bob.verify(msg, &auth));
//! assert!(!bob.verify(b"PRE-PREPARE v0 n43", &auth));
//!
//! let d = Digest::of(msg);
//! assert_eq!(d, Digest::of(msg));
//! ```

#![warn(missing_docs)]

mod auth;
mod digest;
mod hmac;
mod sha256;

pub use auth::{Authenticator, KeyTable, NodeId};
pub use digest::Digest;
pub use hmac::{hmac_sha256, verify_hmac};
pub use sha256::{sha256, Sha256, DIGEST_LEN};

/// CPU cost model for cryptographic operations, used by the protocol layer
/// to charge MAC/digest work to simulated cores.
#[derive(Debug, Clone, PartialEq)]
pub struct CryptoCostModel {
    /// Fixed cost of one HMAC computation.
    pub hmac_base_ns: u64,
    /// Additional HMAC cost per byte of message.
    pub hmac_ns_per_byte: f64,
    /// Fixed cost of one SHA-256 digest.
    pub digest_base_ns: u64,
    /// Additional digest cost per byte.
    pub digest_ns_per_byte: f64,
}

impl CryptoCostModel {
    /// Java-on-Xeon-v2 estimates (JCE HMAC-SHA256 throughput ≈ 500 MB/s,
    /// a few µs fixed overhead per call).
    pub fn xeon_v2_java() -> CryptoCostModel {
        CryptoCostModel {
            hmac_base_ns: 2_000,
            hmac_ns_per_byte: 2.0,
            digest_base_ns: 1_500,
            digest_ns_per_byte: 1.8,
        }
    }

    /// Cost of MACing a message of `len` bytes for `receivers` receivers.
    pub fn authenticator_cost(&self, len: usize, receivers: usize) -> simnet::Nanos {
        let one = self.hmac_base_ns as f64 + self.hmac_ns_per_byte * len as f64;
        simnet::Nanos::from_nanos((one * receivers as f64) as u64)
    }

    /// Cost of verifying one MAC over `len` bytes.
    pub fn verify_cost(&self, len: usize) -> simnet::Nanos {
        simnet::Nanos::from_nanos(
            (self.hmac_base_ns as f64 + self.hmac_ns_per_byte * len as f64) as u64,
        )
    }

    /// Cost of hashing `len` bytes.
    pub fn digest_cost(&self, len: usize) -> simnet::Nanos {
        simnet::Nanos::from_nanos(
            (self.digest_base_ns as f64 + self.digest_ns_per_byte * len as f64) as u64,
        )
    }
}

impl Default for CryptoCostModel {
    fn default() -> CryptoCostModel {
        CryptoCostModel::xeon_v2_java()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_scales() {
        let m = CryptoCostModel::xeon_v2_java();
        let one = m.authenticator_cost(1024, 1);
        let four = m.authenticator_cost(1024, 4);
        assert_eq!(four.as_nanos(), one.as_nanos() * 4);
        assert!(m.digest_cost(100_000) > m.digest_cost(1_000));
        assert!(m.verify_cost(1024) > simnet::Nanos::ZERO);
    }
}
