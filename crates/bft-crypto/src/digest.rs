//! Digest newtype used throughout the BFT stack.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::sha256::{sha256, DIGEST_LEN};

/// A SHA-256 digest identifying a request, batch, checkpoint or block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest (used as the genesis parent in the blockchain).
    pub const ZERO: Digest = Digest([0; DIGEST_LEN]);

    /// Hashes `data`.
    pub fn of(data: &[u8]) -> Digest {
        Digest(sha256(data))
    }

    /// Hashes the concatenation of several byte strings, length-prefixed so
    /// `("ab","c")` and `("a","bc")` differ.
    pub fn of_parts(parts: &[&[u8]]) -> Digest {
        let mut h = crate::sha256::Sha256::new();
        for p in parts {
            h.update(&(p.len() as u64).to_le_bytes());
            h.update(p);
        }
        Digest(h.finalize())
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Short hex prefix for logs.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_matches_sha256() {
        assert_eq!(Digest::of(b"abc").0, sha256(b"abc"));
    }

    #[test]
    fn parts_are_length_prefixed() {
        let a = Digest::of_parts(&[b"ab", b"c"]);
        let b = Digest::of_parts(&[b"a", b"bc"]);
        assert_ne!(a, b);
        assert_eq!(a, Digest::of_parts(&[b"ab", b"c"]));
    }

    #[test]
    fn display_is_full_hex() {
        let d = Digest::ZERO;
        assert_eq!(d.to_string(), "0".repeat(64));
        assert_eq!(d.short(), "00000000");
        assert!(format!("{d:?}").contains("Digest("));
    }
}
