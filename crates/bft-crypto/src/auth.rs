//! PBFT-style MAC-vector authenticators.
//!
//! PBFT replaces signatures with vectors of MACs: each pair of nodes shares
//! a symmetric session key, and a broadcast message carries one HMAC per
//! receiver (Castro & Liskov, OSDI '99). Reptor uses the same scheme;
//! the paper's §III-C notes these HMACs are what lets the protocol treat a
//! replica with compromised memory keys as simply faulty.

use serde::{Deserialize, Serialize};

use crate::hmac::{hmac_sha256, verify_hmac};
use crate::sha256::DIGEST_LEN;

/// A node identifier in the authentication domain (replicas and clients).
pub type NodeId = u32;

/// Table of pairwise session keys, derived deterministically from a domain
/// secret (stands in for the key-exchange phase of a real deployment).
#[derive(Debug, Clone)]
pub struct KeyTable {
    me: NodeId,
    secret: Vec<u8>,
}

impl KeyTable {
    /// Creates the key table for node `me` in a domain sharing `secret`.
    pub fn new(me: NodeId, secret: impl Into<Vec<u8>>) -> KeyTable {
        KeyTable {
            me,
            secret: secret.into(),
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The symmetric key shared between `a` and `b` (order-independent).
    pub fn pair_key(&self, a: NodeId, b: NodeId) -> [u8; DIGEST_LEN] {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut msg = Vec::with_capacity(self.secret.len() + 8);
        msg.extend_from_slice(&lo.to_le_bytes());
        msg.extend_from_slice(&hi.to_le_bytes());
        hmac_sha256(&self.secret, &msg)
    }

    /// Authenticates `message` towards every node in `receivers`.
    pub fn authenticate(&self, message: &[u8], receivers: &[NodeId]) -> Authenticator {
        let macs = receivers
            .iter()
            .map(|&r| {
                let key = self.pair_key(self.me, r);
                (r, hmac_sha256(&key, message))
            })
            .collect();
        Authenticator {
            sender: self.me,
            macs,
        }
    }

    /// Verifies that `auth` (sent by `auth.sender`) covers `message` for
    /// this node.
    pub fn verify(&self, message: &[u8], auth: &Authenticator) -> bool {
        let Some((_, mac)) = auth.macs.iter().find(|(r, _)| *r == self.me) else {
            return false;
        };
        let key = self.pair_key(auth.sender, self.me);
        verify_hmac(&key, message, mac)
    }
}

/// A vector of per-receiver MACs over one message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Authenticator {
    /// The authenticating node.
    pub sender: NodeId,
    /// `(receiver, mac)` pairs.
    pub macs: Vec<(NodeId, [u8; DIGEST_LEN])>,
}

impl Authenticator {
    /// Serialized size in bytes (for wire-cost accounting).
    pub fn wire_size(&self) -> usize {
        4 + self.macs.len() * (4 + DIGEST_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_keys_are_symmetric_and_distinct() {
        let t0 = KeyTable::new(0, b"domain".to_vec());
        let t1 = KeyTable::new(1, b"domain".to_vec());
        assert_eq!(t0.pair_key(0, 1), t1.pair_key(1, 0));
        assert_ne!(t0.pair_key(0, 1), t0.pair_key(0, 2));
        // Different domain secret → different keys.
        let other = KeyTable::new(0, b"other".to_vec());
        assert_ne!(t0.pair_key(0, 1), other.pair_key(0, 1));
    }

    #[test]
    fn authenticator_verifies_for_each_receiver() {
        let sender = KeyTable::new(0, b"domain".to_vec());
        let auth = sender.authenticate(b"msg", &[1, 2, 3]);
        for r in 1..=3 {
            let table = KeyTable::new(r, b"domain".to_vec());
            assert!(table.verify(b"msg", &auth), "receiver {r}");
        }
        // Non-receiver cannot verify.
        let outsider = KeyTable::new(9, b"domain".to_vec());
        assert!(!outsider.verify(b"msg", &auth));
    }

    #[test]
    fn tampering_breaks_verification() {
        let sender = KeyTable::new(0, b"domain".to_vec());
        let auth = sender.authenticate(b"msg", &[1]);
        let receiver = KeyTable::new(1, b"domain".to_vec());
        assert!(!receiver.verify(b"msg-tampered", &auth));
        // Forged sender id: MAC was keyed on the (0,1) pair key.
        let mut forged = auth.clone();
        forged.sender = 2;
        assert!(!receiver.verify(b"msg", &forged));
    }

    #[test]
    fn wire_size_counts_macs() {
        let sender = KeyTable::new(0, b"d".to_vec());
        let auth = sender.authenticate(b"m", &[1, 2, 3, 4]);
        assert_eq!(auth.wire_size(), 4 + 4 * 36);
    }
}
