//! The replicated KV state machine with a leased read-region image.
//!
//! [`KvStoreService`] is wire-compatible with `reptor::KvService` — same
//! [`KvOp`] payloads, same reply bytes — but additionally maintains the
//! [`crate::region`] image of its applied state and stages the two-phase
//! cell writes the replica publishes into the leased MR after each batch.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use bft_crypto::Digest;
use reptor::{KvOp, Reader, RegionWrite, Request, StateMachine, Writer};

use crate::region::{
    bucket_of, cell_offset, encode_cell, encode_header, encode_poisoned, fits, CELL_SIZE,
    DEFAULT_CAPACITY, HEADER_SIZE,
};

/// A replicated key/value store exposing its applied state as a leased
/// read region.
#[derive(Debug, Clone)]
pub struct KvStoreService {
    capacity: usize,
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    version: u64,
    /// Live keys per bucket (key sets, so collisions are detectable and
    /// reversible on delete).
    buckets: Vec<BTreeSet<Vec<u8>>>,
    /// Materialized region image: what a fresh lease registration exposes.
    image: Vec<u8>,
    /// Two-phase cell writes staged since the last drain.
    pending: Vec<RegionWrite>,
}

impl Default for KvStoreService {
    fn default() -> KvStoreService {
        KvStoreService::new(DEFAULT_CAPACITY)
    }
}

impl KvStoreService {
    /// Creates a store whose read region has `capacity` cells.
    pub fn new(capacity: usize) -> KvStoreService {
        assert!(capacity > 0, "region needs at least one cell");
        let mut image = vec![0u8; HEADER_SIZE + capacity * CELL_SIZE];
        image[..HEADER_SIZE].copy_from_slice(&encode_header(capacity));
        KvStoreService {
            capacity,
            map: BTreeMap::new(),
            version: 0,
            buckets: vec![BTreeSet::new(); capacity],
            image,
            pending: Vec::new(),
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no keys are live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct read (tests compare replica states).
    pub fn get(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.map.get(key)
    }

    /// Apply version (bumped once per executed request).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Region cell count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Recomputes bucket `b`'s cell after a mutation, updating the
    /// materialized image immediately (the image is the service's
    /// atomically-current view) and staging the two-phase MR write.
    fn refresh_cell(&mut self, b: usize) {
        let stamp = 2 * self.version;
        let cell: [u8; CELL_SIZE] = {
            let live = &self.buckets[b];
            match live.len() {
                0 => encode_cell(stamp, b"", b""),
                1 => {
                    let k = live.iter().next().expect("len 1");
                    let v = self.map.get(k).expect("live keys are mapped");
                    if fits(k, v) {
                        encode_cell(stamp, k, v)
                    } else {
                        encode_poisoned(stamp + 1)
                    }
                }
                _ => encode_poisoned(stamp + 1),
            }
        };
        let off = cell_offset(b);
        self.image[off..off + CELL_SIZE].copy_from_slice(&cell);
        self.pending.push(RegionWrite {
            offset: off as u64,
            begin: (stamp + 1).to_le_bytes().to_vec(),
            commit: cell.to_vec(),
        });
    }

    /// Rebuilds every bucket set and the whole image from the map (after
    /// a snapshot restore). All cells are restamped at the current
    /// version; staged writes are dropped — the next lease registration
    /// exposes this fresh image wholesale.
    fn rebuild_region(&mut self) {
        self.pending.clear();
        for s in &mut self.buckets {
            s.clear();
        }
        for k in self.map.keys() {
            self.buckets[bucket_of(k, self.capacity)].insert(k.clone());
        }
        let stamp = 2 * self.version;
        for b in 0..self.capacity {
            let off = cell_offset(b);
            let cell: [u8; CELL_SIZE] = match self.buckets[b].len() {
                0 => {
                    if stamp == 0 {
                        [0u8; CELL_SIZE]
                    } else {
                        encode_cell(stamp, b"", b"")
                    }
                }
                1 => {
                    let k = self.buckets[b].iter().next().expect("len 1");
                    let v = self.map.get(k).expect("live keys are mapped");
                    if fits(k, v) {
                        encode_cell(stamp, k, v)
                    } else {
                        encode_poisoned(stamp + 1)
                    }
                }
                _ => encode_poisoned(stamp + 1),
            };
            self.image[off..off + CELL_SIZE].copy_from_slice(&cell);
        }
    }
}

impl StateMachine for KvStoreService {
    fn apply(&mut self, req: &Request) -> Vec<u8> {
        self.version += 1;
        match KvOp::decode(&req.payload) {
            Some(KvOp::Get(k)) => self.map.get(&k).cloned().unwrap_or_default(),
            Some(KvOp::Put(k, v)) => {
                let b = bucket_of(&k, self.capacity);
                self.map.insert(k.clone(), v);
                self.buckets[b].insert(k);
                self.refresh_cell(b);
                b"OK".to_vec()
            }
            Some(KvOp::Del(k)) => {
                if self.map.remove(&k).is_some() {
                    let b = bucket_of(&k, self.capacity);
                    self.buckets[b].remove(&k);
                    self.refresh_cell(b);
                    b"OK".to_vec()
                } else {
                    b"MISS".to_vec()
                }
            }
            None => b"ERR".to_vec(),
        }
    }

    fn state_digest(&self) -> Digest {
        let mut parts: Vec<&[u8]> = Vec::with_capacity(self.map.len() * 2 + 1);
        let ver = self.version.to_le_bytes();
        parts.push(&ver);
        for (k, v) in &self.map {
            parts.push(k);
            parts.push(v);
        }
        Digest::of_parts(&parts)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.version);
        w.u64(self.capacity as u64);
        w.u32(self.map.len() as u32);
        for (k, v) in &self.map {
            w.bytes(k);
            w.bytes(v);
        }
        w.finish()
    }

    fn restore(&mut self, snapshot: &[u8]) -> bool {
        let mut r = Reader::new(snapshot);
        let Ok(version) = r.u64() else { return false };
        let Ok(capacity) = r.u64() else { return false };
        let Ok(count) = r.u32() else { return false };
        if capacity == 0 {
            return false;
        }
        let mut map = BTreeMap::new();
        for _ in 0..count {
            let (Ok(k), Ok(v)) = (r.bytes(), r.bytes()) else {
                return false;
            };
            map.insert(k, v);
        }
        if r.expect_end().is_err() {
            return false;
        }
        let capacity = capacity as usize;
        if capacity != self.capacity {
            self.capacity = capacity;
            self.buckets = vec![BTreeSet::new(); capacity];
            self.image = vec![0u8; HEADER_SIZE + capacity * CELL_SIZE];
            self.image[..HEADER_SIZE].copy_from_slice(&encode_header(capacity));
        }
        self.version = version;
        self.map = map;
        self.rebuild_region();
        true
    }

    fn read_region_image(&self) -> Option<Vec<u8>> {
        Some(self.image.clone())
    }

    fn drain_region_writes(&mut self) -> Vec<RegionWrite> {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{decode_cell, judge, CellRead, KeyVerdict};

    fn req(payload: Vec<u8>) -> Request {
        Request {
            client: 9,
            timestamp: 1,
            payload,
        }
    }

    fn put(s: &mut KvStoreService, k: &[u8], v: &[u8]) -> Vec<u8> {
        s.apply(&req(KvOp::Put(k.to_vec(), v.to_vec()).encode()))
    }

    fn cell_for(s: &KvStoreService, k: &[u8]) -> Vec<u8> {
        let off = cell_offset(bucket_of(k, s.capacity()));
        s.read_region_image().expect("image")[off..off + CELL_SIZE].to_vec()
    }

    #[test]
    fn puts_land_in_image_cells() {
        let mut s = KvStoreService::default();
        assert_eq!(put(&mut s, b"alpha", b"1"), b"OK");
        match decode_cell(&cell_for(&s, b"alpha")) {
            CellRead::Committed { stamp, key, val } => {
                assert_eq!(stamp, 2);
                assert_eq!(key, b"alpha");
                assert_eq!(val, b"1");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deletes_leave_versioned_empty_markers() {
        let mut s = KvStoreService::default();
        put(&mut s, b"k", b"v");
        assert_eq!(s.apply(&req(KvOp::Del(b"k".to_vec()).encode())), b"OK");
        match decode_cell(&cell_for(&s, b"k")) {
            CellRead::Committed { stamp, key, .. } => {
                assert_eq!(stamp, 4, "delete stamps the marker");
                assert!(key.is_empty());
            }
            other => panic!("{other:?}"),
        }
        // A reader must see the delete as *newer* than the old value.
        assert_eq!(
            judge(&decode_cell(&cell_for(&s, b"k")), b"k"),
            KeyVerdict::Absent(4)
        );
    }

    #[test]
    fn collisions_poison_and_recover() {
        // Capacity 1: every key collides.
        let mut s = KvStoreService::new(1);
        put(&mut s, b"a", b"1");
        put(&mut s, b"b", b"2");
        assert_eq!(
            judge(&decode_cell(&cell_for(&s, b"a")), b"a"),
            KeyVerdict::Fallback,
            "two live keys in one bucket must poison it"
        );
        s.apply(&req(KvOp::Del(b"b".to_vec()).encode()));
        match judge(&decode_cell(&cell_for(&s, b"a")), b"a") {
            KeyVerdict::Value(_, v) => assert_eq!(v, b"1"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversize_entries_poison_their_cell() {
        let mut s = KvStoreService::default();
        let big_key = vec![b'k'; 64];
        put(&mut s, &big_key, b"v");
        assert_eq!(
            judge(&decode_cell(&cell_for(&s, &big_key)), &big_key),
            KeyVerdict::Fallback
        );
        let big_val = vec![b'v'; 200];
        put(&mut s, b"smallkey", &big_val);
        assert_eq!(
            judge(&decode_cell(&cell_for(&s, b"smallkey")), b"smallkey"),
            KeyVerdict::Fallback
        );
        // The map itself still serves them on the message path.
        assert_eq!(s.get(&big_key), Some(&b"v".to_vec()));
        assert_eq!(s.get(b"smallkey"), Some(&big_val));
    }

    #[test]
    fn region_writes_are_two_phase() {
        let mut s = KvStoreService::default();
        put(&mut s, b"k", b"v");
        let writes = s.drain_region_writes();
        assert_eq!(writes.len(), 1);
        let w = &writes[0];
        assert_eq!(w.begin.len(), 8);
        let begin_stamp = u64::from_le_bytes(w.begin.clone().try_into().expect("8"));
        assert_eq!(begin_stamp % 2, 1, "begin stamp is torn (odd)");
        assert_eq!(w.commit.len(), CELL_SIZE);
        assert!(matches!(decode_cell(&w.commit), CellRead::Committed { .. }));
        assert!(s.drain_region_writes().is_empty(), "drain is destructive");
    }

    #[test]
    fn snapshot_restore_rebuilds_identical_judgements() {
        let mut s = KvStoreService::new(64);
        for i in 0..40u32 {
            put(&mut s, format!("user{i}").as_bytes(), &i.to_le_bytes());
        }
        s.apply(&req(KvOp::Del(b"user7".to_vec()).encode()));
        let mut fresh = KvStoreService::new(8); // wrong capacity on purpose
        assert!(fresh.restore(&s.snapshot()));
        assert_eq!(fresh.capacity(), 64);
        assert_eq!(fresh.state_digest(), s.state_digest());
        // Every key judges to the same value through the restored image.
        for i in 0..40u32 {
            let k = format!("user{i}");
            let a = judge(&decode_cell(&cell_for(&s, k.as_bytes())), k.as_bytes());
            let b = judge(&decode_cell(&cell_for(&fresh, k.as_bytes())), k.as_bytes());
            match (a, b) {
                (KeyVerdict::Fallback, KeyVerdict::Fallback) => {}
                (KeyVerdict::Absent(_), KeyVerdict::Absent(sb)) => {
                    assert!(sb >= 2, "restored absences carry the restore stamp")
                }
                (KeyVerdict::Value(_, va), KeyVerdict::Value(sb, vb)) => {
                    assert_eq!(va, vb);
                    assert_eq!(sb, 2 * fresh.version());
                }
                (a, b) => panic!("diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn replies_match_reference_kv_service() {
        use reptor::KvService;
        let mut a = KvStoreService::default();
        let mut b = KvService::default();
        let script: Vec<Vec<u8>> = vec![
            KvOp::Put(b"x".to_vec(), b"1".to_vec()).encode(),
            KvOp::Get(b"x".to_vec()).encode(),
            KvOp::Del(b"x".to_vec()).encode(),
            KvOp::Del(b"x".to_vec()).encode(),
            KvOp::Get(b"x".to_vec()).encode(),
            b"garbage".to_vec(),
        ];
        for p in script {
            assert_eq!(a.apply(&req(p.clone())), b.apply(&req(p)));
        }
    }
}
