//! A replicated key-value service with agreement-free one-sided reads.
//!
//! The paper's thesis is that RDMA's one-sided operations and
//! RNIC-enforced permissions belong in the BFT protocol itself, not just
//! under it. This crate applies that to the read path of a replicated KV
//! store (the `rabia-kvstore` shape): replicas expose their applied state
//! as a version-stamped cell region behind an RDMA read lease
//! ([`region`]), and clients serve `Get`s by one-sided-READing the key's
//! cell from `2f + 1` replicas — no agreement, no replica CPU — falling
//! back to the ordinary message path whenever any cell is torn, poisoned,
//! or denied ([`client`]).
//!
//! The whole stack is gated by an exhaustive per-key linearizability
//! checker ([`lin`]) over histories recorded from the deterministic
//! simulation ([`harness`]), driven by YCSB-style workloads
//! ([`workload`]).

#![warn(missing_docs)]

pub mod client;
pub mod harness;
pub mod lin;
pub mod region;
pub mod service;
pub mod workload;

pub use client::KvClient;
pub use harness::{kv_config, KvHarness, Stack};
pub use lin::{check_linearizable, KvEvent, KvHistOp};
pub use region::{
    bucket_of, cell_offset, decode_cell, judge, CellRead, KeyVerdict, CELL_SIZE, DEFAULT_CAPACITY,
    HEADER_SIZE, KEY_MAX, VAL_MAX,
};
pub use service::KvStoreService;
pub use workload::{ClientWorkload, YcsbSpec};
