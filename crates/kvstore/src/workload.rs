//! YCSB-style per-client operation streams.
//!
//! Workload A (50/50 read/update) and B (95/5) over zipfian or uniform
//! key popularity, matching the shapes the YCSB core workloads use. Each
//! client owns an independent [`SplitMix64`] stream seeded from
//! `(run_seed, client_id)`, so schedules that interleave clients
//! differently never perturb any individual client's op sequence.

use simnet::zipf::{KeyDist, SplitMix64};

use crate::lin::KvHistOp;

/// A YCSB-style workload shape.
#[derive(Debug, Clone)]
pub struct YcsbSpec {
    /// Fraction of operations that are reads (0.5 for A, 0.95 for B).
    pub read_ratio: f64,
    /// Key popularity distribution.
    pub dist: KeyDist,
    /// Value payload size in bytes (must fit a region cell for one-sided
    /// readability; larger values exercise the fallback).
    pub val_size: usize,
}

impl YcsbSpec {
    /// Workload A: 50 % reads / 50 % updates, zipfian keys.
    pub fn a(keys: u64) -> YcsbSpec {
        YcsbSpec {
            read_ratio: 0.5,
            dist: KeyDist::zipfian(keys, 0.99),
            val_size: 32,
        }
    }

    /// Workload B: 95 % reads / 5 % updates, zipfian keys.
    pub fn b(keys: u64) -> YcsbSpec {
        YcsbSpec {
            read_ratio: 0.95,
            dist: KeyDist::zipfian(keys, 0.99),
            val_size: 32,
        }
    }

    /// Uniform-key variant (CRUD-style caches; also keeps per-key
    /// concurrency low enough for exhaustive lin-checking).
    pub fn uniform(read_ratio: f64, keys: u64) -> YcsbSpec {
        YcsbSpec {
            read_ratio,
            dist: KeyDist::uniform(keys),
            val_size: 32,
        }
    }

    /// Display label for tables.
    pub fn label(&self) -> String {
        format!(
            "{}%read/{}keys",
            (self.read_ratio * 100.0) as u32,
            self.dist.key_space()
        )
    }
}

/// One client's deterministic op stream.
#[derive(Debug)]
pub struct ClientWorkload {
    client: u32,
    spec: YcsbSpec,
    rng: SplitMix64,
    issued: u64,
}

impl ClientWorkload {
    /// Creates the stream for `client` under `spec`, derived from the run
    /// seed.
    pub fn new(client: u32, spec: YcsbSpec, run_seed: u64) -> ClientWorkload {
        ClientWorkload {
            client,
            rng: SplitMix64::new(
                run_seed ^ (u64::from(client)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
            spec,
            issued: 0,
        }
    }

    /// The next operation. Writes carry a value unique to
    /// `(client, issue-index)`, which is what lets the linearizability
    /// checker distinguish every write.
    pub fn next_op(&mut self) -> KvHistOp {
        let rank = self.spec.dist.sample(&mut self.rng);
        let key = format!("user{rank:06}").into_bytes();
        let is_read = self.rng.next_f64() < self.spec.read_ratio;
        self.issued += 1;
        if is_read {
            KvHistOp::Get {
                key,
                result: Vec::new(), // filled at completion
            }
        } else {
            let mut val = format!("c{}-{}-", self.client, self.issued).into_bytes();
            while val.len() < self.spec.val_size {
                val.push(b'.');
            }
            val.truncate(self.spec.val_size.max(1));
            KvHistOp::Put { key, val }
        }
    }

    /// Operations issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_independent() {
        let mk = |client, seed| {
            let mut w = ClientWorkload::new(client, YcsbSpec::b(100), seed);
            (0..50).map(|_| w.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(mk(3, 7), mk(3, 7));
        assert_ne!(mk(3, 7), mk(4, 7));
    }

    #[test]
    fn read_ratio_is_roughly_honoured() {
        let mut w = ClientWorkload::new(1, YcsbSpec::b(1000), 42);
        let reads = (0..2000)
            .filter(|_| matches!(w.next_op(), KvHistOp::Get { .. }))
            .count();
        assert!((1800..=2000).contains(&reads), "reads: {reads}/2000");
    }

    #[test]
    fn write_values_are_unique_per_client_op() {
        let mut w = ClientWorkload::new(1, YcsbSpec::a(10), 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            if let KvHistOp::Put { val, .. } = w.next_op() {
                assert!(seen.insert(val), "duplicate write value");
            }
        }
    }
}
