//! The KV client: agreement-free one-sided reads with message-path
//! fallback.
//!
//! Writes (`Put`/`Del`) always go through agreement via the wrapped
//! [`reptor::Client`]. Reads first try the one-sided path: the client
//! one-sided-READs the key's cell from `2f + 1` replicas' leased regions
//! in parallel and accepts the answer only if **every** cell is valid
//! (committed stamps, no torn/poisoned cell, no RNIC denial) **and all
//! `2f + 1` cells agree** on the same stamp and verdict. Any blemish —
//! denial of a revoked rkey, a torn stamp caught mid-update, a poisoned
//! bucket, or cells that disagree (`kv_read_divergent`) — routes the
//! read through the ordinary agreement path (`kv_read_fallback`), so the
//! fast path can only ever *lose performance*, never correctness.
//!
//! ## Why the quorum read is linearizable
//!
//! The invariant both paths maintain: **the state observed by any
//! completed operation is applied at `f + 1` honest replicas by the time
//! the operation responds**, and any two `f + 1`-sized sets of honest
//! replicas intersect (at most `f` of the `3f + 1` replicas are faulty,
//! so there are at least `2f + 1` honest ones and
//! `(f+1) + (f+1) > 2f+1`).
//!
//! * *Message path.* KV clients complete message-path operations only on
//!   `2f + 1` matching replies ([`reptor::Client::set_reply_quorum`]),
//!   of which at least `f + 1` come from honest replicas that executed
//!   the operation — and with it every operation ordered before it.
//! * *One-sided path.* A read is accepted only when all `2f + 1` cells
//!   agree, so at least `f + 1` honest replicas have applied exactly the
//!   returned (stamp, value) state. A fabricated cell — a Byzantine
//!   replica publishing an arbitrary high even stamp or a bogus value
//!   into its own validly-leased region — can never gather `f + 1`
//!   honest look-alikes, so it only breaks unanimity and forces the
//!   (safe) fallback. See [`reptor::ByzantineMode::ForgedLeaseCells`].
//!
//! Linearizability follows from intersection plus per-replica stamp
//! monotonicity: any operation invoked after some operation observing
//! stamp `s` completed meets, in every quorum it can use, at least one
//! honest replica whose applied state is at stamp `>= s` — a later
//! one-sided read therefore cannot reach unanimity on an older stamp
//! (no new-then-old inversion, even across clients whose quorums
//! diverge), and a later message-path operation executes at a log
//! position at or beyond `s`'s write. The previous revision accepted the
//! *max-stamp* cell out of any all-valid quorum; that trusts a single
//! replica's cell content and admits both fabrication and an apply-lag
//! inversion between divergent quorums, which is why unanimity (and the
//! `2f + 1` reply quorum) is load-bearing here.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use reptor::{Client, KvOp, Message, ReptorConfig, Transport};
use simnet::{Metrics, Simulator};

use crate::lin::{KvEvent, KvHistOp};
use crate::region::{
    bucket_of, cell_offset, decode_cell, judge, KeyVerdict, CELL_SIZE, HEADER_SIZE,
};

/// Shared aggregator for one quorum read: per-replica outcomes
/// (`None` = denied / failed to issue) collected by the READ callbacks.
type ReadResults = Rc<RefCell<Vec<(u32, Option<Vec<u8>>)>>>;

#[derive(Debug, Clone, Copy)]
struct Lease {
    rkey: u32,
    capacity: usize,
}

struct KvClientInner {
    id: u32,
    n: usize,
    f: usize,
    transport: Rc<dyn Transport>,
    metrics: Metrics,
    prefix: String,
    /// Known read leases, by replica. `BTreeMap` so quorum choice
    /// iterates deterministically.
    leases: BTreeMap<u32, Lease>,
    /// Demerit counts, by replica: one per RNIC denial and one per
    /// out-voted cell in a divergent quorum. Quorum choice prefers the
    /// least-demerited replicas, so a stale-lease liar rotates out after
    /// its first denial and a cell forger (or persistent laggard) after
    /// its first out-voted read.
    demerits: BTreeMap<u32, u64>,
    /// Message-path operations in flight, by request timestamp, with
    /// their original invocation instants.
    pending: HashMap<u64, (KvHistOp, u64)>,
    /// Completed one-sided reads.
    onesided: Vec<KvEvent>,
    /// One-sided reads whose quorum responses are still in flight.
    inflight_reads: u64,
    /// Whether a lease query round has been sent at all.
    queried: bool,
}

/// A KV client over one replicated cluster.
#[derive(Clone)]
pub struct KvClient {
    client: Client,
    inner: Rc<RefCell<KvClientInner>>,
}

impl std::fmt::Debug for KvClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("KvClient")
            .field("id", &inner.id)
            .field("leases", &inner.leases.len())
            .field("inflight_reads", &inner.inflight_reads)
            .finish()
    }
}

fn capacity_from_len(len: u64) -> Option<usize> {
    let body = (len as usize).checked_sub(HEADER_SIZE)?;
    if body == 0 || body % CELL_SIZE != 0 {
        return None;
    }
    Some(body / CELL_SIZE)
}

impl KvClient {
    /// Wraps a [`reptor::Client`] (already wired to `transport`) with the
    /// one-sided read path. Installs the client's auxiliary handler to
    /// capture lease grants.
    pub fn new(
        client: Client,
        cfg: &ReptorConfig,
        transport: Rc<dyn Transport>,
        metrics: Metrics,
    ) -> KvClient {
        let id = client.id();
        // One-sided reads bypass agreement, so message-path completions
        // must prove more than the PBFT minimum: 2f + 1 matching replies
        // mean f + 1 *honest* replicas applied the operation before it
        // responded, and every subsequent unanimous read quorum
        // intersects them (see the module docs).
        client.set_reply_quorum(2 * cfg.f() + 1);
        let inner = Rc::new(RefCell::new(KvClientInner {
            id,
            n: cfg.n,
            f: cfg.f(),
            transport,
            metrics,
            prefix: format!("kv.c{id}."),
            leases: BTreeMap::new(),
            demerits: BTreeMap::new(),
            pending: HashMap::new(),
            onesided: Vec::new(),
            inflight_reads: 0,
            queried: false,
        }));
        let handler_inner = inner.clone();
        client.set_aux_handler(Rc::new(move |_sim, msg| {
            if let Message::LeaseGrant {
                replica, rkey, len, ..
            } = msg
            {
                let mut i = handler_inner.borrow_mut();
                match (rkey, capacity_from_len(len)) {
                    (0, _) | (_, None) => {
                        i.leases.remove(&replica);
                    }
                    (rkey, Some(capacity)) => {
                        i.leases.insert(replica, Lease { rkey, capacity });
                    }
                }
            }
        }));
        KvClient { client, inner }
    }

    /// The wrapped agreement-path client.
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// This client's node id.
    pub fn id(&self) -> u32 {
        self.inner.borrow().id
    }

    /// True while any operation (message-path or one-sided) is in flight.
    pub fn busy(&self) -> bool {
        self.client.pending_count() > 0 || self.inner.borrow().inflight_reads > 0
    }

    /// Completed operations so far (both paths).
    pub fn completed_ops(&self) -> u64 {
        self.inner.borrow().onesided.len() as u64 + self.client.stats().completed
    }

    fn bump(&self, metric: &str) {
        let inner = self.inner.borrow();
        inner.metrics.incr(&format!("{}{}", inner.prefix, metric));
    }

    /// Sends a lease query to every replica (cheap; answers arrive as
    /// LEASE-GRANTs through the auxiliary handler).
    pub fn query_leases(&self, sim: &mut Simulator) {
        let (id, n) = {
            let mut inner = self.inner.borrow_mut();
            inner.queried = true;
            (inner.id, inner.n)
        };
        self.bump("kv_lease_queries");
        for r in 0..n as u32 {
            self.client
                .send_to_replica(sim, r, &Message::LeaseQuery { client: id });
        }
    }

    /// Submits a write (`Put`).
    pub fn put(&self, sim: &mut Simulator, key: Vec<u8>, val: Vec<u8>) {
        let invoke = sim.now().as_nanos();
        let payload = KvOp::Put(key.clone(), val.clone()).encode();
        let ts = self.client.submit(sim, payload);
        self.inner
            .borrow_mut()
            .pending
            .insert(ts, (KvHistOp::Put { key, val }, invoke));
    }

    /// Submits a delete (`Del`).
    pub fn del(&self, sim: &mut Simulator, key: Vec<u8>) {
        let invoke = sim.now().as_nanos();
        let payload = KvOp::Del(key.clone()).encode();
        let ts = self.client.submit(sim, payload);
        self.inner
            .borrow_mut()
            .pending
            .insert(ts, (KvHistOp::Del { key }, invoke));
    }

    /// Issues a read: one-sided if a `2f + 1` lease quorum is available,
    /// message-path otherwise.
    pub fn get(&self, sim: &mut Simulator, key: Vec<u8>) {
        let invoke = sim.now().as_nanos();
        let quorum: Vec<(u32, Lease)> = {
            let inner = self.inner.borrow();
            let need = 2 * inner.f + 1;
            if inner.leases.len() < need {
                Vec::new()
            } else {
                // Least-demerited replicas first; ties by id. One demerit
                // is enough to rotate a stale-lease liar or cell forger
                // out of the quorum.
                let mut order: Vec<(u64, u32, Lease)> = inner
                    .leases
                    .iter()
                    .map(|(&r, &l)| (inner.demerits.get(&r).copied().unwrap_or(0), r, l))
                    .collect();
                order.sort_by_key(|&(d, r, _)| (d, r));
                order.truncate(need);
                order.into_iter().map(|(_, r, l)| (r, l)).collect()
            }
        };
        if quorum.is_empty() {
            let queried = self.inner.borrow().queried;
            if !queried {
                self.query_leases(sim);
            }
            self.fallback_get(sim, key, invoke);
            return;
        }
        self.inner.borrow_mut().inflight_reads += 1;
        let want = quorum.len();
        let results: ReadResults = Rc::new(RefCell::new(Vec::with_capacity(want)));
        let transport = self.inner.borrow().transport.clone();
        for (replica, lease) in quorum {
            let off = cell_offset(bucket_of(&key, lease.capacity)) as u64;
            let kv = self.clone();
            let res = results.clone();
            let key2 = key.clone();
            let issued = transport.read_state(
                sim,
                replica,
                lease.rkey,
                off,
                CELL_SIZE,
                Box::new(move |sim, bytes| {
                    res.borrow_mut().push((replica, bytes));
                    if res.borrow().len() == want {
                        let all = std::mem::take(&mut *res.borrow_mut());
                        kv.finish_read(sim, key2, invoke, all);
                    }
                }),
            );
            if !issued {
                // No one-sided path to this replica right now (channel
                // re-dialing after a NAK, or transport without READs).
                results.borrow_mut().push((replica, None));
                if results.borrow().len() == want {
                    let all = std::mem::take(&mut *results.borrow_mut());
                    self.finish_read(sim, key.clone(), invoke, all);
                }
            }
        }
    }

    /// Aggregates one quorum read. All `2f + 1` cells must be valid *and
    /// unanimous* on the same stamp and verdict; otherwise the read falls
    /// back to agreement. Unanimity is what makes the result Byzantine-
    /// proof: at most `f` cells can lie, so an accepted (stamp, value) is
    /// vouched for by at least `f + 1` honest replicas (module docs).
    fn finish_read(
        &self,
        sim: &mut Simulator,
        key: Vec<u8>,
        invoke: u64,
        results: Vec<(u32, Option<Vec<u8>>)>,
    ) {
        self.inner.borrow_mut().inflight_reads -= 1;
        let denied: Vec<u32> = results
            .iter()
            .filter(|(_, b)| b.is_none())
            .map(|(r, _)| *r)
            .collect();
        if !denied.is_empty() {
            {
                let mut inner = self.inner.borrow_mut();
                for r in &denied {
                    *inner.demerits.entry(*r).or_insert(0) += 1;
                    inner.leases.remove(r);
                }
            }
            self.bump("kv_read_denied");
            // Re-learn the lease landscape (the denier may have rolled to
            // a fresh rkey legitimately) and serve this read safely.
            self.query_leases(sim);
            self.fallback_get(sim, key, invoke);
            return;
        }
        let verdicts: Vec<(u32, KeyVerdict)> = results
            .iter()
            .map(|(r, bytes)| {
                let cell = decode_cell(bytes.as_ref().expect("denials handled above"));
                (*r, judge(&cell, &key))
            })
            .collect();
        if verdicts.iter().any(|(_, v)| *v == KeyVerdict::Fallback) {
            // Torn or poisoned cell: the only safe answer is the
            // agreement path.
            self.bump("kv_read_torn");
            self.fallback_get(sim, key, invoke);
            return;
        }
        let unanimous = verdicts.iter().all(|(_, v)| *v == verdicts[0].1);
        if !unanimous {
            // Divergent cells: a lagging apply, or a forged cell from a
            // Byzantine replica — indistinguishable from here, and both
            // unsafe to serve. Demerit the out-voted minority (a forger
            // or persistent laggard rotates out of future quorums; an
            // honest replica that was merely mid-apply shrugs off the
            // preference penalty) and serve the read through agreement.
            let plurality = verdicts
                .iter()
                .map(|(_, v)| v)
                .max_by_key(|v| {
                    let votes = verdicts.iter().filter(|(_, w)| w == *v).count();
                    let stamp = match v {
                        KeyVerdict::Absent(s) | KeyVerdict::Value(s, _) => *s,
                        KeyVerdict::Fallback => unreachable!("handled above"),
                    };
                    (votes, stamp)
                })
                .expect("quorum is non-empty")
                .clone();
            {
                let mut inner = self.inner.borrow_mut();
                for (r, v) in &verdicts {
                    if *v != plurality {
                        *inner.demerits.entry(*r).or_insert(0) += 1;
                    }
                }
            }
            self.bump("kv_read_divergent");
            self.fallback_get(sim, key, invoke);
            return;
        }
        let result = match &verdicts[0].1 {
            KeyVerdict::Absent(_) => Vec::new(),
            KeyVerdict::Value(_, val) => val.clone(),
            KeyVerdict::Fallback => unreachable!("handled above"),
        };
        let response = sim.now().as_nanos();
        let mut inner = self.inner.borrow_mut();
        let client = inner.id;
        inner.onesided.push(KvEvent {
            client,
            invoke,
            response: Some(response),
            op: KvHistOp::Get { key, result },
        });
        drop(inner);
        self.bump("kv_read_onesided");
    }

    /// Serves a read through agreement, preserving the original
    /// invocation instant (the op began when `get` was called, and the
    /// checker must see the full interval).
    fn fallback_get(&self, sim: &mut Simulator, key: Vec<u8>, invoke: u64) {
        self.bump("kv_read_fallback");
        let payload = KvOp::Get(key.clone()).encode();
        let ts = self.client.submit(sim, payload);
        self.inner.borrow_mut().pending.insert(
            ts,
            (
                KvHistOp::Get {
                    key,
                    result: Vec::new(),
                },
                invoke,
            ),
        );
    }

    /// Assembles this client's full operation history: one-sided reads
    /// plus message-path completions, with real invoke/response instants.
    /// Operations still in flight appear with `response: None`.
    pub fn history(&self) -> Vec<KvEvent> {
        let inner = self.inner.borrow();
        let mut events = inner.onesided.clone();
        let completions: HashMap<u64, (u64, Vec<u8>)> = self
            .client
            .completions()
            .into_iter()
            .map(|c| (c.timestamp, (c.completed_at.as_nanos(), c.result)))
            .collect();
        for (ts, (op, invoke)) in &inner.pending {
            let mut op = op.clone();
            let response = completions.get(ts).map(|(at, result)| {
                if let KvHistOp::Get { result: r, .. } = &mut op {
                    *r = result.clone();
                }
                *at
            });
            events.push(KvEvent {
                client: inner.id,
                invoke: *invoke,
                response,
                op,
            });
        }
        events.sort_by_key(|e| (e.invoke, e.response));
        events
    }
}
