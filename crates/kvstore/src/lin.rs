//! A Wing–Gong-style linearizability checker for KV histories.
//!
//! The deterministic simulation gives every operation exact real-time
//! invoke/response instants, so the harness can record a per-client
//! history and check it exhaustively: per key, the store is an
//! independent register (initial value: absent, modelled as the empty
//! byte string; `Del` writes absent), and a history is linearizable iff
//! some permutation of the operations (a) respects real-time order —
//! an op that responded before another was invoked linearizes first —
//! and (b) every read returns the latest linearized write.
//!
//! The search is the classic Wing–Gong exhaustive DFS with the
//! "minimal response" pruning rule and memoization on
//! `(taken-set, register value)`; bounded-concurrency sim histories keep
//! it tractable (the state space is exponential only in per-key
//! *concurrency*, not history length).

use std::collections::{BTreeMap, HashSet};

/// One recorded operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvHistOp {
    /// A read returning `result` (empty = key absent).
    Get {
        /// Key read.
        key: Vec<u8>,
        /// Observed value; empty means absent.
        result: Vec<u8>,
    },
    /// A write of `val`.
    Put {
        /// Key written.
        key: Vec<u8>,
        /// Value written.
        val: Vec<u8>,
    },
    /// A delete (modelled as a write of the empty value).
    Del {
        /// Key deleted.
        key: Vec<u8>,
    },
}

impl KvHistOp {
    fn key(&self) -> &[u8] {
        match self {
            KvHistOp::Get { key, .. } | KvHistOp::Put { key, .. } | KvHistOp::Del { key } => key,
        }
    }
}

/// One history event: an operation with its real-time interval.
#[derive(Debug, Clone)]
pub struct KvEvent {
    /// Issuing client.
    pub client: u32,
    /// Invocation instant (ns).
    pub invoke: u64,
    /// Response instant (ns); `None` if the operation never completed
    /// (its effect may or may not have taken place).
    pub response: Option<u64>,
    /// The operation.
    pub op: KvHistOp,
}

/// Per-key op after projection: read expecting `expect`, or write of `val`.
#[derive(Debug, Clone)]
enum RegOp {
    Read { expect: usize },
    Write { val: usize },
}

struct RegEvent {
    invoke: u64,
    response: u64, // u64::MAX when never completed
    completed: bool,
    op: RegOp,
}

/// A taken-set over a key's operations: one bit per op, any number of
/// ops (the memoization key, so zipfian batteries that pile hundreds of
/// operations onto one hot key degrade in time/memory, never abort).
#[derive(Clone, PartialEq, Eq, Hash)]
struct OpMask(Box<[u64]>);

impl OpMask {
    fn empty(ops: usize) -> OpMask {
        OpMask(vec![0u64; ops.div_ceil(64).max(1)].into_boxed_slice())
    }

    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn with(&self, i: usize) -> OpMask {
        let mut m = self.clone();
        m.set(i);
        m
    }

    /// True if every bit of `other` is set in `self`.
    fn covers(&self, other: &OpMask) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a & b == *b)
    }
}

/// Checks a history for linearizability. Returns `Err` with a diagnostic
/// naming the first key whose sub-history admits no valid linearization.
pub fn check_linearizable(history: &[KvEvent]) -> Result<(), String> {
    let mut per_key: BTreeMap<Vec<u8>, Vec<&KvEvent>> = BTreeMap::new();
    for e in history {
        per_key.entry(e.op.key().to_vec()).or_default().push(e);
    }
    for (key, events) in per_key {
        check_key(&key, &events)?;
    }
    Ok(())
}

fn check_key(key: &[u8], events: &[&KvEvent]) -> Result<(), String> {
    // Intern values: 0 is the initial (absent / empty) value.
    let mut values: Vec<Vec<u8>> = vec![Vec::new()];
    let intern = |v: &[u8], values: &mut Vec<Vec<u8>>| -> usize {
        match values.iter().position(|x| x == v) {
            Some(i) => i,
            None => {
                values.push(v.to_vec());
                values.len() - 1
            }
        }
    };
    let regs: Vec<RegEvent> = events
        .iter()
        .map(|e| {
            let op = match &e.op {
                KvHistOp::Get { result, .. } => RegOp::Read {
                    expect: intern(result, &mut values),
                },
                KvHistOp::Put { val, .. } => RegOp::Write {
                    val: intern(val, &mut values),
                },
                KvHistOp::Del { .. } => RegOp::Write { val: 0 },
            };
            RegEvent {
                invoke: e.invoke,
                response: e.response.unwrap_or(u64::MAX),
                completed: e.response.is_some(),
                op,
            }
        })
        .collect();
    let mut completed_mask = OpMask::empty(regs.len());
    let mut completed_count = 0u64;
    for (i, r) in regs.iter().enumerate() {
        if r.completed {
            completed_mask.set(i);
            completed_count += 1;
        }
    }
    // Iterative DFS over (taken-mask, register value) with a failed-state
    // memo. Acceptance: every *completed* op linearized (incomplete ops
    // may be dropped — their effect never became visible).
    let mut failed: HashSet<(OpMask, usize)> = HashSet::new();
    let mut stack: Vec<(OpMask, usize)> = vec![(OpMask::empty(regs.len()), 0)];
    while let Some((taken, val)) = stack.pop() {
        if taken.covers(&completed_mask) {
            return Ok(());
        }
        if !failed.insert((taken.clone(), val)) {
            continue;
        }
        // Minimal-response pruning: the next linearized op must have been
        // invoked before every untaken op's response.
        let min_resp = regs
            .iter()
            .enumerate()
            .filter(|&(i, _)| !taken.get(i))
            .map(|(_, r)| r.response)
            .min()
            .unwrap_or(u64::MAX);
        for (i, r) in regs.iter().enumerate() {
            if taken.get(i) || r.invoke > min_resp {
                continue;
            }
            let next_val = match r.op {
                RegOp::Read { expect } => {
                    if expect != val {
                        continue; // read of a value the register doesn't hold
                    }
                    val
                }
                RegOp::Write { val: w } => w,
            };
            let next = (taken.with(i), next_val);
            if !failed.contains(&next) {
                stack.push(next);
            }
        }
    }
    Err(format!(
        "history for key {:?} is not linearizable ({} ops, {} completed)",
        String::from_utf8_lossy(key),
        regs.len(),
        completed_count,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(client: u32, invoke: u64, response: u64, op: KvHistOp) -> KvEvent {
        KvEvent {
            client,
            invoke,
            response: Some(response),
            op,
        }
    }

    fn put(k: &str, v: &str) -> KvHistOp {
        KvHistOp::Put {
            key: k.into(),
            val: v.into(),
        }
    }

    fn get(k: &str, r: &str) -> KvHistOp {
        KvHistOp::Get {
            key: k.into(),
            result: r.into(),
        }
    }

    #[test]
    fn sequential_history_passes() {
        let h = vec![
            ev(1, 0, 10, put("k", "a")),
            ev(1, 20, 30, get("k", "a")),
            ev(1, 40, 50, KvHistOp::Del { key: "k".into() }),
            ev(1, 60, 70, get("k", "")),
        ];
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn stale_read_after_write_fails() {
        // Write completes at 10; a read starting at 20 returning the old
        // (absent) value is a violation.
        let h = vec![ev(1, 0, 10, put("k", "a")), ev(2, 20, 30, get("k", ""))];
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn concurrent_read_may_see_either_side() {
        // The read overlaps the write: both "a" and "" are valid.
        for seen in ["a", ""] {
            let h = vec![ev(1, 0, 100, put("k", "a")), ev(2, 10, 90, get("k", seen))];
            assert!(check_linearizable(&h).is_ok(), "seen={seen}");
        }
    }

    #[test]
    fn value_from_nowhere_fails() {
        let h = vec![ev(1, 0, 10, put("k", "a")), ev(2, 20, 30, get("k", "z"))];
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn real_time_order_between_reads_enforced() {
        // w(a) then w(b) complete sequentially; a later read pair r(b)
        // then r(a) (non-overlapping) cannot both hold.
        let h = vec![
            ev(1, 0, 10, put("k", "a")),
            ev(1, 20, 30, put("k", "b")),
            ev(2, 40, 50, get("k", "b")),
            ev(2, 60, 70, get("k", "a")),
        ];
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn incomplete_write_may_or_may_not_apply() {
        // The pending write's effect is optional: reads of both the old
        // and the new value are fine, in either order is NOT (the write
        // linearizes at most once).
        let pending = KvEvent {
            client: 1,
            invoke: 0,
            response: None,
            op: put("k", "a"),
        };
        for seen in ["", "a"] {
            let h = vec![pending.clone(), ev(2, 10, 20, get("k", seen))];
            assert!(check_linearizable(&h).is_ok(), "seen={seen}");
        }
        // new-then-old is a violation even with the write pending.
        let h = vec![
            pending.clone(),
            ev(2, 10, 20, get("k", "a")),
            ev(2, 30, 40, get("k", "")),
        ];
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn histories_beyond_128_ops_are_checked_not_aborted() {
        // Zipfian batteries concentrate traffic on one hot key; the
        // checker must keep working (growable taken-masks) rather than
        // hit a fixed-width cap. 200 sequential ops pass...
        let mut h = Vec::new();
        for i in 0..100u64 {
            let v = format!("v{i}");
            h.push(ev(1, 40 * i, 40 * i + 10, put("hot", &v)));
            h.push(ev(2, 40 * i + 20, 40 * i + 30, get("hot", &v)));
        }
        assert!(check_linearizable(&h).is_ok());
        // ...and a stale read planted past op 128 is still caught.
        h.push(ev(2, 40_000, 40_010, get("hot", "v0")));
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn keys_are_independent() {
        let h = vec![
            ev(1, 0, 10, put("a", "1")),
            ev(2, 0, 10, put("b", "2")),
            ev(1, 20, 30, get("b", "2")),
            ev(2, 20, 30, get("a", "1")),
        ];
        assert!(check_linearizable(&h).is_ok());
    }
}
