//! The leased read-region layout: a fixed hash table of version-stamped
//! cells.
//!
//! The region a replica registers for one-sided client READs is a static
//! open-addressing-free hash table: `capacity` cells of [`CELL_SIZE`]
//! bytes behind a [`HEADER_SIZE`]-byte header. A key maps to exactly one
//! cell (`FNV-1a(key) % capacity`); colliding or oversize keys poison
//! their cell so one-sided readers deterministically fall back to the
//! message path for them.
//!
//! ## Cell layout (little-endian)
//!
//! ```text
//! [ ver: u64 | klen: u32 | vlen: u32 | key: 48 B | val: 88 B | ver2: u64 ]
//! ```
//!
//! The duplicated trailing stamp `ver2` is the torn-read detector: a READ
//! racing an in-place update can observe the new leading stamp with old
//! trailing bytes (or vice versa), and the mismatch exposes it. Version
//! stamp semantics:
//!
//! * `ver == 0` — the cell was never written: the key is absent.
//! * odd `ver` — in-progress or poisoned: the reader must fall back.
//! * even `ver > 0`, `klen == 0` — "bucket empty as of `ver/2`" marker
//!   (left by deletions and snapshot restores).
//! * even `ver > 0`, `klen > 0` — a committed key/value pair.
//!
//! Committed stamps are `2·v` where `v` is the service's apply version at
//! the write, so stamps are strictly monotone in apply order and the
//! in-progress marker `2·v + 1` can never collide with a committed stamp.

/// Bytes per cell.
pub const CELL_SIZE: usize = 160;
/// Region header: 8-byte magic plus the capacity as a u64.
pub const HEADER_SIZE: usize = 16;
/// Magic bytes identifying a lease region image.
pub const MAGIC: [u8; 8] = *b"KVLEASE1";
/// Maximum key length representable in a cell.
pub const KEY_MAX: usize = 48;
/// Maximum value length representable in a cell.
pub const VAL_MAX: usize = 88;
/// Default number of cells in a region.
pub const DEFAULT_CAPACITY: usize = 1024;

/// FNV-1a bucket index of `key` in a `capacity`-cell region.
pub fn bucket_of(key: &[u8], capacity: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % capacity as u64) as usize
}

/// Byte offset of bucket `b`'s cell inside the region image.
pub fn cell_offset(b: usize) -> usize {
    HEADER_SIZE + b * CELL_SIZE
}

/// Builds the region header for a `capacity`-cell region.
pub fn encode_header(capacity: usize) -> [u8; HEADER_SIZE] {
    let mut h = [0u8; HEADER_SIZE];
    h[..8].copy_from_slice(&MAGIC);
    h[8..].copy_from_slice(&(capacity as u64).to_le_bytes());
    h
}

/// Parses a region header, returning the capacity.
pub fn decode_header(bytes: &[u8]) -> Option<usize> {
    if bytes.len() < HEADER_SIZE || bytes[..8] != MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize)
}

/// Encodes a committed cell (`stamp` must be even and non-zero; empty
/// `key` encodes the "bucket empty" marker).
///
/// # Panics
///
/// Panics if `stamp` is odd/zero or key/value exceed the cell bounds —
/// callers gate on [`fits`] first.
pub fn encode_cell(stamp: u64, key: &[u8], val: &[u8]) -> [u8; CELL_SIZE] {
    assert!(
        stamp != 0 && stamp.is_multiple_of(2),
        "committed stamps are even > 0"
    );
    assert!(key.len() <= KEY_MAX && val.len() <= VAL_MAX);
    assert!(
        !key.is_empty() || val.is_empty(),
        "marker cells carry no value"
    );
    let mut c = [0u8; CELL_SIZE];
    c[0..8].copy_from_slice(&stamp.to_le_bytes());
    c[8..12].copy_from_slice(&(key.len() as u32).to_le_bytes());
    c[12..16].copy_from_slice(&(val.len() as u32).to_le_bytes());
    c[16..16 + key.len()].copy_from_slice(key);
    c[64..64 + val.len()].copy_from_slice(val);
    c[152..160].copy_from_slice(&stamp.to_le_bytes());
    c
}

/// Encodes a poisoned cell: the odd stamp makes every reader fall back,
/// forever (until the bucket's collision or oversize resident goes away).
pub fn encode_poisoned(stamp_odd: u64) -> [u8; CELL_SIZE] {
    assert!(stamp_odd % 2 == 1, "poison stamps are odd");
    let mut c = [0u8; CELL_SIZE];
    c[0..8].copy_from_slice(&stamp_odd.to_le_bytes());
    c[152..160].copy_from_slice(&stamp_odd.to_le_bytes());
    c
}

/// True if a key/value pair fits a cell.
pub fn fits(key: &[u8], val: &[u8]) -> bool {
    !key.is_empty() && key.len() <= KEY_MAX && val.len() <= VAL_MAX
}

/// The outcome of decoding one cell on the read path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellRead {
    /// Never written: the key is absent (version 0).
    Empty,
    /// Odd or mismatched stamps: in-progress, poisoned, or torn — the
    /// reader must fall back to the message path.
    Invalid,
    /// A committed cell: `key.is_empty()` is the "bucket empty" marker.
    Committed {
        /// The (even) version stamp.
        stamp: u64,
        /// Resident key (empty for the bucket-empty marker).
        key: Vec<u8>,
        /// Resident value.
        val: Vec<u8>,
    },
}

/// Decodes one cell's bytes as read one-sided.
pub fn decode_cell(bytes: &[u8]) -> CellRead {
    if bytes.len() != CELL_SIZE {
        return CellRead::Invalid;
    }
    let ver = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    let ver2 = u64::from_le_bytes(bytes[152..160].try_into().expect("8 bytes"));
    if ver == 0 && ver2 == 0 {
        return CellRead::Empty;
    }
    if ver != ver2 || ver % 2 == 1 {
        return CellRead::Invalid;
    }
    let klen = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let vlen = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    if klen > KEY_MAX || vlen > VAL_MAX || (klen == 0 && vlen != 0) {
        return CellRead::Invalid;
    }
    CellRead::Committed {
        stamp: ver,
        key: bytes[16..16 + klen].to_vec(),
        val: bytes[64..64 + vlen].to_vec(),
    }
}

/// What a decoded cell says about one specific key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyVerdict {
    /// The cell is unusable; fall back.
    Fallback,
    /// The key is absent as of the given stamp.
    Absent(u64),
    /// The key maps to this value as of the given stamp.
    Value(u64, Vec<u8>),
}

/// Interprets a cell read with respect to `key`.
///
/// A committed cell holding a *different* key still decides `key`: the
/// single-owner invariant (colliding live keys poison the cell) means the
/// probed key cannot be live anywhere if another key owns its bucket.
pub fn judge(cell: &CellRead, key: &[u8]) -> KeyVerdict {
    match cell {
        CellRead::Empty => KeyVerdict::Absent(0),
        CellRead::Invalid => KeyVerdict::Fallback,
        CellRead::Committed { stamp, key: k, val } => {
            if k == key {
                KeyVerdict::Value(*stamp, val.clone())
            } else {
                KeyVerdict::Absent(*stamp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = encode_header(512);
        assert_eq!(decode_header(&h), Some(512));
        assert_eq!(decode_header(b"nonsense-header!"), None);
    }

    #[test]
    fn cell_roundtrip() {
        let c = encode_cell(8, b"user1", b"value-bytes");
        match decode_cell(&c) {
            CellRead::Committed { stamp, key, val } => {
                assert_eq!(stamp, 8);
                assert_eq!(key, b"user1");
                assert_eq!(val, b"value-bytes");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_and_marker_cells() {
        assert_eq!(decode_cell(&[0u8; CELL_SIZE]), CellRead::Empty);
        let marker = encode_cell(4, b"", b"");
        match decode_cell(&marker) {
            CellRead::Committed { stamp, key, .. } => {
                assert_eq!(stamp, 4);
                assert!(key.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn torn_and_poisoned_cells_invalid() {
        let mut c = encode_cell(8, b"k", b"v");
        // Torn: leading stamp advanced, trailing stale.
        c[0..8].copy_from_slice(&10u64.to_le_bytes());
        assert_eq!(decode_cell(&c), CellRead::Invalid);
        assert_eq!(decode_cell(&encode_poisoned(9)), CellRead::Invalid);
        // Wrong length.
        assert_eq!(decode_cell(&[0u8; 10]), CellRead::Invalid);
    }

    #[test]
    fn judge_resolves_foreign_keys_as_absent() {
        let c = decode_cell(&encode_cell(6, b"owner", b"v"));
        assert_eq!(judge(&c, b"owner"), KeyVerdict::Value(6, b"v".to_vec()));
        assert_eq!(judge(&c, b"other"), KeyVerdict::Absent(6));
        assert_eq!(judge(&CellRead::Empty, b"x"), KeyVerdict::Absent(0));
        assert_eq!(judge(&CellRead::Invalid, b"x"), KeyVerdict::Fallback);
    }

    #[test]
    fn buckets_are_stable_and_bounded() {
        for cap in [1usize, 7, 1024] {
            for k in 0..100u32 {
                let key = k.to_le_bytes();
                let b = bucket_of(&key, cap);
                assert!(b < cap);
                assert_eq!(b, bucket_of(&key, cap));
            }
        }
    }
}
