//! A deterministic test harness: a replicated KV group plus a fleet of
//! [`KvClient`]s under a YCSB-style closed-loop driver.
//!
//! Mirrors the bench crate's replicated-system builder (same stacks, same
//! host/transport models) but with [`KvStoreService`] replicas, leases
//! armed, and clients that record full operation histories for the
//! linearizability checker.

use std::rc::Rc;

use rdma_verbs::RnicModel;
use reptor::{
    Client, NioTransport, Replica, ReptorConfig, RubinTransport, SimTransport, Transport,
    DOMAIN_SECRET,
};
use rubin::RubinConfig;
use simnet::{CoreId, HostId, Network, Simulator, TestBed};
use simnet_socket::TcpModel;

use crate::client::KvClient;
use crate::lin::{check_linearizable, KvEvent, KvHistOp};
use crate::service::KvStoreService;
use crate::workload::{ClientWorkload, YcsbSpec};

/// Which comm stack the group runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stack {
    /// Direct fabric delivery; no one-sided read path (message-path
    /// reads only — the fallback baseline).
    Direct,
    /// Java-NIO-style TCP stack; also message-path only.
    Nio,
    /// RUBIN RDMA stack: one-sided reads available.
    Rubin,
}

impl Stack {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Stack::Direct => "Direct",
            Stack::Nio => "TCP (NIO)",
            Stack::Rubin => "RDMA (Rubin)",
        }
    }
}

/// The default replica-group configuration for KV runs: the standard
/// 4-replica small() group with read leases armed.
pub fn kv_config() -> ReptorConfig {
    ReptorConfig {
        read_leases: true,
        ..ReptorConfig::small()
    }
}

/// A replicated KV group with history-recording clients.
pub struct KvHarness {
    /// The discrete-event simulator.
    pub sim: Simulator,
    /// The simulated network.
    pub net: Network,
    /// The replica group.
    pub replicas: Vec<Replica>,
    /// The KV clients (node ids `n ..`).
    pub clients: Vec<KvClient>,
}

impl KvHarness {
    /// Builds a group of `cfg.n` replicas and `num_clients` KV clients on
    /// `stack`, each replica running a [`KvStoreService`] with `capacity`
    /// region cells.
    pub fn build(
        stack: Stack,
        seed: u64,
        num_clients: usize,
        cfg: ReptorConfig,
        capacity: usize,
    ) -> KvHarness {
        let n = cfg.n;
        let (mut sim, net, hosts) = TestBed::cluster(seed, n + num_clients);
        let nodes: Vec<(u32, HostId, CoreId)> = hosts
            .iter()
            .enumerate()
            .map(|(i, &h)| (i as u32, h, CoreId(0)))
            .collect();

        let transports: Vec<Rc<dyn Transport>> = match stack {
            Stack::Direct => {
                let pairs: Vec<(u32, HostId)> = nodes.iter().map(|&(n, h, _)| (n, h)).collect();
                SimTransport::build_group(&net, &pairs)
                    .into_iter()
                    .map(|t| Rc::new(t) as Rc<dyn Transport>)
                    .collect()
            }
            Stack::Nio => {
                let ts = NioTransport::build_group(&mut sim, &net, &nodes, TcpModel::linux_xeon());
                sim.run_until_idle();
                ts.into_iter()
                    .map(|t| Rc::new(t) as Rc<dyn Transport>)
                    .collect()
            }
            Stack::Rubin => {
                let ts = RubinTransport::build_group(
                    &mut sim,
                    &net,
                    &nodes,
                    RnicModel::mt27520(),
                    RubinConfig::paper(),
                );
                sim.run_until_idle();
                ts.into_iter()
                    .map(|t| Rc::new(t) as Rc<dyn Transport>)
                    .collect()
            }
        };

        let replicas: Vec<Replica> = (0..n)
            .map(|i| {
                Replica::new(
                    i as u32,
                    cfg.clone(),
                    DOMAIN_SECRET,
                    transports[i].clone(),
                    &net,
                    hosts[i],
                    Box::new(KvStoreService::new(capacity)),
                )
            })
            .collect();

        let clients: Vec<KvClient> = (0..num_clients)
            .map(|i| {
                let id = (n + i) as u32;
                let client = Client::new(id, cfg.clone(), DOMAIN_SECRET, transports[n + i].clone());
                KvClient::new(client, &cfg, transports[n + i].clone(), net.metrics())
            })
            .collect();

        KvHarness {
            sim,
            net,
            replicas,
            clients,
        }
    }

    /// The run's full cross-layer metrics snapshot.
    pub fn metrics_snapshot(&self) -> simnet::MetricsSnapshot {
        self.net.publish_sim_gauges(&self.sim);
        self.net.metrics().snapshot()
    }

    /// Drives every client through `ops_per_client` operations of `spec`
    /// in a closed loop (one op in flight per client), then drains.
    /// Returns false if the run exceeds `max_events` simulator events or
    /// the simulator goes idle with operations still outstanding.
    pub fn run_ycsb(
        &mut self,
        spec: &YcsbSpec,
        run_seed: u64,
        ops_per_client: u64,
        max_events: u64,
    ) -> bool {
        let mut wls: Vec<ClientWorkload> = self
            .clients
            .iter()
            .map(|c| ClientWorkload::new(c.id(), spec.clone(), run_seed))
            .collect();
        for c in &self.clients {
            c.query_leases(&mut self.sim);
        }
        let mut events = 0u64;
        loop {
            let mut all_issued = true;
            for (i, c) in self.clients.iter().enumerate() {
                if wls[i].issued() >= ops_per_client {
                    continue;
                }
                all_issued = false;
                if c.busy() {
                    continue;
                }
                match wls[i].next_op() {
                    KvHistOp::Get { key, .. } => c.get(&mut self.sim, key),
                    KvHistOp::Put { key, val } => c.put(&mut self.sim, key, val),
                    KvHistOp::Del { key } => c.del(&mut self.sim, key),
                }
            }
            if all_issued && self.clients.iter().all(|c| !c.busy()) {
                return true;
            }
            let mut stepped = false;
            for _ in 0..256 {
                if !self.sim.step() {
                    break;
                }
                stepped = true;
                events += 1;
                // Re-sweep as soon as any client with work left goes
                // idle — a one-sided read completes in a handful of
                // events, and letting the queue drain past it would jump
                // the clock to the next (stale) retransmission timer —
                // and stop stepping the moment the whole run is done,
                // for the same reason: the trailing timers would inflate
                // the run's measured duration.
                let ready = self
                    .clients
                    .iter()
                    .enumerate()
                    .any(|(i, c)| wls[i].issued() < ops_per_client && !c.busy());
                let done = self.clients.iter().all(|c| !c.busy());
                if ready || done {
                    break;
                }
            }
            if !stepped {
                // Idle with work outstanding: the run is wedged.
                return false;
            }
            if events >= max_events {
                return false;
            }
        }
    }

    /// The merged operation history across all clients.
    pub fn history(&self) -> Vec<KvEvent> {
        let mut h: Vec<KvEvent> = self.clients.iter().flat_map(|c| c.history()).collect();
        h.sort_by_key(|e| (e.invoke, e.response, e.client));
        h
    }

    /// Checks the recorded history for linearizability.
    pub fn check_history(&self) -> Result<(), String> {
        check_linearizable(&self.history())
    }

    /// Sum of a per-node counter across the whole run (suffix-matched,
    /// i.e. both replica- and client-side counters).
    pub fn total(&self, metric: &str) -> u64 {
        self.net.metrics().total(metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_stack_ycsb_is_linearizable() {
        let mut h = KvHarness::build(Stack::Direct, 7, 3, kv_config(), 64);
        assert!(h.run_ycsb(&YcsbSpec::a(16), 7, 20, 4_000_000));
        h.check_history().expect("linearizable");
        // No one-sided path on the direct stack: every read fell back.
        assert!(h.total("kv_read_fallback") > 0);
        assert_eq!(h.total("kv_read_onesided"), 0);
    }

    #[test]
    fn rubin_stack_serves_onesided_reads() {
        let mut h = KvHarness::build(Stack::Rubin, 11, 2, kv_config(), 64);
        assert!(h.run_ycsb(&YcsbSpec::b(8), 11, 30, 8_000_000));
        h.check_history().expect("linearizable");
        assert!(
            h.total("kv_read_onesided") > 0,
            "one-sided reads never engaged: fallback={} onesided={}",
            h.total("kv_read_fallback"),
            h.total("kv_read_onesided"),
        );
    }
}
