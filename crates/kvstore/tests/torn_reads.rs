//! Satellite property: no interleaving of region writes and
//! torn-version-stamp reads can leak a value outside the written history.
//!
//! The two-phase region update (odd begin stamp, then the full committed
//! cell) means a one-sided READ racing a write observes one of three
//! things: the old committed cell, the new committed cell, or a torn
//! intermediate whose stamps disagree (or are odd). The first proptest
//! replays every published [`RegionWrite`] byte-prefix by byte-prefix and
//! asserts the judge never *invents* a value — every `Value` verdict is a
//! value some `Put` actually wrote, and every intermediate state judges
//! `Fallback`. The second runs the full simulated stack with a
//! collision-heavy region so poisoned cells force the message path, and
//! asserts the fallback is actually taken (`kv_read_fallback`) while the
//! recorded history stays linearizable.

use std::collections::{BTreeMap, BTreeSet};

use kvstore::{
    bucket_of, cell_offset, decode_cell, judge, kv_config, KeyVerdict, KvHarness, KvStoreService,
    Stack, YcsbSpec, CELL_SIZE,
};
use proptest::prelude::*;
use reptor::{KvOp, Request, StateMachine};

const CAPACITY: usize = 8;

fn req(payload: Vec<u8>) -> Request {
    Request {
        client: 9,
        timestamp: 1,
        payload,
    }
}

/// Judges every key of the key space against `image`, asserting no verdict
/// carries a value that was never written to that key.
fn assert_no_leaked_values(
    image: &[u8],
    keys: &[Vec<u8>],
    written: &BTreeMap<Vec<u8>, BTreeSet<Vec<u8>>>,
    expect_torn_bucket: Option<usize>,
) -> Result<(), TestCaseError> {
    for key in keys {
        let b = bucket_of(key, CAPACITY);
        let off = cell_offset(b);
        let cell = decode_cell(&image[off..off + CELL_SIZE]);
        let verdict = judge(&cell, key);
        if Some(b) == expect_torn_bucket {
            prop_assert_eq!(
                verdict,
                KeyVerdict::Fallback,
                "mid-write cell must judge Fallback"
            );
            continue;
        }
        if let KeyVerdict::Value(_, val) = verdict {
            let history = written.get(key);
            prop_assert!(
                history.is_some_and(|h| h.contains(&val)),
                "key {:?} returned value {:?} outside its write history",
                String::from_utf8_lossy(key),
                String::from_utf8_lossy(&val),
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Region-level: replay each two-phase write prefix-by-prefix; every
    /// torn intermediate judges `Fallback` and no state ever yields an
    /// unwritten value.
    #[test]
    fn torn_interleavings_never_leak_unwritten_values(
        ops in proptest::collection::vec((0u8..3, 0u64..5, 0u64..60), 1..30),
        cut in 9usize..CELL_SIZE,
    ) {
        let keys: Vec<Vec<u8>> = (0..5u64).map(|k| format!("key{k}").into_bytes()).collect();
        let mut svc = KvStoreService::new(CAPACITY);
        let mut written: BTreeMap<Vec<u8>, BTreeSet<Vec<u8>>> = BTreeMap::new();
        let mut image = svc.read_region_image().expect("service exposes a region");
        for (op, k, v) in ops {
            let key = keys[k as usize].clone();
            match op {
                0 => {
                    let val = format!("val-{v}").into_bytes();
                    written.entry(key.clone()).or_default().insert(val.clone());
                    svc.apply(&req(KvOp::Put(key, val).encode()));
                }
                1 => {
                    svc.apply(&req(KvOp::Del(key).encode()));
                }
                _ => {
                    svc.apply(&req(KvOp::Get(key).encode()));
                }
            }
            for w in svc.drain_region_writes() {
                let off = w.offset as usize;
                let bucket = (off - kvstore::HEADER_SIZE) / CELL_SIZE;
                // Phase 1: the begin marker lands (odd leading stamp).
                image[off..off + w.begin.len()].copy_from_slice(&w.begin);
                assert_no_leaked_values(&image, &keys, &written, Some(bucket))?;
                // A READ racing phase 2 sees an arbitrary prefix of the
                // committed cell over the begin-marked one. While any
                // differing byte of the trailing stamp remains old the
                // mismatch is guaranteed and the judge must say Fallback;
                // once the prefix covers the stamp's differing bytes the
                // observed cell may be byte-identical to the committed
                // one, which is a *correct* (not leaked) read.
                image[off..off + cut].copy_from_slice(&w.commit[..cut]);
                let torn = if cut < CELL_SIZE - 8 { Some(bucket) } else { None };
                assert_no_leaked_values(&image, &keys, &written, torn)?;
                // Phase 2 complete.
                image[off..off + CELL_SIZE].copy_from_slice(&w.commit);
                assert_no_leaked_values(&image, &keys, &written, None)?;
            }
        }
        // The service's own image agrees with the replayed one.
        prop_assert_eq!(image, svc.read_region_image().expect("region"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Stack-level: a collision-heavy region (2 cells, 6 keys) poisons
    /// almost every bucket, so one-sided reads must engage the message
    /// path — counted by `kv_read_fallback` — and the history stays
    /// linearizable throughout.
    #[test]
    fn poisoned_cells_always_engage_the_fallback(seed in 1u64..500) {
        let mut h = KvHarness::build(Stack::Rubin, seed, 2, kv_config(), 2);
        prop_assert!(
            h.run_ycsb(&YcsbSpec::uniform(0.6, 6), seed, 12, 8_000_000),
            "run wedged (seed {seed})"
        );
        let lin = h.check_history();
        prop_assert!(lin.is_ok(), "{:?}", lin);
        prop_assert!(
            h.total("kv_read_fallback") >= 1,
            "collision-heavy run never fell back (seed {seed})"
        );
    }
}
