//! # simnet-socket — simulated kernel TCP + Java-NIO-style selector
//!
//! The TCP baseline of the paper's evaluation: non-blocking stream sockets
//! over the [`simnet`] fabric, with the kernel cost structure RDMA is
//! designed to avoid — two intermediate copies per message, kernel
//! crossings, per-segment protocol processing and receive interrupts
//! (paper §I, §II-A) — plus the epoll-backed [`Selector`] that Java NIO
//! builds on and that RUBIN re-creates for RDMA (paper §III).
//!
//! # Example: echo a message over simulated TCP
//!
//! ```
//! use simnet::{CoreId, TestBed};
//! use simnet_socket::{ReadOutcome, TcpListener, TcpModel, TcpStream};
//!
//! let mut tb = TestBed::paper_testbed(7);
//! let listener = TcpListener::bind(&tb.net, tb.b, 80, CoreId(0), TcpModel::linux_xeon())?;
//! let client = TcpStream::connect(
//!     &mut tb.sim, &tb.net, tb.a, CoreId(0), TcpModel::linux_xeon(),
//!     listener.local_addr(),
//! );
//! tb.sim.run_until_idle();
//! let server = listener.accept(&mut tb.sim).expect("connection pending");
//!
//! client.write(&mut tb.sim, b"hello")?;
//! tb.sim.run_until_idle();
//! match server.read(&mut tb.sim, 64)? {
//!     ReadOutcome::Data(d) => assert_eq!(d, b"hello"),
//!     other => panic!("unexpected: {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod model;
mod selector;
mod stream;

pub use model::TcpModel;
pub use selector::{KeyId, Ops, Selected, Selector};
pub use stream::{ReadOutcome, SockError, TcpListener, TcpStats, TcpStream};

/// Default cost of one Java NIO `select()` call in nanoseconds (epoll-backed
/// and highly optimized; compare with the RUBIN selector's higher cost,
/// paper §IV).
pub const NIO_SELECT_NS: u64 = 1_100;

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{CoreId, Nanos, TestBed};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct World {
        tb: TestBed,
        client: TcpStream,
        server: TcpStream,
    }

    fn connected() -> World {
        let mut tb = TestBed::paper_testbed(11);
        let listener =
            TcpListener::bind(&tb.net, tb.b, 80, CoreId(0), TcpModel::linux_xeon()).unwrap();
        let client = TcpStream::connect(
            &mut tb.sim,
            &tb.net,
            tb.a,
            CoreId(0),
            TcpModel::linux_xeon(),
            listener.local_addr(),
        );
        tb.sim.run_until_idle();
        let server = listener.accept(&mut tb.sim).expect("pending connection");
        assert!(client.is_established());
        assert!(server.is_established());
        World { tb, client, server }
    }

    fn read_all(w: &mut World, stream: &TcpStream, want: usize) -> Vec<u8> {
        let mut out = Vec::new();
        let mut guard = 0;
        while out.len() < want {
            w.tb.sim.run_until_idle();
            match stream.read(&mut w.tb.sim, want - out.len()).unwrap() {
                ReadOutcome::Data(d) => out.extend(d),
                ReadOutcome::WouldBlock => {
                    w.tb.sim.run_until_idle();
                    guard += 1;
                    assert!(guard < 10_000, "no progress reading");
                }
                ReadOutcome::Eof => break,
            }
        }
        out
    }

    fn write_all(w: &mut World, stream: &TcpStream, data: &[u8]) {
        let mut off = 0;
        let mut guard = 0;
        while off < data.len() {
            let n = stream.write(&mut w.tb.sim, &data[off..]).unwrap();
            off += n;
            if n == 0 {
                w.tb.sim.run_until_idle();
                guard += 1;
                assert!(guard < 10_000, "no progress writing");
            }
        }
    }

    #[test]
    fn small_message_roundtrip() {
        let mut w = connected();
        w.client.write(&mut w.tb.sim, b"ping").unwrap();
        w.tb.sim.run_until_idle();
        let srv = w.server.clone();
        let got = read_all(&mut w, &srv, 4);
        assert_eq!(got, b"ping");
        // Echo back.
        w.server.write(&mut w.tb.sim, b"pong").unwrap();
        w.tb.sim.run_until_idle();
        let cli = w.client.clone();
        let got = read_all(&mut w, &cli, 4);
        assert_eq!(got, b"pong");
    }

    #[test]
    fn message_larger_than_socket_buffers_flows_with_backpressure() {
        let mut w = connected();
        let model = TcpModel::linux_xeon();
        let payload: Vec<u8> = (0..200 * 1024u32).map(|i| (i % 241) as u8).collect();
        assert!(payload.len() > model.send_buf + model.recv_buf);

        // Writer cannot push everything at once: the first write fills the
        // send buffer and an immediate second write is refused.
        let first = w.client.write(&mut w.tb.sim, &payload).unwrap();
        assert!(first <= model.send_buf);
        assert_eq!(w.client.write(&mut w.tb.sim, &payload[first..]).unwrap(), 0);

        // Interleave writes and reads until the whole payload arrives.
        let client = w.client.clone();
        let server = w.server.clone();
        let mut sent = first;
        let mut received = Vec::new();
        let mut guard = 0;
        while received.len() < payload.len() {
            w.tb.sim.run_until_idle();
            if sent < payload.len() {
                sent += client.write(&mut w.tb.sim, &payload[sent..]).unwrap();
            }
            if let ReadOutcome::Data(d) = server.read(&mut w.tb.sim, 1 << 20).unwrap() {
                received.extend(d);
            }
            guard += 1;
            assert!(guard < 100_000, "transfer stalled");
        }
        assert_eq!(received, payload);
        assert!(client.stats().write_stalls > 0, "backpressure must occur");
    }

    #[test]
    fn write_before_connect_fails() {
        let mut tb = TestBed::paper_testbed(0);
        let listener =
            TcpListener::bind(&tb.net, tb.b, 81, CoreId(0), TcpModel::linux_xeon()).unwrap();
        let client = TcpStream::connect(
            &mut tb.sim,
            &tb.net,
            tb.a,
            CoreId(0),
            TcpModel::linux_xeon(),
            listener.local_addr(),
        );
        assert_eq!(
            client.write(&mut tb.sim, b"x").unwrap_err(),
            SockError::NotConnected
        );
    }

    #[test]
    fn double_bind_rejected() {
        let tb = TestBed::paper_testbed(0);
        let _l1 = TcpListener::bind(&tb.net, tb.b, 82, CoreId(0), TcpModel::linux_xeon()).unwrap();
        assert_eq!(
            TcpListener::bind(&tb.net, tb.b, 82, CoreId(0), TcpModel::linux_xeon()).unwrap_err(),
            SockError::AddrInUse
        );
    }

    #[test]
    fn close_delivers_eof() {
        let mut w = connected();
        w.client.write(&mut w.tb.sim, b"bye").unwrap();
        w.tb.sim.run_until_idle();
        w.client.close(&mut w.tb.sim);
        w.tb.sim.run_until_idle();
        // Buffered data still readable, then EOF.
        let got = w.server.read(&mut w.tb.sim, 16).unwrap();
        assert_eq!(got, ReadOutcome::Data(b"bye".to_vec()));
        w.tb.sim.run_until_idle();
        assert_eq!(w.server.read(&mut w.tb.sim, 16).unwrap(), ReadOutcome::Eof);
        // Writing to a closed stream errors.
        assert_eq!(
            w.client.write(&mut w.tb.sim, b"x").unwrap_err(),
            SockError::Closed
        );
    }

    #[test]
    fn selector_drives_accept_and_read() {
        let mut tb = TestBed::paper_testbed(3);
        let model = TcpModel::linux_xeon();
        let listener = TcpListener::bind(&tb.net, tb.b, 90, CoreId(0), model.clone()).unwrap();
        let selector = Selector::new(&tb.net, tb.b, CoreId(0), NIO_SELECT_NS);
        let lkey = listener.register(&mut tb.sim, &selector);

        let client = TcpStream::connect(
            &mut tb.sim,
            &tb.net,
            tb.a,
            CoreId(0),
            model.clone(),
            listener.local_addr(),
        );
        // Selector wakes for the inbound connection.
        let accepted: Rc<RefCell<Option<TcpStream>>> = Rc::new(RefCell::new(None));
        let acc = accepted.clone();
        let l2 = listener.clone();
        selector.select(&mut tb.sim, move |sim, ready| {
            assert_eq!(ready[0].key, lkey);
            assert!(ready[0].ready.contains(Ops::ACCEPT));
            *acc.borrow_mut() = l2.accept(sim);
        });
        tb.sim.run_until_idle();
        let server = accepted.borrow_mut().take().expect("accepted");

        // Register server for READ; selector wakes when data arrives.
        let skey = server.register(&mut tb.sim, &selector, Ops::READ);
        let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(vec![]));
        let g = got.clone();
        let srv = server.clone();
        selector.select(&mut tb.sim, move |sim, ready| {
            assert_eq!(ready[0].key, skey);
            if let ReadOutcome::Data(d) = srv.read(sim, 64).unwrap() {
                *g.borrow_mut() = d;
            }
        });
        client.write(&mut tb.sim, b"selected!").unwrap();
        tb.sim.run_until_idle();
        assert_eq!(&*got.borrow(), b"selected!");
        assert!(selector.selects_performed() >= 2);
    }

    #[test]
    fn connect_readiness_fires_once() {
        let mut tb = TestBed::paper_testbed(3);
        let model = TcpModel::linux_xeon();
        let listener = TcpListener::bind(&tb.net, tb.b, 91, CoreId(0), model.clone()).unwrap();
        let selector = Selector::new(&tb.net, tb.a, CoreId(0), NIO_SELECT_NS);
        let client = TcpStream::connect(
            &mut tb.sim,
            &tb.net,
            tb.a,
            CoreId(0),
            model,
            listener.local_addr(),
        );
        let key = client.register(&mut tb.sim, &selector, Ops::CONNECT);
        tb.sim.run_until_idle();
        let ready = selector.select_now(&mut tb.sim);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].key, key);
        assert!(client.finish_connect(&mut tb.sim));
        // After finish_connect the CONNECT readiness is consumed.
        let ready = selector.select_now(&mut tb.sim);
        assert!(ready.is_empty() || !ready[0].ready.contains(Ops::CONNECT));
    }

    #[test]
    fn closed_listener_refuses_new_connections() {
        let mut tb = TestBed::paper_testbed(4);
        let model = TcpModel::linux_xeon();
        let listener = TcpListener::bind(&tb.net, tb.b, 95, CoreId(0), model.clone()).unwrap();
        let addr = listener.local_addr();
        listener.close();
        // A connection attempt after close never establishes.
        let client = TcpStream::connect(&mut tb.sim, &tb.net, tb.a, CoreId(0), model.clone(), addr);
        tb.sim.run_until_idle();
        assert!(!client.is_established());
        // The port can be re-bound afterwards.
        let again = TcpListener::bind(&tb.net, tb.b, 95, CoreId(0), model);
        assert!(again.is_ok());
    }

    #[test]
    fn selector_write_interest_fires_when_buffer_frees() {
        let mut tb = TestBed::paper_testbed(6);
        let model = TcpModel::linux_xeon();
        let listener = TcpListener::bind(&tb.net, tb.b, 96, CoreId(0), model.clone()).unwrap();
        let client = TcpStream::connect(
            &mut tb.sim,
            &tb.net,
            tb.a,
            CoreId(0),
            model.clone(),
            listener.local_addr(),
        );
        tb.sim.run_until_idle();
        let server = listener.accept(&mut tb.sim).unwrap();
        // Fill the client's send buffer completely.
        let payload = vec![0u8; model.send_buf];
        assert_eq!(client.write(&mut tb.sim, &payload).unwrap(), model.send_buf);
        assert_eq!(client.write(&mut tb.sim, &payload).unwrap(), 0, "full");
        // Register WRITE interest; it must fire once the server drains.
        let selector = Selector::new(&tb.net, tb.a, CoreId(0), NIO_SELECT_NS);
        let key = client.register(&mut tb.sim, &selector, Ops::WRITE);
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        selector.select(&mut tb.sim, move |_s, ready| {
            assert!(ready
                .iter()
                .any(|r| r.key == key && r.ready.contains(Ops::WRITE)));
            *f.borrow_mut() = true;
        });
        // Drain on the server side to open the window.
        let mut drained = 0;
        let mut guard = 0;
        while drained < model.send_buf {
            tb.sim.run_until_idle();
            if let ReadOutcome::Data(d) = server.read(&mut tb.sim, 1 << 20).unwrap() {
                drained += d.len();
            }
            guard += 1;
            assert!(guard < 10_000);
        }
        tb.sim.run_until_idle();
        assert!(*fired.borrow(), "WRITE readiness must fire after drain");
    }

    #[test]
    fn latency_grows_with_payload() {
        let echo_latency = |size: usize| -> Nanos {
            let mut w = connected();
            let payload = vec![0xA5u8; size];
            let start = w.tb.sim.now();
            let (cli, srv) = (w.client.clone(), w.server.clone());
            write_all(&mut w, &cli, &payload);
            let got = read_all(&mut w, &srv, size);
            assert_eq!(got.len(), size);
            w.tb.sim.now() - start
        };
        let small = echo_latency(1024);
        let large = echo_latency(100 * 1024);
        assert!(
            large > small * 5,
            "100KB ({large}) must cost far more than 1KB ({small})"
        );
    }

    #[test]
    fn stats_track_segments_and_bytes() {
        let mut w = connected();
        let payload = vec![1u8; 4000];
        let (cli, srv) = (w.client.clone(), w.server.clone());
        write_all(&mut w, &cli, &payload);
        w.tb.sim.run_until_idle();
        let got = read_all(&mut w, &srv, 4000);
        assert_eq!(got.len(), 4000);
        let cs = w.client.stats();
        let ss = w.server.stats();
        assert_eq!(cs.bytes_written, 4000);
        assert_eq!(ss.bytes_read, 4000);
        let model = TcpModel::linux_xeon();
        assert_eq!(cs.segments_tx as usize, model.segments(4000));
        assert_eq!(ss.segments_rx, cs.segments_tx);
    }

    #[test]
    fn lossy_link_stream_still_delivers_in_order() {
        let mut w = connected();
        // 20% loss in both directions: data, acks and credit updates all
        // take hits; retransmission must still get every byte across.
        let (a, b) = (w.tb.a, w.tb.b);
        w.tb.net.with_faults(|f| {
            f.set_loss(a, b, 0.2);
            f.set_loss(b, a, 0.2);
        });
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
        let (cli, srv) = (w.client.clone(), w.server.clone());
        write_all(&mut w, &cli, &payload);
        let got = read_all(&mut w, &srv, payload.len());
        assert_eq!(got, payload, "bytes survive loss, in order");
        assert!(
            w.client.stats().retransmits > 0,
            "loss must have forced retransmissions"
        );
    }

    #[test]
    fn blackholed_stream_breaks_with_eof_after_retry_budget() {
        let mut w = connected();
        let (a, b) = (w.tb.a, w.tb.b);
        // Total blackhole of the data direction: no ack ever returns.
        w.tb.net.with_faults(|f| f.set_loss(a, b, 1.0));
        let cli = w.client.clone();
        cli.write(&mut w.tb.sim, &[7u8; 100]).unwrap();
        w.tb.sim.run_until_idle();
        let model = TcpModel::linux_xeon();
        assert_eq!(w.client.stats().retransmits as u32, model.max_retransmits);
        match cli.read(&mut w.tb.sim, 10).unwrap() {
            ReadOutcome::Eof => {}
            other => panic!("broken stream must read EOF, got {other:?}"),
        }
    }

    #[test]
    fn lost_syn_is_retransmitted_until_connected() {
        let mut tb = TestBed::paper_testbed(7);
        let listener =
            TcpListener::bind(&tb.net, tb.b, 80, CoreId(0), TcpModel::linux_xeon()).unwrap();
        // Lose the first two handshake frames (SYN, then its retry).
        let (a, b) = (tb.a, tb.b);
        tb.net.with_faults(|f| f.set_loss(a, b, 1.0));
        let net = tb.net.clone();
        tb.sim.schedule_at(
            Nanos::from_micros(1_200),
            Box::new(move |_| net.with_faults(|f| f.set_loss(a, b, 0.0))),
        );
        let client = TcpStream::connect(
            &mut tb.sim,
            &tb.net,
            tb.a,
            CoreId(0),
            TcpModel::linux_xeon(),
            listener.local_addr(),
        );
        tb.sim.run_until_idle();
        assert!(client.is_established());
        assert!(client.stats().retransmits >= 1);
        let server = listener.accept(&mut tb.sim).expect("pending connection");
        assert!(
            listener.accept(&mut tb.sim).is_none(),
            "SYN dedup: one accept"
        );
        assert!(server.is_established());
        // The repaired connection still moves data.
        client.write(&mut tb.sim, b"hello").unwrap();
        tb.sim.run_until_idle();
        match server.read(&mut tb.sim, 16).unwrap() {
            ReadOutcome::Data(d) => assert_eq!(d, b"hello"),
            other => panic!("expected data, got {other:?}"),
        }
    }
}
