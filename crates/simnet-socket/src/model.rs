//! TCP stack cost model.

use simnet::Nanos;

/// Timing and capacity model of the simulated kernel TCP stack.
///
/// The constants capture why TCP loses to RDMA in the paper: every message
/// crosses the kernel twice ([`syscall`](simnet::CpuModel::syscall_ns)),
/// is copied twice (user→socket buffer on the sender, socket buffer→user on
/// the receiver, charged via [`CpuModel::copy_cost`](simnet::CpuModel)),
/// and pays per-segment protocol processing plus an interrupt on receive
/// (Frey & Alonso's "hidden costs" \[6\], Binkert et al. \[13\]).
#[derive(Debug, Clone, PartialEq)]
pub struct TcpModel {
    /// Maximum segment size (payload bytes per segment).
    pub mss: usize,
    /// Send socket-buffer capacity in bytes.
    pub send_buf: usize,
    /// Receive socket-buffer capacity in bytes.
    pub recv_buf: usize,
    /// Kernel transmit-path processing per segment (header build, checksum,
    /// qdisc, driver).
    pub segment_tx_ns: u64,
    /// Kernel receive-path processing per segment (after the interrupt).
    pub segment_rx_ns: u64,
    /// Wire size of a bare ACK.
    pub ack_bytes: usize,
    /// Extra wire bytes per data segment (TCP header; IP/Ethernet framing is
    /// charged by the link model).
    pub header_bytes: usize,
    /// One-shot connection establishment cost per side.
    pub connect_ns: u64,
    /// Retransmission timeout: how long the oldest unacknowledged segment
    /// (or an unanswered SYN) may stay outstanding before it is re-sent.
    /// Real kernels adapt this from RTT estimates; the simulated link RTT
    /// is fixed, so a constant well above it models the same behaviour.
    pub rto: Nanos,
    /// Consecutive RTO expiries without any acknowledged progress before
    /// the stream is declared broken (surfaces as EOF to the application,
    /// like a kernel `ETIMEDOUT`).
    pub max_retransmits: u32,
}

impl TcpModel {
    /// Linux-on-Xeon-v2 defaults matching the paper's testbed software.
    pub fn linux_xeon() -> TcpModel {
        TcpModel {
            mss: 1448,
            send_buf: 64 * 1024,
            recv_buf: 64 * 1024,
            segment_tx_ns: 1_600,
            segment_rx_ns: 1_400,
            ack_bytes: 40,
            header_bytes: 20,
            connect_ns: 30_000,
            // Linux's RTO floor is 200 ms; that dwarfs every simulated
            // scenario, so model a datacenter-tuned stack instead: an RTO
            // a few times the ~10 µs link RTT plus kernel processing.
            rto: Nanos::from_micros(500),
            max_retransmits: 8,
        }
    }

    /// Number of segments needed for `bytes` of payload.
    pub fn segments(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.mss).max(1)
    }

    /// Kernel transmit CPU cost for a burst of `bytes`.
    pub fn tx_cost(&self, bytes: usize) -> Nanos {
        Nanos::from_nanos(self.segments(bytes) as u64 * self.segment_tx_ns)
    }

    /// Kernel receive CPU cost for one segment of `bytes`.
    pub fn rx_cost_per_segment(&self) -> Nanos {
        Nanos::from_nanos(self.segment_rx_ns)
    }
}

impl Default for TcpModel {
    fn default() -> TcpModel {
        TcpModel::linux_xeon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_math() {
        let m = TcpModel::linux_xeon();
        assert_eq!(m.segments(0), 1);
        assert_eq!(m.segments(1), 1);
        assert_eq!(m.segments(1448), 1);
        assert_eq!(m.segments(1449), 2);
        assert_eq!(m.segments(100 * 1024), 71);
    }

    #[test]
    fn tx_cost_scales_with_segments() {
        let m = TcpModel::linux_xeon();
        assert_eq!(m.tx_cost(3000).as_nanos(), 3 * m.segment_tx_ns);
    }
}
