//! A Java-NIO-style selector for the simulated TCP stack.
//!
//! This is the baseline RUBIN is measured against in Figure 4: one selector
//! (one thread) multiplexing many non-blocking channels. Channels report
//! readiness transitions to the selector; a parked `select()` continuation
//! is woken when any registered key becomes ready, after charging the
//! select-call cost to the selector's core (the Java NIO selector is backed
//! by epoll and is highly optimized — paper §IV notes RUBIN's select is
//! slower, which the respective cost constants reflect).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{BitOr, BitOrAssign};
use std::rc::Rc;

use simnet::{CoreId, HostId, Nanos, Network, Simulator};

/// Interest/readiness operation flags (Java `SelectionKey` ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ops(u8);

impl Ops {
    /// No operations.
    pub const NONE: Ops = Ops(0);
    /// Channel has bytes to read (or EOF).
    pub const READ: Ops = Ops(1);
    /// Channel can accept more outbound bytes.
    pub const WRITE: Ops = Ops(2);
    /// Listener has pending inbound connections.
    pub const ACCEPT: Ops = Ops(4);
    /// Outbound connection completed.
    pub const CONNECT: Ops = Ops(8);

    /// True if every flag in `other` is set in `self`.
    pub fn contains(self, other: Ops) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any flag is shared with `other`.
    pub fn intersects(self, other: Ops) -> bool {
        self.0 & other.0 != 0
    }

    /// The intersection of the two sets.
    pub fn and(self, other: Ops) -> Ops {
        Ops(self.0 & other.0)
    }

    /// Removes the flags in `other`.
    pub fn without(self, other: Ops) -> Ops {
        Ops(self.0 & !other.0)
    }

    /// True if no flag is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for Ops {
    type Output = Ops;
    fn bitor(self, rhs: Ops) -> Ops {
        Ops(self.0 | rhs.0)
    }
}

impl BitOrAssign for Ops {
    fn bitor_assign(&mut self, rhs: Ops) {
        self.0 |= rhs.0;
    }
}

/// Identifier of a channel registration with a selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub u64);

/// One entry returned by a select call: which key, and which of its
/// interest ops are ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selected {
    /// The registration.
    pub key: KeyId,
    /// Ready ops intersected with the key's interest set.
    pub ready: Ops,
}

struct KeyState {
    interest: Ops,
    ready: Ops,
    cancelled: bool,
}

type SelectCb = Box<dyn FnOnce(&mut Simulator, Vec<Selected>)>;

struct SelInner {
    net: Network,
    host: HostId,
    core: CoreId,
    select_ns: u64,
    keys: BTreeMap<KeyId, KeyState>,
    next_key: u64,
    parked: Option<SelectCb>,
    wake_scheduled: bool,
    selects: u64,
}

/// A readiness selector multiplexing channels on a single simulated thread.
#[derive(Clone)]
pub struct Selector {
    inner: Rc<RefCell<SelInner>>,
}

impl fmt::Debug for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Selector")
            .field("keys", &inner.keys.len())
            .field("parked", &inner.parked.is_some())
            .field("selects", &inner.selects)
            .finish()
    }
}

impl Selector {
    /// Creates a selector whose select calls are charged to `core` of
    /// `host`, costing `select_ns` per call.
    pub fn new(net: &Network, host: HostId, core: CoreId, select_ns: u64) -> Selector {
        Selector {
            inner: Rc::new(RefCell::new(SelInner {
                net: net.clone(),
                host,
                core,
                select_ns,
                keys: BTreeMap::new(),
                next_key: 0,
                parked: None,
                wake_scheduled: false,
                selects: 0,
            })),
        }
    }

    /// Registers a new key with the given interest set. Channels call this
    /// and then report readiness transitions via [`Selector::set_ready`].
    pub fn register(&self, interest: Ops) -> KeyId {
        let mut inner = self.inner.borrow_mut();
        let key = KeyId(inner.next_key);
        inner.next_key += 1;
        inner.keys.insert(
            key,
            KeyState {
                interest,
                ready: Ops::NONE,
                cancelled: false,
            },
        );
        key
    }

    /// Replaces a key's interest set.
    ///
    /// # Panics
    ///
    /// Panics if the key is unknown.
    pub fn set_interest(&self, sim: &mut Simulator, key: KeyId, interest: Ops) {
        {
            let mut inner = self.inner.borrow_mut();
            let ks = inner.keys.get_mut(&key).expect("unknown selection key");
            ks.interest = interest;
        }
        self.maybe_wake(sim);
    }

    /// A key's current interest set.
    ///
    /// # Panics
    ///
    /// Panics if the key is unknown.
    pub fn interest(&self, key: KeyId) -> Ops {
        self.inner.borrow().keys[&key].interest
    }

    /// Cancels a registration; the key never fires again.
    pub fn cancel(&self, key: KeyId) {
        if let Some(ks) = self.inner.borrow_mut().keys.get_mut(&key) {
            ks.cancelled = true;
            ks.interest = Ops::NONE;
        }
    }

    /// Channel-side: sets or clears readiness `op` for `key`, waking a
    /// parked select if the key becomes interesting.
    pub fn set_ready(&self, sim: &mut Simulator, key: KeyId, op: Ops, on: bool) {
        {
            let mut inner = self.inner.borrow_mut();
            let Some(ks) = inner.keys.get_mut(&key) else {
                return;
            };
            if ks.cancelled {
                return;
            }
            if on {
                ks.ready |= op;
            } else {
                ks.ready = ks.ready.without(op);
            }
        }
        if on {
            self.maybe_wake(sim);
        }
    }

    /// Non-blocking select: charges one select call and returns the ready
    /// keys (possibly empty).
    pub fn select_now(&self, sim: &mut Simulator) -> Vec<Selected> {
        {
            let mut inner = self.inner.borrow_mut();
            inner.selects += 1;
            let (host, core, ns) = (inner.host, inner.core, inner.select_ns);
            let net = inner.net.clone();
            drop(inner);
            net.host(host)
                .borrow_mut()
                .exec(sim.now(), core, Nanos::from_nanos(ns));
        }
        self.collect_ready()
    }

    /// Blocking select: `f` runs (after one select-call cost) as soon as at
    /// least one registered key is ready — immediately if one already is.
    ///
    /// # Panics
    ///
    /// Panics if a select is already parked (the selector models a single
    /// thread).
    pub fn select(
        &self,
        sim: &mut Simulator,
        f: impl FnOnce(&mut Simulator, Vec<Selected>) + 'static,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            assert!(
                inner.parked.is_none(),
                "selector already has a parked select call"
            );
            inner.parked = Some(Box::new(f));
        }
        self.maybe_wake(sim);
    }

    /// Number of select calls performed (cost accounting checks).
    pub fn selects_performed(&self) -> u64 {
        self.inner.borrow().selects
    }

    fn collect_ready(&self) -> Vec<Selected> {
        let inner = self.inner.borrow();
        inner
            .keys
            .iter()
            .filter(|(_, ks)| !ks.cancelled)
            .filter_map(|(k, ks)| {
                let ready = ks.ready.and(ks.interest);
                (!ready.is_empty()).then_some(Selected { key: *k, ready })
            })
            .collect()
    }

    fn maybe_wake(&self, sim: &mut Simulator) {
        let fire_at = {
            let mut inner = self.inner.borrow_mut();
            if inner.parked.is_none() || inner.wake_scheduled {
                return;
            }
            let any_ready = inner
                .keys
                .values()
                .any(|ks| !ks.cancelled && ks.ready.intersects(ks.interest));
            if !any_ready {
                return;
            }
            inner.wake_scheduled = true;
            inner.selects += 1;
            let (host, core, ns) = (inner.host, inner.core, inner.select_ns);
            let net = inner.net.clone();
            drop(inner);
            net.host(host)
                .borrow_mut()
                .exec(sim.now(), core, Nanos::from_nanos(ns))
        };
        let sel = self.clone();
        sim.schedule_at(
            fire_at,
            Box::new(move |sim| {
                let cb = {
                    let mut inner = sel.inner.borrow_mut();
                    inner.wake_scheduled = false;
                    inner.parked.take()
                };
                let Some(cb) = cb else { return };
                let ready = sel.collect_ready();
                if ready.is_empty() {
                    // Readiness vanished while waking: re-park.
                    sel.inner.borrow_mut().parked = Some(cb);
                } else {
                    cb(sim, ready);
                }
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{CpuModel, LinkSpec, TestBed};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn setup() -> (Simulator, Selector) {
        let tb = TestBed::paper_testbed(0);
        let sel = Selector::new(&tb.net, tb.a, CoreId(0), 1_000);
        (tb.sim, sel)
    }

    #[test]
    fn ops_flag_algebra() {
        let rw = Ops::READ | Ops::WRITE;
        assert!(rw.contains(Ops::READ));
        assert!(rw.intersects(Ops::WRITE));
        assert!(!rw.contains(Ops::ACCEPT));
        assert_eq!(rw.without(Ops::READ), Ops::WRITE);
        assert_eq!(rw.and(Ops::READ), Ops::READ);
        assert!(Ops::NONE.is_empty());
    }

    #[test]
    fn select_now_returns_ready_interest_intersection() {
        let (mut sim, sel) = setup();
        let k1 = sel.register(Ops::READ);
        let _k2 = sel.register(Ops::WRITE);
        sel.set_ready(&mut sim, k1, Ops::READ | Ops::WRITE, true);
        let ready = sel.select_now(&mut sim);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].key, k1);
        assert_eq!(ready[0].ready, Ops::READ);
    }

    #[test]
    fn parked_select_wakes_on_readiness() {
        let (mut sim, sel) = setup();
        let k = sel.register(Ops::READ);
        let fired: Rc<RefCell<Vec<Selected>>> = Rc::new(RefCell::new(vec![]));
        let f = fired.clone();
        sel.select(&mut sim, move |_sim, ready| {
            *f.borrow_mut() = ready;
        });
        sim.run_until_idle();
        assert!(fired.borrow().is_empty(), "nothing ready yet");
        sel.set_ready(&mut sim, k, Ops::READ, true);
        sim.run_until_idle();
        assert_eq!(fired.borrow().len(), 1);
        assert_eq!(fired.borrow()[0].ready, Ops::READ);
    }

    #[test]
    fn select_fires_immediately_if_already_ready() {
        let (mut sim, sel) = setup();
        let k = sel.register(Ops::ACCEPT);
        sel.set_ready(&mut sim, k, Ops::ACCEPT, true);
        let hit = Rc::new(RefCell::new(false));
        let h = hit.clone();
        sel.select(&mut sim, move |_s, ready| {
            assert_eq!(ready[0].ready, Ops::ACCEPT);
            *h.borrow_mut() = true;
        });
        sim.run_until_idle();
        assert!(*hit.borrow());
    }

    #[test]
    fn readiness_cleared_before_wake_reparks() {
        let (mut sim, sel) = setup();
        let k = sel.register(Ops::READ);
        let hit = Rc::new(RefCell::new(0u32));
        let h = hit.clone();
        sel.select(&mut sim, move |_s, _r| {
            *h.borrow_mut() += 1;
        });
        // Set then immediately clear readiness; the wake finds nothing.
        sel.set_ready(&mut sim, k, Ops::READ, true);
        sel.set_ready(&mut sim, k, Ops::READ, false);
        sim.run_until_idle();
        assert_eq!(*hit.borrow(), 0);
        // Later readiness still wakes the re-parked call.
        sel.set_ready(&mut sim, k, Ops::READ, true);
        sim.run_until_idle();
        assert_eq!(*hit.borrow(), 1);
    }

    #[test]
    fn cancelled_key_never_fires() {
        let (mut sim, sel) = setup();
        let k = sel.register(Ops::READ);
        sel.cancel(k);
        sel.set_ready(&mut sim, k, Ops::READ, true);
        assert!(sel.select_now(&mut sim).is_empty());
    }

    #[test]
    fn interest_change_can_trigger_wake() {
        let (mut sim, sel) = setup();
        let k = sel.register(Ops::NONE);
        sel.set_ready(&mut sim, k, Ops::READ, true);
        let hit = Rc::new(RefCell::new(false));
        let h = hit.clone();
        sel.select(&mut sim, move |_s, _r| {
            *h.borrow_mut() = true;
        });
        sim.run_until_idle();
        assert!(!*hit.borrow());
        sel.set_interest(&mut sim, k, Ops::READ);
        sim.run_until_idle();
        assert!(*hit.borrow());
    }

    #[test]
    fn select_charges_cpu_time() {
        let tb = TestBed::paper_testbed(0);
        let mut sim = tb.sim;
        let sel = Selector::new(&tb.net, tb.a, CoreId(0), 1_000);
        let busy0 = tb.net.host(tb.a).borrow().total_busy_time();
        sel.select_now(&mut sim);
        let busy1 = tb.net.host(tb.a).borrow().total_busy_time();
        assert_eq!((busy1 - busy0).as_nanos(), 1_000);
    }

    #[test]
    #[should_panic(expected = "already has a parked select")]
    fn double_park_panics() {
        let (mut sim, sel) = setup();
        sel.select(&mut sim, |_s, _r| {});
        sel.select(&mut sim, |_s, _r| {});
    }

    #[test]
    fn multi_host_setup_compiles_with_links() {
        // Smoke test that the selector works with hosts on other networks.
        let net = simnet::Network::new();
        let h = net.add_host("x", 2, CpuModel::xeon_v2());
        let h2 = net.add_host("y", 2, CpuModel::xeon_v2());
        net.connect(h, h2, LinkSpec::ten_gbe());
        let mut sim = Simulator::new(0);
        let sel = Selector::new(&net, h, CoreId(1), 500);
        let k = sel.register(Ops::WRITE);
        sel.set_ready(&mut sim, k, Ops::WRITE, true);
        assert_eq!(sel.select_now(&mut sim).len(), 1);
    }
}
