//! Simulated TCP streams and listeners.
//!
//! The stream models the parts of kernel TCP that matter for the paper's
//! comparison:
//!
//! * **Two copies per message** — `write` copies user→socket buffer,
//!   `read` copies socket buffer→user, both charged to the caller's core
//!   (plus a kernel crossing and the managed-runtime I/O overhead).
//! * **Per-segment processing** — transmit and receive path CPU per MSS
//!   segment, and an interrupt per inbound segment.
//! * **Flow control** — a byte-credit window the size of the peer's receive
//!   buffer; senders stall when it is exhausted, which is what throttles
//!   messages larger than the socket buffers (visible in Figure 4's
//!   mid-range payloads).
//!
//! * **Reliability** — go-back-N retransmission: data segments carry
//!   sequence numbers and are acknowledged cumulatively; the oldest
//!   unacknowledged segment is re-sent after [`TcpModel::rto`], SYNs are
//!   retransmitted during connect, window credit is a cumulative counter
//!   (so a lost credit update is repaired by the next one), and the
//!   receiver suppresses duplicates. After
//!   [`TcpModel::max_retransmits`] consecutive timeouts without progress
//!   the stream is declared broken and surfaces EOF, which transports use
//!   to trigger reconnection.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use simnet::{Addr, CoreId, CpuModel, EventId, Frame, HostId, Nanos, Network, Simulator};

use crate::model::TcpModel;
use crate::selector::{KeyId, Ops, Selector};

/// Errors surfaced by socket operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockError {
    /// Operation requires an established connection.
    NotConnected,
    /// The stream was closed locally.
    Closed,
    /// The port is already in use.
    AddrInUse,
}

impl fmt::Display for SockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SockError::NotConnected => write!(f, "socket is not connected"),
            SockError::Closed => write!(f, "socket is closed"),
            SockError::AddrInUse => write!(f, "address already in use"),
        }
    }
}

impl std::error::Error for SockError {}

/// Result of a non-blocking read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Bytes were available and copied out.
    Data(Vec<u8>),
    /// No bytes available right now.
    WouldBlock,
    /// The peer closed and the buffer is drained.
    Eof,
}

/// Per-stream statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Payload bytes accepted by `write`.
    pub bytes_written: u64,
    /// Payload bytes returned by `read`.
    pub bytes_read: u64,
    /// Data segments transmitted.
    pub segments_tx: u64,
    /// Data segments received.
    pub segments_rx: u64,
    /// Times `write` could not accept any bytes (send buffer full).
    pub write_stalls: u64,
    /// Buffer copies across the user/kernel boundary (one per successful
    /// `write`, one per successful `read` — TCP's double copy).
    pub copies: u64,
    /// User/kernel crossings charged to this socket's syscalls.
    pub syscalls: u64,
    /// Segments (or SYNs) re-sent after a retransmission timeout.
    pub retransmits: u64,
    /// Duplicate data segments suppressed by receive sequencing.
    pub dup_segments: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamState {
    Connecting,
    Established,
    Closed,
}

#[derive(Clone)]
pub(crate) enum TcpSegment {
    Syn {
        reply_to: Addr,
    },
    SynAck {
        data_port: Addr,
        credit: usize,
    },
    /// Sequenced payload; `seq` counts segments, not bytes.
    Data {
        seq: u64,
        bytes: Vec<u8>,
    },
    /// Cumulative acknowledgement: every segment with `seq < upto` arrived.
    Ack {
        upto: u64,
    },
    /// Cumulative flow-control update: total payload bytes the receiving
    /// application has consumed so far. Monotonic, so losing one update
    /// costs nothing once the next arrives.
    Credit {
        total_read: u64,
    },
    Fin,
}

struct StreamInner {
    net: Network,
    host: HostId,
    core: CoreId,
    model: TcpModel,
    cpu: CpuModel,
    local: Addr,
    remote: Option<Addr>,
    state: StreamState,
    send_buf: VecDeque<u8>,
    recv_buf: VecDeque<u8>,
    /// Capacity of the peer's receive buffer (window size).
    peer_window: usize,
    /// Highest cumulative read counter the peer has reported.
    peer_total_read: u64,
    /// Cumulative payload bytes moved from `send_buf` onto the wire.
    /// `peer_window + peer_total_read - bytes_pushed` is the open window.
    bytes_pushed: u64,
    /// Next data sequence number to assign.
    snd_next: u64,
    /// Transmitted-but-unacknowledged segments, oldest first.
    unacked: VecDeque<(u64, Vec<u8>)>,
    /// Armed RTO (or SYN-retry) timer.
    rto_timer: Option<EventId>,
    /// Consecutive timeouts without acknowledged progress.
    rto_strikes: u32,
    /// Next in-order data sequence number expected.
    rcv_next: u64,
    /// Out-of-order segments parked until the gap fills.
    rcv_ooo: BTreeMap<u64, Vec<u8>>,
    /// Cumulative payload bytes consumed by the local application
    /// (advertised to the peer in `Credit` updates).
    total_read: u64,
    eof: bool,
    connect_ready: bool,
    reg: Option<(Selector, KeyId)>,
    stats: TcpStats,
}

impl StreamInner {
    /// Records one syscall + one user/kernel buffer copy in the per-stream
    /// stats and the per-socket registry keys (`tcp.{addr}.syscalls` /
    /// `tcp.{addr}.copies`). The host-level counters are bumped by the
    /// `Host::charge_*` helpers at the charge site.
    fn note_crossing(&mut self, copies: u64) {
        self.stats.syscalls += 1;
        self.stats.copies += copies;
        let m = self.net.metrics();
        m.incr(&format!("tcp.{}.syscalls", self.local));
        m.incr_by(&format!("tcp.{}.copies", self.local), copies);
    }
}

/// A non-blocking simulated TCP stream.
#[derive(Clone)]
pub struct TcpStream {
    inner: Rc<RefCell<StreamInner>>,
}

impl fmt::Debug for TcpStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("TcpStream")
            .field("local", &inner.local)
            .field("remote", &inner.remote)
            .field("state", &inner.state)
            .field("send_buf", &inner.send_buf.len())
            .field("recv_buf", &inner.recv_buf.len())
            .field("unacked", &inner.unacked.len())
            .finish()
    }
}

impl TcpStream {
    #[allow(clippy::too_many_arguments)]
    fn create(
        net: &Network,
        host: HostId,
        core: CoreId,
        model: TcpModel,
        local: Addr,
        remote: Option<Addr>,
        state: StreamState,
        peer_window: usize,
    ) -> TcpStream {
        let cpu = net.host(host).borrow().cpu().clone();
        let stream = TcpStream {
            inner: Rc::new(RefCell::new(StreamInner {
                net: net.clone(),
                host,
                core,
                model,
                cpu,
                local,
                remote,
                state,
                send_buf: VecDeque::new(),
                recv_buf: VecDeque::new(),
                peer_window,
                peer_total_read: 0,
                bytes_pushed: 0,
                snd_next: 0,
                unacked: VecDeque::new(),
                rto_timer: None,
                rto_strikes: 0,
                rcv_next: 0,
                rcv_ooo: BTreeMap::new(),
                total_read: 0,
                eof: false,
                connect_ready: false,
                reg: None,
                stats: TcpStats::default(),
            })),
        };
        let s = stream.clone();
        net.bind(
            local,
            Box::new(move |sim, frame| {
                let corrupted = frame.corrupted;
                if let Ok(mut seg) = frame.into_payload::<TcpSegment>() {
                    // A fault-corrupted frame damages the payload it
                    // carries; the bytes still flow upward, where
                    // application-level integrity checks (the BFT MACs)
                    // must catch them.
                    if corrupted {
                        if let TcpSegment::Data { bytes, .. } = &mut seg {
                            if let Some(byte) = bytes.last_mut() {
                                *byte ^= 0xff;
                            }
                        }
                    }
                    s.handle_segment(sim, seg);
                }
            }),
        );
        stream
    }

    /// Initiates a non-blocking connection to a [`TcpListener`] at
    /// `remote`. Readiness `OP_CONNECT` fires when established.
    pub fn connect(
        sim: &mut Simulator,
        net: &Network,
        host: HostId,
        core: CoreId,
        model: TcpModel,
        remote: Addr,
    ) -> TcpStream {
        let local = net.ephemeral_port(host);
        let stream = TcpStream::create(
            net,
            host,
            core,
            model.clone(),
            local,
            Some(remote),
            StreamState::Connecting,
            0,
        );
        // Handshake cost, then SYN on the wire.
        let done = {
            let inner = stream.inner.borrow();
            inner.net.host(host).borrow_mut().exec(
                sim.now(),
                core,
                Nanos::from_nanos(model.connect_ns),
            )
        };
        let s = stream.clone();
        sim.schedule_at(
            done,
            Box::new(move |sim| {
                let (net, local) = {
                    let inner = s.inner.borrow();
                    (inner.net.clone(), inner.local)
                };
                net.send(
                    sim,
                    Frame::new(local, remote, 40, TcpSegment::Syn { reply_to: local }),
                );
                s.arm_syn_retry(sim);
            }),
        );
        stream
    }

    /// Arms the SYN retransmission timer while the handshake is in flight.
    fn arm_syn_retry(&self, sim: &mut Simulator) {
        let rto = self.inner.borrow().model.rto;
        let s = self.clone();
        let id = sim.schedule_in(rto, Box::new(move |sim| s.syn_retry_fire(sim)));
        self.inner.borrow_mut().rto_timer = Some(id);
    }

    fn syn_retry_fire(&self, sim: &mut Simulator) {
        let resend = {
            let mut inner = self.inner.borrow_mut();
            inner.rto_timer = None;
            if inner.state != StreamState::Connecting {
                return;
            }
            if inner.rto_strikes >= inner.model.max_retransmits {
                // The listener is unreachable; fail the connect attempt.
                inner.eof = true;
                inner.connect_ready = true;
                None
            } else {
                inner.rto_strikes += 1;
                inner.stats.retransmits += 1;
                let listener = inner.remote.expect("connecting stream has a target");
                Some((inner.net.clone(), inner.local, listener))
            }
        };
        match resend {
            Some((net, local, listener)) => {
                net.send(
                    sim,
                    Frame::new(local, listener, 40, TcpSegment::Syn { reply_to: local }),
                );
                self.arm_syn_retry(sim);
            }
            None => self.refresh_readiness(sim),
        }
    }

    /// The local address.
    pub fn local_addr(&self) -> Addr {
        self.inner.borrow().local
    }

    /// The peer's data address, once known.
    pub fn peer_addr(&self) -> Option<Addr> {
        self.inner.borrow().remote
    }

    /// True once the connection is established.
    pub fn is_established(&self) -> bool {
        self.inner.borrow().state == StreamState::Established
    }

    /// Per-stream statistics.
    pub fn stats(&self) -> TcpStats {
        self.inner.borrow().stats
    }

    /// Free space in the send buffer (bytes a `write` would accept now).
    pub fn free_send_space(&self) -> usize {
        let inner = self.inner.borrow();
        inner.model.send_buf - inner.send_buf.len()
    }

    /// Bytes currently readable without blocking.
    pub fn available(&self) -> usize {
        self.inner.borrow().recv_buf.len()
    }

    /// Registers the stream with a selector for the given interest ops.
    /// Current readiness is reported immediately.
    pub fn register(&self, sim: &mut Simulator, selector: &Selector, interest: Ops) -> KeyId {
        let key = selector.register(interest);
        {
            let mut inner = self.inner.borrow_mut();
            inner.reg = Some((selector.clone(), key));
        }
        self.refresh_readiness(sim);
        key
    }

    fn refresh_readiness(&self, sim: &mut Simulator) {
        let (reg, readable, writable, connectable) = {
            let inner = self.inner.borrow();
            let readable = !inner.recv_buf.is_empty() || inner.eof;
            let writable = inner.state == StreamState::Established
                && inner.send_buf.len() < inner.model.send_buf;
            (inner.reg.clone(), readable, writable, inner.connect_ready)
        };
        if let Some((sel, key)) = reg {
            sel.set_ready(sim, key, Ops::READ, readable);
            sel.set_ready(sim, key, Ops::WRITE, writable);
            sel.set_ready(sim, key, Ops::CONNECT, connectable);
        }
    }

    /// Consumes the one-shot connect-ready flag (Java's `finishConnect`).
    /// Returns true if the connection is established.
    pub fn finish_connect(&self, sim: &mut Simulator) -> bool {
        let established = {
            let mut inner = self.inner.borrow_mut();
            inner.connect_ready = false;
            inner.state == StreamState::Established
        };
        self.refresh_readiness(sim);
        established
    }

    /// Non-blocking write: copies as much of `data` as fits in the send
    /// buffer (possibly zero bytes) and returns the accepted count.
    ///
    /// Charges one kernel crossing, the managed-runtime I/O overhead, and
    /// the user→kernel copy for the accepted bytes.
    ///
    /// # Errors
    ///
    /// [`SockError::NotConnected`] before establishment,
    /// [`SockError::Closed`] after close.
    pub fn write(&self, sim: &mut Simulator, data: &[u8]) -> Result<usize, SockError> {
        let (n, pump_at) = {
            let mut inner = self.inner.borrow_mut();
            match inner.state {
                StreamState::Connecting => return Err(SockError::NotConnected),
                StreamState::Closed => return Err(SockError::Closed),
                StreamState::Established => {}
            }
            let free = inner.model.send_buf - inner.send_buf.len();
            let n = free.min(data.len());
            if n == 0 {
                inner.stats.write_stalls += 1;
                return Ok(0);
            }
            let host = inner.host;
            let core = inner.core;
            let done = {
                let host_ref = inner.net.host(host);
                let mut h = host_ref.borrow_mut();
                h.charge_syscall(sim.now(), core);
                h.charge_kernel_copy(sim.now(), core, n);
                h.exec(sim.now(), core, Nanos::from_nanos(inner.cpu.runtime_io_ns))
            };
            inner.note_crossing(1);
            inner.send_buf.extend(&data[..n]);
            inner.stats.bytes_written += n as u64;
            (n, done)
        };
        let s = self.clone();
        sim.schedule_at(pump_at, Box::new(move |sim| s.pump(sim)));
        self.refresh_readiness(sim);
        Ok(n)
    }

    /// Transmit pump: pushes segments onto the wire within the credit
    /// window, charging per-segment kernel cost. Each segment is kept in
    /// the unacked queue until cumulatively acknowledged.
    fn pump(&self, sim: &mut Simulator) {
        loop {
            let (seq, seg_bytes, send_at) = {
                let mut inner = self.inner.borrow_mut();
                if inner.state != StreamState::Established {
                    break;
                }
                let open = (inner.peer_window as u64 + inner.peer_total_read)
                    .saturating_sub(inner.bytes_pushed) as usize;
                let window = open.min(inner.send_buf.len());
                if window == 0 {
                    break;
                }
                let n = window.min(inner.model.mss);
                // Segment buffers recycle through the network's pool: one
                // for the wire, one for the unacked retransmission copy.
                let pool = inner.net.buffer_pool();
                let mut bytes = pool.take(n);
                bytes.extend(inner.send_buf.drain(..n));
                inner.bytes_pushed += n as u64;
                let seq = inner.snd_next;
                inner.snd_next += 1;
                let mut unacked_copy = pool.take(n);
                unacked_copy.extend_from_slice(&bytes);
                inner.unacked.push_back((seq, unacked_copy));
                inner.stats.segments_tx += 1;
                let work = Nanos::from_nanos(inner.model.segment_tx_ns);
                let host = inner.host;
                let core = inner.core;
                let done = inner
                    .net
                    .host(host)
                    .borrow_mut()
                    .exec(sim.now(), core, work);
                (seq, bytes, done)
            };
            let (net, local, remote, header) = {
                let inner = self.inner.borrow();
                (
                    inner.net.clone(),
                    inner.local,
                    inner.remote.expect("established stream has a peer"),
                    inner.model.header_bytes,
                )
            };
            let wire = seg_bytes.len() + header;
            // Schedule the wire transmission when the kernel work is done.
            sim.schedule_at(
                send_at,
                Box::new(move |sim| {
                    net.send(
                        sim,
                        Frame::new(
                            local,
                            remote,
                            wire,
                            TcpSegment::Data {
                                seq,
                                bytes: seg_bytes,
                            },
                        ),
                    );
                }),
            );
        }
        let needs_timer = {
            let inner = self.inner.borrow();
            inner.rto_timer.is_none()
                && !inner.unacked.is_empty()
                && inner.state == StreamState::Established
        };
        if needs_timer {
            self.arm_rto(sim);
        }
        // Draining the send buffer may have made the stream writable again.
        self.refresh_readiness(sim);
    }

    /// Arms the retransmission timer for the oldest unacked segment.
    fn arm_rto(&self, sim: &mut Simulator) {
        let rto = self.inner.borrow().model.rto;
        let s = self.clone();
        let id = sim.schedule_in(rto, Box::new(move |sim| s.rto_fire(sim)));
        self.inner.borrow_mut().rto_timer = Some(id);
    }

    /// RTO expired: go-back-N resend of the oldest unacked segment, or
    /// declare the stream broken once the strike budget is spent.
    fn rto_fire(&self, sim: &mut Simulator) {
        enum Act {
            Resend(Network, Addr, Addr, u64, Vec<u8>, usize),
            GiveUp,
            Idle,
        }
        let act = {
            let mut inner = self.inner.borrow_mut();
            inner.rto_timer = None;
            if inner.state != StreamState::Established || inner.unacked.is_empty() {
                Act::Idle
            } else if inner.rto_strikes >= inner.model.max_retransmits {
                // No progress across the whole strike budget: the peer is
                // gone. Surface as EOF (kernel ETIMEDOUT analogue) so the
                // application's disconnect handling runs.
                inner.eof = true;
                Act::GiveUp
            } else {
                inner.rto_strikes += 1;
                inner.stats.retransmits += 1;
                inner
                    .net
                    .metrics()
                    .incr(&format!("tcp.{}.retransmits", inner.local));
                let pool = inner.net.buffer_pool();
                let (seq, bytes) = {
                    let (seq, front) = inner.unacked.front().expect("checked non-empty");
                    let mut copy = pool.take(front.len());
                    copy.extend_from_slice(front);
                    (*seq, copy)
                };
                Act::Resend(
                    inner.net.clone(),
                    inner.local,
                    inner.remote.expect("established stream has a peer"),
                    seq,
                    bytes,
                    inner.model.header_bytes,
                )
            }
        };
        match act {
            Act::Resend(net, local, remote, seq, bytes, header) => {
                let wire = bytes.len() + header;
                net.send(
                    sim,
                    Frame::new(local, remote, wire, TcpSegment::Data { seq, bytes }),
                );
                self.arm_rto(sim);
            }
            Act::GiveUp => self.refresh_readiness(sim),
            Act::Idle => {}
        }
    }

    /// Non-blocking read of up to `max` bytes.
    ///
    /// Charges one kernel crossing, the managed-runtime overhead, and the
    /// kernel→user copy; returns freed window credit to the peer.
    ///
    /// # Errors
    ///
    /// [`SockError::Closed`] if the stream was closed locally.
    pub fn read(&self, sim: &mut Simulator, max: usize) -> Result<ReadOutcome, SockError> {
        let (data, credit_at) = {
            let mut inner = self.inner.borrow_mut();
            if inner.state == StreamState::Closed {
                return Err(SockError::Closed);
            }
            if inner.recv_buf.is_empty() {
                return Ok(if inner.eof {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::WouldBlock
                });
            }
            let n = max.min(inner.recv_buf.len());
            let host = inner.host;
            let core = inner.core;
            let done = {
                let host_ref = inner.net.host(host);
                let mut h = host_ref.borrow_mut();
                h.charge_syscall(sim.now(), core);
                h.charge_kernel_copy(sim.now(), core, n);
                h.exec(sim.now(), core, Nanos::from_nanos(inner.cpu.runtime_io_ns))
            };
            inner.note_crossing(1);
            let data: Vec<u8> = inner.recv_buf.drain(..n).collect();
            inner.stats.bytes_read += n as u64;
            inner.total_read += n as u64;
            (data, done)
        };
        // Return window credit to the peer (a cumulative counter, so a
        // lost update is repaired by whichever later one gets through).
        let (net, local, remote, ack_bytes, total_read) = {
            let inner = self.inner.borrow();
            (
                inner.net.clone(),
                inner.local,
                inner.remote,
                inner.model.ack_bytes,
                inner.total_read,
            )
        };
        if let Some(remote) = remote {
            sim.schedule_at(
                credit_at,
                Box::new(move |sim| {
                    net.send(
                        sim,
                        Frame::new(local, remote, ack_bytes, TcpSegment::Credit { total_read }),
                    );
                }),
            );
        }
        self.refresh_readiness(sim);
        Ok(ReadOutcome::Data(data))
    }

    /// Closes the stream, notifying the peer (FIN).
    pub fn close(&self, sim: &mut Simulator) {
        let (net, local, remote, ack_bytes, already_closed) = {
            let mut inner = self.inner.borrow_mut();
            let already = inner.state == StreamState::Closed;
            inner.state = StreamState::Closed;
            (
                inner.net.clone(),
                inner.local,
                inner.remote,
                inner.model.ack_bytes,
                already,
            )
        };
        if already_closed {
            return;
        }
        if let Some(remote) = remote {
            net.send(sim, Frame::new(local, remote, ack_bytes, TcpSegment::Fin));
        }
        net.unbind(local);
    }

    fn handle_segment(&self, sim: &mut Simulator, seg: TcpSegment) {
        match seg {
            TcpSegment::SynAck { data_port, credit } => {
                let timer = {
                    let mut inner = self.inner.borrow_mut();
                    if inner.state != StreamState::Connecting {
                        // Duplicate SYN-ACK from a retransmitted SYN.
                        return;
                    }
                    inner.remote = Some(data_port);
                    inner.peer_window = credit;
                    inner.state = StreamState::Established;
                    inner.connect_ready = true;
                    inner.rto_strikes = 0;
                    inner.rto_timer.take()
                };
                if let Some(id) = timer {
                    sim.cancel(id);
                }
                self.refresh_readiness(sim);
                // Anything already buffered can flow now.
                self.pump(sim);
            }
            TcpSegment::Data { seq, bytes } => {
                let done = {
                    let mut inner = self.inner.borrow_mut();
                    if inner.state != StreamState::Established {
                        return;
                    }
                    inner.stats.segments_rx += 1;
                    let host = inner.host;
                    let core = inner.core;
                    let host_ref = inner.net.host(host);
                    let mut h = host_ref.borrow_mut();
                    h.charge_interrupt(sim.now(), core);
                    h.exec(
                        sim.now(),
                        core,
                        Nanos::from_nanos(inner.model.segment_rx_ns),
                    )
                };
                let s = self.clone();
                sim.schedule_at(
                    done,
                    Box::new(move |sim| {
                        let (net, local, remote, ack_bytes, upto) = {
                            let mut inner = s.inner.borrow_mut();
                            let pool = inner.net.buffer_pool();
                            if seq == inner.rcv_next {
                                inner.recv_buf.extend(bytes.iter());
                                pool.put(bytes);
                                inner.rcv_next += 1;
                                while let Some(parked) = {
                                    let next = inner.rcv_next;
                                    inner.rcv_ooo.remove(&next)
                                } {
                                    inner.recv_buf.extend(parked.iter());
                                    pool.put(parked);
                                    inner.rcv_next += 1;
                                }
                            } else if seq > inner.rcv_next {
                                if let std::collections::btree_map::Entry::Vacant(e) =
                                    inner.rcv_ooo.entry(seq)
                                {
                                    e.insert(bytes);
                                } else {
                                    inner.stats.dup_segments += 1;
                                    pool.put(bytes);
                                }
                            } else {
                                // Already delivered: the cumulative ack
                                // below repairs the sender's view.
                                inner.stats.dup_segments += 1;
                                pool.put(bytes);
                            }
                            (
                                inner.net.clone(),
                                inner.local,
                                inner.remote,
                                inner.model.ack_bytes,
                                inner.rcv_next,
                            )
                        };
                        if let Some(remote) = remote {
                            net.send(
                                sim,
                                Frame::new(local, remote, ack_bytes, TcpSegment::Ack { upto }),
                            );
                        }
                        s.refresh_readiness(sim);
                    }),
                );
            }
            TcpSegment::Ack { upto } => {
                let (timer, rearm) = {
                    let mut inner = self.inner.borrow_mut();
                    let pool = inner.net.buffer_pool();
                    let before = inner.unacked.len();
                    while inner.unacked.front().is_some_and(|(s, _)| *s < upto) {
                        if let Some((_, buf)) = inner.unacked.pop_front() {
                            pool.put(buf);
                        }
                    }
                    if inner.unacked.len() == before {
                        // No progress (stale or duplicate ack): leave the
                        // running timer alone.
                        (None, false)
                    } else {
                        inner.rto_strikes = 0;
                        (inner.rto_timer.take(), !inner.unacked.is_empty())
                    }
                };
                if let Some(id) = timer {
                    sim.cancel(id);
                }
                if rearm {
                    self.arm_rto(sim);
                }
            }
            TcpSegment::Credit { total_read } => {
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.peer_total_read = inner.peer_total_read.max(total_read);
                }
                self.pump(sim);
                self.refresh_readiness(sim);
            }
            TcpSegment::Fin => {
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.eof = true;
                }
                self.refresh_readiness(sim);
            }
            TcpSegment::Syn { .. } => {
                debug_assert!(false, "SYN delivered to a data port");
            }
        }
    }
}

struct ListenerInner {
    net: Network,
    host: HostId,
    core: CoreId,
    model: TcpModel,
    addr: Addr,
    pending: VecDeque<TcpStream>,
    /// Connections already accepted, keyed by the client's reply address:
    /// a retransmitted SYN re-sends the SYN-ACK instead of spawning a
    /// second server-side stream.
    accepted: HashMap<Addr, Addr>,
    reg: Option<(Selector, KeyId)>,
}

/// A listening TCP socket.
#[derive(Clone)]
pub struct TcpListener {
    inner: Rc<RefCell<ListenerInner>>,
}

impl fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("TcpListener")
            .field("addr", &inner.addr)
            .field("pending", &inner.pending.len())
            .finish()
    }
}

impl TcpListener {
    /// Binds a listener on `host:port`. Accepted streams are charged to
    /// `core`.
    ///
    /// # Errors
    ///
    /// [`SockError::AddrInUse`] if the port is taken.
    pub fn bind(
        net: &Network,
        host: HostId,
        port: u32,
        core: CoreId,
        model: TcpModel,
    ) -> Result<TcpListener, SockError> {
        let addr = Addr::new(host, port);
        if net.is_bound(addr) {
            return Err(SockError::AddrInUse);
        }
        let listener = TcpListener {
            inner: Rc::new(RefCell::new(ListenerInner {
                net: net.clone(),
                host,
                core,
                model,
                addr,
                pending: VecDeque::new(),
                accepted: HashMap::new(),
                reg: None,
            })),
        };
        let l = listener.clone();
        net.bind(
            addr,
            Box::new(move |sim, frame| {
                if let Ok(TcpSegment::Syn { reply_to }) = frame.into_payload::<TcpSegment>() {
                    l.handle_syn(sim, reply_to);
                }
            }),
        );
        Ok(listener)
    }

    /// The bound address.
    pub fn local_addr(&self) -> Addr {
        self.inner.borrow().addr
    }

    /// Registers the listener for `OP_ACCEPT` readiness.
    pub fn register(&self, sim: &mut Simulator, selector: &Selector) -> KeyId {
        let key = selector.register(Ops::ACCEPT);
        {
            let mut inner = self.inner.borrow_mut();
            inner.reg = Some((selector.clone(), key));
        }
        let pending = !self.inner.borrow().pending.is_empty();
        if pending {
            selector.set_ready(sim, key, Ops::ACCEPT, true);
        }
        key
    }

    /// Accepts a pending connection, if any (non-blocking).
    pub fn accept(&self, sim: &mut Simulator) -> Option<TcpStream> {
        let (stream, reg, still_pending) = {
            let mut inner = self.inner.borrow_mut();
            let s = inner.pending.pop_front();
            (s, inner.reg.clone(), !inner.pending.is_empty())
        };
        if let Some((sel, key)) = reg {
            sel.set_ready(sim, key, Ops::ACCEPT, still_pending);
        }
        stream
    }

    fn handle_syn(&self, sim: &mut Simulator, reply_to: Addr) {
        // A retransmitted SYN for an already-accepted connection means the
        // SYN-ACK was lost: re-send it, do not accept a second stream.
        let known = {
            let inner = self.inner.borrow();
            inner
                .accepted
                .get(&reply_to)
                .map(|port| (inner.net.clone(), *port, inner.model.recv_buf))
        };
        if let Some((net, data_port, credit)) = known {
            net.send(
                sim,
                Frame::new(
                    data_port,
                    reply_to,
                    40,
                    TcpSegment::SynAck { data_port, credit },
                ),
            );
            return;
        }
        let (net, host, core, model, local_port) = {
            let inner = self.inner.borrow();
            (
                inner.net.clone(),
                inner.host,
                inner.core,
                inner.model.clone(),
                inner.net.ephemeral_port(inner.host),
            )
        };
        let credit = model.recv_buf;
        let stream = TcpStream::create(
            &net,
            host,
            core,
            model.clone(),
            local_port,
            Some(reply_to),
            StreamState::Established,
            // The client's initial credit towards us is our recv_buf; our
            // credit towards the client is its recv_buf (symmetric model).
            model.recv_buf,
        );
        {
            let mut inner = self.inner.borrow_mut();
            inner.pending.push_back(stream);
            inner.accepted.insert(reply_to, local_port);
        }
        net.send(
            sim,
            Frame::new(
                local_port,
                reply_to,
                40,
                TcpSegment::SynAck {
                    data_port: local_port,
                    credit,
                },
            ),
        );
        let reg = self.inner.borrow().reg.clone();
        if let Some((sel, key)) = reg {
            sel.set_ready(sim, key, Ops::ACCEPT, true);
        }
    }

    /// Stops listening.
    pub fn close(&self) {
        let inner = self.inner.borrow();
        inner.net.unbind(inner.addr);
    }
}
