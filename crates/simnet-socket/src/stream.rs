//! Simulated TCP streams and listeners.
//!
//! The stream models the parts of kernel TCP that matter for the paper's
//! comparison:
//!
//! * **Two copies per message** — `write` copies user→socket buffer,
//!   `read` copies socket buffer→user, both charged to the caller's core
//!   (plus a kernel crossing and the managed-runtime I/O overhead).
//! * **Per-segment processing** — transmit and receive path CPU per MSS
//!   segment, and an interrupt per inbound segment.
//! * **Flow control** — a byte-credit window the size of the peer's receive
//!   buffer; senders stall when it is exhausted, which is what throttles
//!   messages larger than the socket buffers (visible in Figure 4's
//!   mid-range payloads).
//!
//! Reliability and ordering come from the simulated fabric (no
//! retransmission machinery); loss injected by the fault plane therefore
//! breaks a stream, which tests use to exercise failure paths.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use simnet::{Addr, CoreId, CpuModel, Frame, HostId, Nanos, Network, Simulator};

use crate::model::TcpModel;
use crate::selector::{KeyId, Ops, Selector};

/// Errors surfaced by socket operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockError {
    /// Operation requires an established connection.
    NotConnected,
    /// The stream was closed locally.
    Closed,
    /// The port is already in use.
    AddrInUse,
}

impl fmt::Display for SockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SockError::NotConnected => write!(f, "socket is not connected"),
            SockError::Closed => write!(f, "socket is closed"),
            SockError::AddrInUse => write!(f, "address already in use"),
        }
    }
}

impl std::error::Error for SockError {}

/// Result of a non-blocking read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Bytes were available and copied out.
    Data(Vec<u8>),
    /// No bytes available right now.
    WouldBlock,
    /// The peer closed and the buffer is drained.
    Eof,
}

/// Per-stream statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Payload bytes accepted by `write`.
    pub bytes_written: u64,
    /// Payload bytes returned by `read`.
    pub bytes_read: u64,
    /// Data segments transmitted.
    pub segments_tx: u64,
    /// Data segments received.
    pub segments_rx: u64,
    /// Times `write` could not accept any bytes (send buffer full).
    pub write_stalls: u64,
    /// Buffer copies across the user/kernel boundary (one per successful
    /// `write`, one per successful `read` — TCP's double copy).
    pub copies: u64,
    /// User/kernel crossings charged to this socket's syscalls.
    pub syscalls: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamState {
    Connecting,
    Established,
    Closed,
}

pub(crate) enum TcpSegment {
    Syn { reply_to: Addr },
    SynAck { data_port: Addr, credit: usize },
    Data { bytes: Vec<u8> },
    Credit { bytes: usize },
    Fin,
}

struct StreamInner {
    net: Network,
    host: HostId,
    core: CoreId,
    model: TcpModel,
    cpu: CpuModel,
    local: Addr,
    remote: Option<Addr>,
    state: StreamState,
    send_buf: VecDeque<u8>,
    recv_buf: VecDeque<u8>,
    /// Bytes we may still push into the peer's receive buffer.
    credit: usize,
    eof: bool,
    connect_ready: bool,
    reg: Option<(Selector, KeyId)>,
    stats: TcpStats,
}

impl StreamInner {
    /// Records one syscall + one user/kernel buffer copy in the per-stream
    /// stats and the per-socket registry keys (`tcp.{addr}.syscalls` /
    /// `tcp.{addr}.copies`). The host-level counters are bumped by the
    /// `Host::charge_*` helpers at the charge site.
    fn note_crossing(&mut self, copies: u64) {
        self.stats.syscalls += 1;
        self.stats.copies += copies;
        let m = self.net.metrics();
        m.incr(&format!("tcp.{}.syscalls", self.local));
        m.incr_by(&format!("tcp.{}.copies", self.local), copies);
    }
}

/// A non-blocking simulated TCP stream.
#[derive(Clone)]
pub struct TcpStream {
    inner: Rc<RefCell<StreamInner>>,
}

impl fmt::Debug for TcpStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("TcpStream")
            .field("local", &inner.local)
            .field("remote", &inner.remote)
            .field("state", &inner.state)
            .field("send_buf", &inner.send_buf.len())
            .field("recv_buf", &inner.recv_buf.len())
            .field("credit", &inner.credit)
            .finish()
    }
}

impl TcpStream {
    #[allow(clippy::too_many_arguments)]
    fn create(
        net: &Network,
        host: HostId,
        core: CoreId,
        model: TcpModel,
        local: Addr,
        remote: Option<Addr>,
        state: StreamState,
        credit: usize,
    ) -> TcpStream {
        let cpu = net.host(host).borrow().cpu().clone();
        let stream = TcpStream {
            inner: Rc::new(RefCell::new(StreamInner {
                net: net.clone(),
                host,
                core,
                model,
                cpu,
                local,
                remote,
                state,
                send_buf: VecDeque::new(),
                recv_buf: VecDeque::new(),
                credit,
                eof: false,
                connect_ready: false,
                reg: None,
                stats: TcpStats::default(),
            })),
        };
        let s = stream.clone();
        net.bind(
            local,
            Box::new(move |sim, frame| {
                if let Ok(seg) = frame.into_payload::<TcpSegment>() {
                    s.handle_segment(sim, seg);
                }
            }),
        );
        stream
    }

    /// Initiates a non-blocking connection to a [`TcpListener`] at
    /// `remote`. Readiness `OP_CONNECT` fires when established.
    pub fn connect(
        sim: &mut Simulator,
        net: &Network,
        host: HostId,
        core: CoreId,
        model: TcpModel,
        remote: Addr,
    ) -> TcpStream {
        let local = net.ephemeral_port(host);
        let stream = TcpStream::create(
            net,
            host,
            core,
            model.clone(),
            local,
            Some(remote),
            StreamState::Connecting,
            0,
        );
        // Handshake cost, then SYN on the wire.
        let done = {
            let inner = stream.inner.borrow();
            inner.net.host(host).borrow_mut().exec(
                sim.now(),
                core,
                Nanos::from_nanos(model.connect_ns),
            )
        };
        let s = stream.clone();
        sim.schedule_at(
            done,
            Box::new(move |sim| {
                let (net, local) = {
                    let inner = s.inner.borrow();
                    (inner.net.clone(), inner.local)
                };
                net.send(
                    sim,
                    Frame::new(local, remote, 40, TcpSegment::Syn { reply_to: local }),
                );
            }),
        );
        stream
    }

    /// The local address.
    pub fn local_addr(&self) -> Addr {
        self.inner.borrow().local
    }

    /// The peer's data address, once known.
    pub fn peer_addr(&self) -> Option<Addr> {
        self.inner.borrow().remote
    }

    /// True once the connection is established.
    pub fn is_established(&self) -> bool {
        self.inner.borrow().state == StreamState::Established
    }

    /// Per-stream statistics.
    pub fn stats(&self) -> TcpStats {
        self.inner.borrow().stats
    }

    /// Free space in the send buffer (bytes a `write` would accept now).
    pub fn free_send_space(&self) -> usize {
        let inner = self.inner.borrow();
        inner.model.send_buf - inner.send_buf.len()
    }

    /// Bytes currently readable without blocking.
    pub fn available(&self) -> usize {
        self.inner.borrow().recv_buf.len()
    }

    /// Registers the stream with a selector for the given interest ops.
    /// Current readiness is reported immediately.
    pub fn register(&self, sim: &mut Simulator, selector: &Selector, interest: Ops) -> KeyId {
        let key = selector.register(interest);
        {
            let mut inner = self.inner.borrow_mut();
            inner.reg = Some((selector.clone(), key));
        }
        self.refresh_readiness(sim);
        key
    }

    fn refresh_readiness(&self, sim: &mut Simulator) {
        let (reg, readable, writable, connectable) = {
            let inner = self.inner.borrow();
            let readable = !inner.recv_buf.is_empty() || inner.eof;
            let writable = inner.state == StreamState::Established
                && inner.send_buf.len() < inner.model.send_buf;
            (inner.reg.clone(), readable, writable, inner.connect_ready)
        };
        if let Some((sel, key)) = reg {
            sel.set_ready(sim, key, Ops::READ, readable);
            sel.set_ready(sim, key, Ops::WRITE, writable);
            sel.set_ready(sim, key, Ops::CONNECT, connectable);
        }
    }

    /// Consumes the one-shot connect-ready flag (Java's `finishConnect`).
    /// Returns true if the connection is established.
    pub fn finish_connect(&self, sim: &mut Simulator) -> bool {
        let established = {
            let mut inner = self.inner.borrow_mut();
            inner.connect_ready = false;
            inner.state == StreamState::Established
        };
        self.refresh_readiness(sim);
        established
    }

    /// Non-blocking write: copies as much of `data` as fits in the send
    /// buffer (possibly zero bytes) and returns the accepted count.
    ///
    /// Charges one kernel crossing, the managed-runtime I/O overhead, and
    /// the user→kernel copy for the accepted bytes.
    ///
    /// # Errors
    ///
    /// [`SockError::NotConnected`] before establishment,
    /// [`SockError::Closed`] after close.
    pub fn write(&self, sim: &mut Simulator, data: &[u8]) -> Result<usize, SockError> {
        let (n, pump_at) = {
            let mut inner = self.inner.borrow_mut();
            match inner.state {
                StreamState::Connecting => return Err(SockError::NotConnected),
                StreamState::Closed => return Err(SockError::Closed),
                StreamState::Established => {}
            }
            let free = inner.model.send_buf - inner.send_buf.len();
            let n = free.min(data.len());
            if n == 0 {
                inner.stats.write_stalls += 1;
                return Ok(0);
            }
            let host = inner.host;
            let core = inner.core;
            let done = {
                let host_ref = inner.net.host(host);
                let mut h = host_ref.borrow_mut();
                h.charge_syscall(sim.now(), core);
                h.charge_kernel_copy(sim.now(), core, n);
                h.exec(sim.now(), core, Nanos::from_nanos(inner.cpu.runtime_io_ns))
            };
            inner.note_crossing(1);
            inner.send_buf.extend(&data[..n]);
            inner.stats.bytes_written += n as u64;
            (n, done)
        };
        let s = self.clone();
        sim.schedule_at(pump_at, Box::new(move |sim| s.pump(sim)));
        self.refresh_readiness(sim);
        Ok(n)
    }

    /// Transmit pump: pushes segments onto the wire within the credit
    /// window, charging per-segment kernel cost.
    fn pump(&self, sim: &mut Simulator) {
        loop {
            let (seg_bytes, send_at) = {
                let mut inner = self.inner.borrow_mut();
                if inner.state != StreamState::Established {
                    break;
                }
                let window = inner.credit.min(inner.send_buf.len());
                if window == 0 {
                    break;
                }
                let n = window.min(inner.model.mss);
                let bytes: Vec<u8> = inner.send_buf.drain(..n).collect();
                inner.credit -= n;
                inner.stats.segments_tx += 1;
                let work = Nanos::from_nanos(inner.model.segment_tx_ns);
                let host = inner.host;
                let core = inner.core;
                let done = inner
                    .net
                    .host(host)
                    .borrow_mut()
                    .exec(sim.now(), core, work);
                (bytes, done)
            };
            let (net, local, remote, header) = {
                let inner = self.inner.borrow();
                (
                    inner.net.clone(),
                    inner.local,
                    inner.remote.expect("established stream has a peer"),
                    inner.model.header_bytes,
                )
            };
            let wire = seg_bytes.len() + header;
            // Schedule the wire transmission when the kernel work is done.
            sim.schedule_at(
                send_at,
                Box::new(move |sim| {
                    net.send(
                        sim,
                        Frame::new(local, remote, wire, TcpSegment::Data { bytes: seg_bytes }),
                    );
                }),
            );
        }
        // Draining the send buffer may have made the stream writable again.
        self.refresh_readiness(sim);
    }

    /// Non-blocking read of up to `max` bytes.
    ///
    /// Charges one kernel crossing, the managed-runtime overhead, and the
    /// kernel→user copy; returns freed window credit to the peer.
    ///
    /// # Errors
    ///
    /// [`SockError::Closed`] if the stream was closed locally.
    pub fn read(&self, sim: &mut Simulator, max: usize) -> Result<ReadOutcome, SockError> {
        let (data, credit_at) = {
            let mut inner = self.inner.borrow_mut();
            if inner.state == StreamState::Closed {
                return Err(SockError::Closed);
            }
            if inner.recv_buf.is_empty() {
                return Ok(if inner.eof {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::WouldBlock
                });
            }
            let n = max.min(inner.recv_buf.len());
            let host = inner.host;
            let core = inner.core;
            let done = {
                let host_ref = inner.net.host(host);
                let mut h = host_ref.borrow_mut();
                h.charge_syscall(sim.now(), core);
                h.charge_kernel_copy(sim.now(), core, n);
                h.exec(sim.now(), core, Nanos::from_nanos(inner.cpu.runtime_io_ns))
            };
            inner.note_crossing(1);
            let data: Vec<u8> = inner.recv_buf.drain(..n).collect();
            inner.stats.bytes_read += n as u64;
            (data, done)
        };
        // Return window credit to the peer.
        let (net, local, remote, ack_bytes) = {
            let inner = self.inner.borrow();
            (
                inner.net.clone(),
                inner.local,
                inner.remote,
                inner.model.ack_bytes,
            )
        };
        if let Some(remote) = remote {
            let n = data.len();
            sim.schedule_at(
                credit_at,
                Box::new(move |sim| {
                    net.send(
                        sim,
                        Frame::new(local, remote, ack_bytes, TcpSegment::Credit { bytes: n }),
                    );
                }),
            );
        }
        self.refresh_readiness(sim);
        Ok(ReadOutcome::Data(data))
    }

    /// Closes the stream, notifying the peer (FIN).
    pub fn close(&self, sim: &mut Simulator) {
        let (net, local, remote, ack_bytes, already_closed) = {
            let mut inner = self.inner.borrow_mut();
            let already = inner.state == StreamState::Closed;
            inner.state = StreamState::Closed;
            (
                inner.net.clone(),
                inner.local,
                inner.remote,
                inner.model.ack_bytes,
                already,
            )
        };
        if already_closed {
            return;
        }
        if let Some(remote) = remote {
            net.send(sim, Frame::new(local, remote, ack_bytes, TcpSegment::Fin));
        }
        net.unbind(local);
    }

    fn handle_segment(&self, sim: &mut Simulator, seg: TcpSegment) {
        match seg {
            TcpSegment::SynAck { data_port, credit } => {
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.remote = Some(data_port);
                    inner.credit = credit;
                    inner.state = StreamState::Established;
                    inner.connect_ready = true;
                }
                self.refresh_readiness(sim);
                // Anything already buffered can flow now.
                self.pump(sim);
            }
            TcpSegment::Data { bytes } => {
                let done = {
                    let mut inner = self.inner.borrow_mut();
                    if inner.state != StreamState::Established {
                        return;
                    }
                    inner.stats.segments_rx += 1;
                    let host = inner.host;
                    let core = inner.core;
                    let host_ref = inner.net.host(host);
                    let mut h = host_ref.borrow_mut();
                    h.charge_interrupt(sim.now(), core);
                    h.exec(
                        sim.now(),
                        core,
                        Nanos::from_nanos(inner.model.segment_rx_ns),
                    )
                };
                let s = self.clone();
                sim.schedule_at(
                    done,
                    Box::new(move |sim| {
                        {
                            let mut inner = s.inner.borrow_mut();
                            inner.recv_buf.extend(bytes.iter());
                        }
                        s.refresh_readiness(sim);
                    }),
                );
            }
            TcpSegment::Credit { bytes } => {
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.credit += bytes;
                }
                self.pump(sim);
                self.refresh_readiness(sim);
            }
            TcpSegment::Fin => {
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.eof = true;
                }
                self.refresh_readiness(sim);
            }
            TcpSegment::Syn { .. } => {
                debug_assert!(false, "SYN delivered to a data port");
            }
        }
    }
}

struct ListenerInner {
    net: Network,
    host: HostId,
    core: CoreId,
    model: TcpModel,
    addr: Addr,
    pending: VecDeque<TcpStream>,
    reg: Option<(Selector, KeyId)>,
}

/// A listening TCP socket.
#[derive(Clone)]
pub struct TcpListener {
    inner: Rc<RefCell<ListenerInner>>,
}

impl fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("TcpListener")
            .field("addr", &inner.addr)
            .field("pending", &inner.pending.len())
            .finish()
    }
}

impl TcpListener {
    /// Binds a listener on `host:port`. Accepted streams are charged to
    /// `core`.
    ///
    /// # Errors
    ///
    /// [`SockError::AddrInUse`] if the port is taken.
    pub fn bind(
        net: &Network,
        host: HostId,
        port: u32,
        core: CoreId,
        model: TcpModel,
    ) -> Result<TcpListener, SockError> {
        let addr = Addr::new(host, port);
        if net.is_bound(addr) {
            return Err(SockError::AddrInUse);
        }
        let listener = TcpListener {
            inner: Rc::new(RefCell::new(ListenerInner {
                net: net.clone(),
                host,
                core,
                model,
                addr,
                pending: VecDeque::new(),
                reg: None,
            })),
        };
        let l = listener.clone();
        net.bind(
            addr,
            Box::new(move |sim, frame| {
                if let Ok(TcpSegment::Syn { reply_to }) = frame.into_payload::<TcpSegment>() {
                    l.handle_syn(sim, reply_to);
                }
            }),
        );
        Ok(listener)
    }

    /// The bound address.
    pub fn local_addr(&self) -> Addr {
        self.inner.borrow().addr
    }

    /// Registers the listener for `OP_ACCEPT` readiness.
    pub fn register(&self, sim: &mut Simulator, selector: &Selector) -> KeyId {
        let key = selector.register(Ops::ACCEPT);
        {
            let mut inner = self.inner.borrow_mut();
            inner.reg = Some((selector.clone(), key));
        }
        let pending = !self.inner.borrow().pending.is_empty();
        if pending {
            selector.set_ready(sim, key, Ops::ACCEPT, true);
        }
        key
    }

    /// Accepts a pending connection, if any (non-blocking).
    pub fn accept(&self, sim: &mut Simulator) -> Option<TcpStream> {
        let (stream, reg, still_pending) = {
            let mut inner = self.inner.borrow_mut();
            let s = inner.pending.pop_front();
            (s, inner.reg.clone(), !inner.pending.is_empty())
        };
        if let Some((sel, key)) = reg {
            sel.set_ready(sim, key, Ops::ACCEPT, still_pending);
        }
        stream
    }

    fn handle_syn(&self, sim: &mut Simulator, reply_to: Addr) {
        let (net, host, core, model, local_port) = {
            let inner = self.inner.borrow();
            (
                inner.net.clone(),
                inner.host,
                inner.core,
                inner.model.clone(),
                inner.net.ephemeral_port(inner.host),
            )
        };
        let credit = model.recv_buf;
        let stream = TcpStream::create(
            &net,
            host,
            core,
            model.clone(),
            local_port,
            Some(reply_to),
            StreamState::Established,
            // The client's initial credit towards us is our recv_buf; our
            // credit towards the client is its recv_buf (symmetric model).
            model.recv_buf,
        );
        {
            let mut inner = self.inner.borrow_mut();
            inner.pending.push_back(stream);
        }
        net.send(
            sim,
            Frame::new(
                local_port,
                reply_to,
                40,
                TcpSegment::SynAck {
                    data_port: local_port,
                    credit,
                },
            ),
        );
        let reg = self.inner.borrow().reg.clone();
        if let Some((sel, key)) = reg {
            sel.set_ready(sim, key, Ops::ACCEPT, true);
        }
    }

    /// Stops listening.
    pub fn close(&self) {
        let inner = self.inner.borrow();
        inner.net.unbind(inner.addr);
    }
}
