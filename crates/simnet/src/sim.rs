//! The discrete-event simulator core.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::{EventFn, EventId, EventQueue, QueueStats};
use crate::time::Nanos;

/// A deterministic, single-threaded discrete-event simulator.
///
/// The simulator owns a virtual clock and a queue of scheduled events.
/// Running the simulator pops events in `(time, scheduling-order)` order and
/// executes them; events may schedule further events. All randomness flows
/// through the seeded [`rng`](Simulator::rng), so a run is a pure function of
/// its seed and inputs.
///
/// # Examples
///
/// ```
/// use simnet::{Nanos, Simulator};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Simulator::new(42);
/// let fired = Rc::new(Cell::new(false));
/// let f = fired.clone();
/// sim.schedule_in(Nanos::from_micros(5), Box::new(move |sim| {
///     assert_eq!(sim.now(), Nanos::from_micros(5));
///     f.set(true);
/// }));
/// sim.run_until_idle();
/// assert!(fired.get());
/// ```
pub struct Simulator {
    now: Nanos,
    queue: EventQueue,
    rng: StdRng,
    executed: u64,
    /// Shard affinity of the event currently executing. Events scheduled
    /// without an explicit hint inherit it, so work stays clustered on the
    /// host that caused it (see the sharding notes in [`crate::event`]).
    current_shard: u32,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator at time zero with the given RNG seed.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            now: Nanos::ZERO,
            queue: EventQueue::new(),
            rng: StdRng::seed_from_u64(seed),
            executed: 0,
            current_shard: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events executed so far (useful for runaway detection).
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// The simulator's deterministic random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Schedules `action` to run at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: Nanos, action: EventFn) -> EventId {
        self.schedule_at_on(self.current_shard, at, action)
    }

    /// Schedules `action` at absolute time `at` with an explicit shard hint
    /// (typically the destination host id of a frame delivery). The hint
    /// only affects queue locality, never execution order.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at_on(&mut self, shard_hint: u32, at: Nanos, action: EventFn) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.queue.push(at, shard_hint, action)
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Nanos, action: EventFn) -> EventId {
        let at = self.now + delay;
        self.queue.push(at, self.current_shard, action)
    }

    /// Schedules `action` to run every `period`, starting one period from
    /// now, until it returns `false`. Each tick re-arms *after* the action
    /// runs, so exactly one timer event is pending at a time (a recovery
    /// scheduler or heartbeat cannot flood the queue). Returns the id of
    /// the first tick; cancelling it stops the timer only before that tick
    /// fires — afterwards, stopping is the action's job.
    pub fn schedule_every<F>(&mut self, period: Nanos, action: F) -> EventId
    where
        F: FnMut(&mut Simulator) -> bool + 'static,
    {
        fn tick<F>(sim: &mut Simulator, period: Nanos, mut action: F)
        where
            F: FnMut(&mut Simulator) -> bool + 'static,
        {
            if action(sim) {
                sim.schedule_in(period, Box::new(move |sim| tick(sim, period, action)));
            }
        }
        self.schedule_in(period, Box::new(move |sim| tick(sim, period, action)))
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already run (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.queue.cancel(id);
    }

    /// Executes the next event, advancing the clock to its timestamp.
    /// Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((shard, at, action)) => {
                debug_assert!(at >= self.now);
                self.now = at;
                self.executed += 1;
                self.current_shard = shard;
                action(self);
                true
            }
            None => false,
        }
    }

    /// Runs events until the queue is empty; returns the final time.
    pub fn run_until_idle(&mut self) -> Nanos {
        while self.step() {}
        self.now
    }

    /// Runs all events scheduled at or before `deadline`, then sets the clock
    /// to `deadline` (if it is later than the last executed event).
    pub fn run_until(&mut self, deadline: Nanos) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Runs for `duration` of simulated time from now.
    pub fn run_for(&mut self, duration: Nanos) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    /// True if no events are pending.
    pub fn is_idle(&mut self) -> bool {
        self.queue.is_empty()
    }

    /// Timestamp of the next pending event.
    pub fn next_event_time(&mut self) -> Option<Nanos> {
        self.queue.peek_time()
    }

    /// Lifetime counters of the event queue (scheduled / cancelled /
    /// tombstones / compactions), surfaced as `sim.events_*` gauges.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Number of event-queue shards.
    pub fn queue_shards(&self) -> usize {
        self.queue.num_shards()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulator::new(0);
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![]));
        for t in [30u64, 10, 20] {
            let log = log.clone();
            sim.schedule_at(
                Nanos::from_nanos(t),
                Box::new(move |sim| log.borrow_mut().push(sim.now().as_nanos())),
            );
        }
        sim.run_until_idle();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(sim.executed_events(), 3);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulator::new(0);
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        sim.schedule_in(
            Nanos::from_nanos(1),
            Box::new(move |sim| {
                let h2 = h.clone();
                sim.schedule_in(
                    Nanos::from_nanos(1),
                    Box::new(move |_| {
                        *h2.borrow_mut() += 1;
                    }),
                );
                *h.borrow_mut() += 1;
            }),
        );
        let end = sim.run_until_idle();
        assert_eq!(*hits.borrow(), 2);
        assert_eq!(end.as_nanos(), 2);
    }

    #[test]
    fn periodic_timer_ticks_until_stopped() {
        let mut sim = Simulator::new(0);
        let ticks: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(vec![]));
        let t = ticks.clone();
        sim.schedule_every(Nanos::from_nanos(10), move |sim| {
            t.borrow_mut().push(sim.now().as_nanos());
            t.borrow().len() < 4
        });
        sim.run_until_idle();
        assert_eq!(*ticks.borrow(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn periodic_timer_first_tick_is_cancellable() {
        let mut sim = Simulator::new(0);
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        let id = sim.schedule_every(Nanos::from_nanos(10), move |_| {
            *h.borrow_mut() += 1;
            true
        });
        sim.cancel(id);
        sim.run_until_idle();
        assert_eq!(*hits.borrow(), 0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new(0);
        let hits = Rc::new(RefCell::new(0u32));
        for t in [5u64, 15] {
            let h = hits.clone();
            sim.schedule_at(
                Nanos::from_nanos(t),
                Box::new(move |_| {
                    *h.borrow_mut() += 1;
                }),
            );
        }
        sim.run_until(Nanos::from_nanos(10));
        assert_eq!(*hits.borrow(), 1);
        assert_eq!(sim.now().as_nanos(), 10);
        sim.run_until_idle();
        assert_eq!(*hits.borrow(), 2);
    }

    #[test]
    fn cancelled_event_does_not_run() {
        let mut sim = Simulator::new(0);
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        let id = sim.schedule_in(
            Nanos::from_nanos(5),
            Box::new(move |_| {
                *h.borrow_mut() += 1;
            }),
        );
        sim.cancel(id);
        sim.run_until_idle();
        assert_eq!(*hits.borrow(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(Nanos::from_nanos(10), Box::new(|_| {}));
        sim.run_until_idle();
        sim.schedule_at(Nanos::from_nanos(5), Box::new(|_| {}));
    }

    #[test]
    fn deterministic_rng() {
        use rand::Rng;
        let mut a = Simulator::new(7);
        let mut b = Simulator::new(7);
        let va: u64 = a.rng().gen();
        let vb: u64 = b.rng().gen();
        assert_eq!(va, vb);
    }
}
