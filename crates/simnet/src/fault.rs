//! Fault injection: partitions, probabilistic loss, duplication, corruption,
//! reordering jitter, host crashes, and added delay.
//!
//! Faults are applied at frame-delivery time by the [`Network`](crate::Network).
//! All link knobs are *directional*: `set_loss(a, b, p)` only affects frames
//! from `a` to `b`. [`FaultPlane::partition`] cuts both directions at once
//! since a network partition is symmetric, and [`FaultPlane::crash_host`]
//! blackholes every frame to or from the crashed host until
//! [`FaultPlane::restart_host`].

use std::collections::{HashMap, HashSet};

use crate::host::HostId;
use crate::time::Nanos;

/// Uniform `[0, 1)` samples consumed by one fault-plane decision.
///
/// The [`Network`](crate::Network) draws all four from the simulator RNG for
/// every frame — whether or not any fault rule is installed — so the random
/// stream (and therefore the whole run) is a pure function of the seed and
/// the workload, independent of when chaos rules are toggled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultCoins {
    /// Sample judged against the loss probability.
    pub drop: f64,
    /// Sample judged against the duplication probability.
    pub duplicate: f64,
    /// Sample judged against the corruption probability.
    pub corrupt: f64,
    /// Sample scaling the reordering-jitter bound.
    pub jitter: f64,
}

impl FaultCoins {
    /// Coins that trigger no probabilistic fault (useful in tests).
    pub fn fair() -> FaultCoins {
        FaultCoins {
            drop: 1.0,
            duplicate: 1.0,
            corrupt: 1.0,
            jitter: 0.0,
        }
    }
}

/// The verdict for a frame about to be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver, possibly after an extra delay, duplicated, or damaged.
    Deliver {
        /// Additional delay injected on top of the link model (fixed
        /// per-link delay plus the jittered reordering component).
        extra_delay: Nanos,
        /// Deliver a second copy of the frame as well.
        duplicate: bool,
        /// Flip payload bits in flight (integrity checks downstream must
        /// catch this).
        corrupt: bool,
    },
    /// Silently drop the frame.
    Drop,
}

/// Mutable record of injected network faults.
#[derive(Debug, Default)]
pub struct FaultPlane {
    partitioned: HashSet<(HostId, HostId)>,
    loss: HashMap<(HostId, HostId), f64>,
    duplication: HashMap<(HostId, HostId), f64>,
    corruption: HashMap<(HostId, HostId), f64>,
    jitter: HashMap<(HostId, HostId), Nanos>,
    delay: HashMap<(HostId, HostId), Nanos>,
    crashed: HashSet<HostId>,
}

impl FaultPlane {
    /// Creates a fault-free plane.
    pub fn new() -> FaultPlane {
        FaultPlane::default()
    }

    /// Cuts connectivity between `a` and `b` in both directions.
    pub fn partition(&mut self, a: HostId, b: HostId) {
        self.partitioned.insert((a, b));
        self.partitioned.insert((b, a));
    }

    /// Restores connectivity between `a` and `b`.
    pub fn heal(&mut self, a: HostId, b: HostId) {
        self.partitioned.remove(&(a, b));
        self.partitioned.remove(&(b, a));
    }

    /// True if frames from `a` to `b` are currently blackholed.
    pub fn is_partitioned(&self, a: HostId, b: HostId) -> bool {
        self.partitioned.contains(&(a, b))
    }

    /// Crashes `host`: every frame to or from it is dropped, modelling a
    /// machine that has lost power (its NIC neither sends nor receives).
    pub fn crash_host(&mut self, host: HostId) {
        self.crashed.insert(host);
    }

    /// Restarts a crashed host, restoring its connectivity.
    pub fn restart_host(&mut self, host: HostId) {
        self.crashed.remove(&host);
    }

    /// True if `host` is currently crashed.
    pub fn is_crashed(&self, host: HostId) -> bool {
        self.crashed.contains(&host)
    }

    /// Drops frames from `src` to `dst` with probability `p` (0.0..=1.0).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn set_loss(&mut self, src: HostId, dst: HostId, p: f64) {
        Self::set_prob(&mut self.loss, "loss", src, dst, p);
    }

    /// Duplicates frames from `src` to `dst` with probability `p`: the
    /// frame is delivered twice, each copy serialized separately on the
    /// link.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn set_duplication(&mut self, src: HostId, dst: HostId, p: f64) {
        Self::set_prob(&mut self.duplication, "duplication", src, dst, p);
    }

    /// Corrupts the payload of frames from `src` to `dst` with probability
    /// `p`. Corruption flips bits in the carried bytes at delivery; it is
    /// the job of downstream integrity checks (MACs in `bft-crypto`,
    /// message framing) to detect and discard the damage.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn set_corruption(&mut self, src: HostId, dst: HostId, p: f64) {
        Self::set_prob(&mut self.corruption, "corruption", src, dst, p);
    }

    /// Adds uniform random extra delay in `[0, bound]` to frames from `src`
    /// to `dst`, which reorders frames whose nominal arrivals are closer
    /// together than the bound.
    pub fn set_reorder_jitter(&mut self, src: HostId, dst: HostId, bound: Nanos) {
        if bound == Nanos::ZERO {
            self.jitter.remove(&(src, dst));
        } else {
            self.jitter.insert((src, dst), bound);
        }
    }

    /// Adds `d` of extra one-way delay to frames from `src` to `dst`.
    pub fn set_extra_delay(&mut self, src: HostId, dst: HostId, d: Nanos) {
        if d == Nanos::ZERO {
            self.delay.remove(&(src, dst));
        } else {
            self.delay.insert((src, dst), d);
        }
    }

    fn set_prob(
        map: &mut HashMap<(HostId, HostId), f64>,
        what: &str,
        src: HostId,
        dst: HostId,
        p: f64,
    ) {
        assert!(
            (0.0..=1.0).contains(&p),
            "{what} probability must be in [0,1]"
        );
        if p == 0.0 {
            map.remove(&(src, dst));
        } else {
            map.insert((src, dst), p);
        }
    }

    /// Decides the fate of one frame from `src` to `dst`.
    ///
    /// `coins` must be uniform samples from `[0, 1)` drawn from the
    /// simulator's RNG so runs stay deterministic.
    pub fn judge(&self, src: HostId, dst: HostId, coins: &FaultCoins) -> FaultVerdict {
        if self.is_partitioned(src, dst) || self.is_crashed(src) || self.is_crashed(dst) {
            return FaultVerdict::Drop;
        }
        if let Some(&p) = self.loss.get(&(src, dst)) {
            if coins.drop < p {
                return FaultVerdict::Drop;
            }
        }
        let duplicate = self
            .duplication
            .get(&(src, dst))
            .is_some_and(|&p| coins.duplicate < p);
        let corrupt = self
            .corruption
            .get(&(src, dst))
            .is_some_and(|&p| coins.corrupt < p);
        let mut extra_delay = self.delay.get(&(src, dst)).copied().unwrap_or(Nanos::ZERO);
        if let Some(&bound) = self.jitter.get(&(src, dst)) {
            extra_delay += Nanos::from_nanos((bound.as_nanos() as f64 * coins.jitter) as u64);
        }
        FaultVerdict::Deliver {
            extra_delay,
            duplicate,
            corrupt,
        }
    }

    /// Removes every fault.
    pub fn clear(&mut self) {
        self.partitioned.clear();
        self.loss.clear();
        self.duplication.clear();
        self.corruption.clear();
        self.jitter.clear();
        self.delay.clear();
        self.crashed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: HostId = HostId(0);
    const B: HostId = HostId(1);

    fn clean_deliver() -> FaultVerdict {
        FaultVerdict::Deliver {
            extra_delay: Nanos::ZERO,
            duplicate: false,
            corrupt: false,
        }
    }

    #[test]
    fn default_delivers() {
        let f = FaultPlane::new();
        assert_eq!(f.judge(A, B, &FaultCoins::fair()), clean_deliver());
    }

    #[test]
    fn partition_is_symmetric_and_healable() {
        let mut f = FaultPlane::new();
        f.partition(A, B);
        assert_eq!(f.judge(A, B, &FaultCoins::fair()), FaultVerdict::Drop);
        assert_eq!(f.judge(B, A, &FaultCoins::fair()), FaultVerdict::Drop);
        f.heal(A, B);
        assert_eq!(f.judge(A, B, &FaultCoins::fair()), clean_deliver());
    }

    #[test]
    fn loss_is_directional_and_thresholded() {
        let mut f = FaultPlane::new();
        f.set_loss(A, B, 0.3);
        let mut low = FaultCoins::fair();
        low.drop = 0.2;
        assert_eq!(f.judge(A, B, &low), FaultVerdict::Drop);
        let mut high = FaultCoins::fair();
        high.drop = 0.4;
        assert_eq!(f.judge(A, B, &high), clean_deliver());
        // Reverse direction unaffected.
        assert_eq!(f.judge(B, A, &low), clean_deliver());
        // Setting zero removes the rule.
        f.set_loss(A, B, 0.0);
        assert_eq!(f.judge(A, B, &low), clean_deliver());
    }

    #[test]
    fn duplication_and_corruption_flags_set() {
        let mut f = FaultPlane::new();
        f.set_duplication(A, B, 0.5);
        f.set_corruption(A, B, 0.5);
        let mut coins = FaultCoins::fair();
        coins.duplicate = 0.1;
        coins.corrupt = 0.1;
        assert_eq!(
            f.judge(A, B, &coins),
            FaultVerdict::Deliver {
                extra_delay: Nanos::ZERO,
                duplicate: true,
                corrupt: true,
            }
        );
        // Independent directions and thresholds.
        assert_eq!(f.judge(B, A, &coins), clean_deliver());
    }

    #[test]
    fn jitter_scales_with_coin_and_adds_to_fixed_delay() {
        let mut f = FaultPlane::new();
        f.set_extra_delay(A, B, Nanos::from_micros(10));
        f.set_reorder_jitter(A, B, Nanos::from_micros(100));
        let mut coins = FaultCoins::fair();
        coins.jitter = 0.25;
        assert_eq!(
            f.judge(A, B, &coins),
            FaultVerdict::Deliver {
                extra_delay: Nanos::from_micros(35),
                duplicate: false,
                corrupt: false,
            }
        );
    }

    #[test]
    fn crashed_host_blackholes_both_directions() {
        let mut f = FaultPlane::new();
        f.crash_host(B);
        assert!(f.is_crashed(B));
        assert_eq!(f.judge(A, B, &FaultCoins::fair()), FaultVerdict::Drop);
        assert_eq!(f.judge(B, A, &FaultCoins::fair()), FaultVerdict::Drop);
        // Third parties unaffected.
        assert_eq!(f.judge(A, HostId(2), &FaultCoins::fair()), clean_deliver());
        f.restart_host(B);
        assert!(!f.is_crashed(B));
        assert_eq!(f.judge(A, B, &FaultCoins::fair()), clean_deliver());
    }

    #[test]
    fn extra_delay_applied() {
        let mut f = FaultPlane::new();
        f.set_extra_delay(A, B, Nanos::from_micros(10));
        assert_eq!(
            f.judge(A, B, &FaultCoins::fair()),
            FaultVerdict::Deliver {
                extra_delay: Nanos::from_micros(10),
                duplicate: false,
                corrupt: false,
            }
        );
    }

    #[test]
    fn clear_removes_everything() {
        let mut f = FaultPlane::new();
        f.partition(A, B);
        f.set_loss(B, A, 1.0);
        f.set_duplication(A, B, 1.0);
        f.set_corruption(A, B, 1.0);
        f.set_reorder_jitter(A, B, Nanos::from_micros(1));
        f.set_extra_delay(A, B, Nanos::from_nanos(5));
        f.crash_host(A);
        f.clear();
        let mut coins = FaultCoins::fair();
        coins.drop = 0.0;
        coins.duplicate = 0.0;
        coins.corrupt = 0.0;
        assert_eq!(f.judge(A, B, &coins), clean_deliver());
        assert_eq!(f.judge(B, A, &coins), clean_deliver());
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        let mut f = FaultPlane::new();
        f.set_loss(A, B, 1.5);
    }
}
