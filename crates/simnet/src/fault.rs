//! Fault injection: partitions, probabilistic loss, and added delay.
//!
//! Faults are applied at frame-delivery time by the [`Network`](crate::Network).
//! All knobs are *directional*: `set_loss(a, b, p)` only affects frames from
//! `a` to `b`. [`FaultPlane::partition`] cuts both directions at once since a
//! network partition is symmetric.

use std::collections::{HashMap, HashSet};

use crate::host::HostId;
use crate::time::Nanos;

/// The verdict for a frame about to be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver, possibly after an extra delay.
    Deliver {
        /// Additional delay injected on top of the link model.
        extra_delay: Nanos,
    },
    /// Silently drop the frame.
    Drop,
}

/// Mutable record of injected network faults.
#[derive(Debug, Default)]
pub struct FaultPlane {
    partitioned: HashSet<(HostId, HostId)>,
    loss: HashMap<(HostId, HostId), f64>,
    delay: HashMap<(HostId, HostId), Nanos>,
}

impl FaultPlane {
    /// Creates a fault-free plane.
    pub fn new() -> FaultPlane {
        FaultPlane::default()
    }

    /// Cuts connectivity between `a` and `b` in both directions.
    pub fn partition(&mut self, a: HostId, b: HostId) {
        self.partitioned.insert((a, b));
        self.partitioned.insert((b, a));
    }

    /// Restores connectivity between `a` and `b`.
    pub fn heal(&mut self, a: HostId, b: HostId) {
        self.partitioned.remove(&(a, b));
        self.partitioned.remove(&(b, a));
    }

    /// True if frames from `a` to `b` are currently blackholed.
    pub fn is_partitioned(&self, a: HostId, b: HostId) -> bool {
        self.partitioned.contains(&(a, b))
    }

    /// Drops frames from `src` to `dst` with probability `p` (0.0..=1.0).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn set_loss(&mut self, src: HostId, dst: HostId, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        if p == 0.0 {
            self.loss.remove(&(src, dst));
        } else {
            self.loss.insert((src, dst), p);
        }
    }

    /// Adds `d` of extra one-way delay to frames from `src` to `dst`.
    pub fn set_extra_delay(&mut self, src: HostId, dst: HostId, d: Nanos) {
        if d == Nanos::ZERO {
            self.delay.remove(&(src, dst));
        } else {
            self.delay.insert((src, dst), d);
        }
    }

    /// Decides the fate of one frame from `src` to `dst`.
    ///
    /// `coin` must be a uniform sample from `[0, 1)` drawn from the
    /// simulator's RNG so runs stay deterministic.
    pub fn judge(&self, src: HostId, dst: HostId, coin: f64) -> FaultVerdict {
        if self.is_partitioned(src, dst) {
            return FaultVerdict::Drop;
        }
        if let Some(&p) = self.loss.get(&(src, dst)) {
            if coin < p {
                return FaultVerdict::Drop;
            }
        }
        let extra_delay = self.delay.get(&(src, dst)).copied().unwrap_or(Nanos::ZERO);
        FaultVerdict::Deliver { extra_delay }
    }

    /// Removes every fault.
    pub fn clear(&mut self) {
        self.partitioned.clear();
        self.loss.clear();
        self.delay.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: HostId = HostId(0);
    const B: HostId = HostId(1);

    #[test]
    fn default_delivers() {
        let f = FaultPlane::new();
        assert_eq!(
            f.judge(A, B, 0.5),
            FaultVerdict::Deliver {
                extra_delay: Nanos::ZERO
            }
        );
    }

    #[test]
    fn partition_is_symmetric_and_healable() {
        let mut f = FaultPlane::new();
        f.partition(A, B);
        assert_eq!(f.judge(A, B, 0.5), FaultVerdict::Drop);
        assert_eq!(f.judge(B, A, 0.5), FaultVerdict::Drop);
        f.heal(A, B);
        assert!(matches!(f.judge(A, B, 0.5), FaultVerdict::Deliver { .. }));
    }

    #[test]
    fn loss_is_directional_and_thresholded() {
        let mut f = FaultPlane::new();
        f.set_loss(A, B, 0.3);
        assert_eq!(f.judge(A, B, 0.2), FaultVerdict::Drop);
        assert!(matches!(f.judge(A, B, 0.4), FaultVerdict::Deliver { .. }));
        // Reverse direction unaffected.
        assert!(matches!(f.judge(B, A, 0.0), FaultVerdict::Deliver { .. }));
        // Setting zero removes the rule.
        f.set_loss(A, B, 0.0);
        assert!(matches!(f.judge(A, B, 0.0), FaultVerdict::Deliver { .. }));
    }

    #[test]
    fn extra_delay_applied() {
        let mut f = FaultPlane::new();
        f.set_extra_delay(A, B, Nanos::from_micros(10));
        assert_eq!(
            f.judge(A, B, 0.9),
            FaultVerdict::Deliver {
                extra_delay: Nanos::from_micros(10)
            }
        );
    }

    #[test]
    fn clear_removes_everything() {
        let mut f = FaultPlane::new();
        f.partition(A, B);
        f.set_loss(B, A, 1.0);
        f.set_extra_delay(A, B, Nanos::from_nanos(5));
        f.clear();
        assert_eq!(
            f.judge(A, B, 0.0),
            FaultVerdict::Deliver {
                extra_delay: Nanos::ZERO
            }
        );
        assert!(matches!(f.judge(B, A, 0.0), FaultVerdict::Deliver { .. }));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        let mut f = FaultPlane::new();
        f.set_loss(A, B, 1.5);
    }
}
