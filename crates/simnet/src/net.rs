//! The network: hosts, links, frame routing, and fault application.
//!
//! [`Network`] is a cheaply cloneable handle (an `Rc` internally) shared by
//! every protocol layer in a simulation. Protocol endpoints *bind* a handler
//! to an [`Addr`]; [`Network::send`] models serialization on the connecting
//! link (store-and-forward at message granularity, per-segment header
//! overhead, full-duplex but serialized per direction), applies injected
//! faults, and schedules delivery to the destination handler.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rand::Rng;

use crate::fault::{FaultCoins, FaultPlane, FaultVerdict};
use crate::frame::{Addr, Frame};
use crate::host::{CpuModel, Host, HostId, HostRef};
use crate::metrics::Metrics;
use crate::pool::BytePool;
use crate::sim::Simulator;
use crate::time::{Bandwidth, Nanos};

/// A frame-delivery callback registered on an address.
pub type FrameHandler = Box<dyn FnMut(&mut Simulator, Frame)>;

/// Identifier of a link within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub u32);

/// Static parameters of a point-to-point link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Bandwidth per direction (links are full-duplex).
    pub bandwidth: Bandwidth,
    /// One-way propagation delay.
    pub propagation: Nanos,
    /// Maximum transmission unit (payload bytes per wire segment).
    pub mtu: usize,
    /// Header bytes charged per segment (Ethernet + IP-level framing).
    pub per_segment_overhead: usize,
}

impl LinkSpec {
    /// The paper's testbed link: 10 Gbps full-duplex RoCE-capable Ethernet.
    pub fn ten_gbe() -> LinkSpec {
        LinkSpec {
            bandwidth: Bandwidth::gbps(10),
            propagation: Nanos::from_micros(1),
            mtu: 1500,
            per_segment_overhead: 58,
        }
    }

    /// Bytes actually occupying the wire for a `payload`-byte message.
    pub fn wire_size(&self, payload: usize) -> usize {
        let segments = payload.div_ceil(self.mtu).max(1);
        payload + segments * self.per_segment_overhead
    }

    /// Pure serialization time of a `payload`-byte message on this link.
    pub fn serialize_time(&self, payload: usize) -> Nanos {
        self.bandwidth.transmit_time(self.wire_size(payload))
    }
}

impl Default for LinkSpec {
    fn default() -> LinkSpec {
        LinkSpec::ten_gbe()
    }
}

#[derive(Debug)]
struct Link {
    /// Per-direction specs, keyed by source end (0 = ends.0 → ends.1).
    /// Symmetric links store the same spec twice; geo links built from a
    /// [`crate::LatencyMatrix`] may differ per direction.
    spec: [LinkSpec; 2],
    ends: (HostId, HostId),
    /// Wire-busy horizon for each direction, keyed by source end (0 = ends.0).
    busy_until: [Nanos; 2],
    bytes_carried: u64,
}

/// Aggregate delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames delivered to a bound handler.
    pub delivered: u64,
    /// Frames dropped by faults (partition, loss, or host crash).
    pub dropped_by_fault: u64,
    /// Extra frame copies injected by the duplication fault.
    pub duplicated_by_fault: u64,
    /// Frames whose payload was damaged by the corruption fault.
    pub corrupted_by_fault: u64,
    /// Frames that arrived at an address with no bound handler.
    pub unroutable: u64,
}

struct NetInner {
    hosts: Vec<HostRef>,
    links: Vec<Link>,
    adjacency: HashMap<(HostId, HostId), usize>,
    handlers: HashMap<Addr, Rc<RefCell<FrameHandler>>>,
    faults: FaultPlane,
    /// Latency of the host-local loopback path (same-host frames).
    loopback_delay: Nanos,
    /// Serialization rate of the loopback path (RoCE loopback passes
    /// through the adapter at port speed; kernel loopback is bounded by
    /// memory bandwidth). `None` = infinitely fast.
    loopback_bandwidth: Option<Bandwidth>,
    /// Per-host loopback transmit horizon.
    loopback_busy: std::collections::HashMap<HostId, Nanos>,
    stats: NetStats,
    next_ephemeral_port: u32,
    metrics: Metrics,
    pool: BytePool,
}

/// Shared handle to the simulated network.
///
/// # Examples
///
/// ```
/// use simnet::{Addr, CpuModel, Frame, LinkSpec, Network, Simulator};
///
/// let mut sim = Simulator::new(1);
/// let net = Network::new();
/// let a = net.add_host("alpha", 4, CpuModel::xeon_v2());
/// let b = net.add_host("beta", 4, CpuModel::xeon_v2());
/// net.connect(a, b, LinkSpec::ten_gbe());
///
/// let dst = Addr::new(b, 7);
/// net.bind(dst, Box::new(|_sim, frame| {
///     let msg: String = frame.into_payload().expect("string payload");
///     assert_eq!(msg, "ping");
/// }));
/// net.send(&mut sim, Frame::new(Addr::new(a, 99), dst, 64, String::from("ping")));
/// sim.run_until_idle();
/// assert_eq!(net.stats().delivered, 1);
/// ```
#[derive(Clone)]
pub struct Network {
    inner: Rc<RefCell<NetInner>>,
}

impl Default for Network {
    fn default() -> Network {
        Network::new()
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Network")
            .field("hosts", &inner.hosts.len())
            .field("links", &inner.links.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Network {
        Network {
            inner: Rc::new(RefCell::new(NetInner {
                hosts: Vec::new(),
                links: Vec::new(),
                adjacency: HashMap::new(),
                handlers: HashMap::new(),
                faults: FaultPlane::new(),
                loopback_delay: Nanos::from_micros(5),
                loopback_bandwidth: Some(Bandwidth::gbps(10)),
                loopback_busy: std::collections::HashMap::new(),
                stats: NetStats::default(),
                next_ephemeral_port: 49_152,
                metrics: Metrics::new(),
                pool: BytePool::new("net"),
            })),
        }
    }

    /// Adds a host with `cores` cores and the given CPU model; returns its id.
    pub fn add_host(&self, name: impl Into<String>, cores: usize, cpu: CpuModel) -> HostId {
        let mut inner = self.inner.borrow_mut();
        let id = HostId(inner.hosts.len() as u32);
        let mut host = Host::new(id, name, cores, cpu);
        host.attach_metrics(inner.metrics.clone());
        inner.hosts.push(Rc::new(RefCell::new(host)));
        id
    }

    /// Handle to the shared metrics registry every layer of this network
    /// reports into. Clones are cheap and refer to the same registry.
    pub fn metrics(&self) -> Metrics {
        self.inner.borrow().metrics.clone()
    }

    /// Returns the shared handle to a host.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn host(&self, id: HostId) -> HostRef {
        self.inner.borrow().hosts[id.0 as usize].clone()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.inner.borrow().hosts.len()
    }

    /// Connects two hosts with a full-duplex link.
    ///
    /// # Panics
    ///
    /// Panics if the hosts are already connected or if `a == b`.
    pub fn connect(&self, a: HostId, b: HostId, spec: LinkSpec) -> LinkId {
        self.connect_asymmetric(a, b, spec.clone(), spec)
    }

    /// Connects two hosts with a link whose two directions have different
    /// specs (`spec_ab` for `a → b`, `spec_ba` for `b → a`) — the shape of
    /// real inter-region WAN paths, whose routes (and thus latency and
    /// capacity) differ per direction.
    ///
    /// # Panics
    ///
    /// Panics if the hosts are already connected or if `a == b`.
    pub fn connect_asymmetric(
        &self,
        a: HostId,
        b: HostId,
        spec_ab: LinkSpec,
        spec_ba: LinkSpec,
    ) -> LinkId {
        assert_ne!(a, b, "cannot link a host to itself (loopback is implicit)");
        let mut inner = self.inner.borrow_mut();
        assert!(
            !inner.adjacency.contains_key(&(a, b)),
            "hosts {a} and {b} are already connected"
        );
        let idx = inner.links.len();
        inner.links.push(Link {
            spec: [spec_ab, spec_ba],
            ends: (a, b),
            busy_until: [Nanos::ZERO; 2],
            bytes_carried: 0,
        });
        inner.adjacency.insert((a, b), idx);
        inner.adjacency.insert((b, a), idx);
        LinkId(idx as u32)
    }

    /// The spec governing frames sent from `src` to `dst`, if the pair is
    /// connected.
    pub fn link_spec_between(&self, src: HostId, dst: HostId) -> Option<LinkSpec> {
        let inner = self.inner.borrow();
        let idx = *inner.adjacency.get(&(src, dst))?;
        let link = &inner.links[idx];
        let dir = usize::from(src != link.ends.0);
        Some(link.spec[dir].clone())
    }

    /// Connects every pair of hosts with identically specified links
    /// (full mesh), skipping pairs already connected.
    pub fn connect_full_mesh(&self, spec: LinkSpec) {
        let n = self.num_hosts() as u32;
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (HostId(i), HostId(j));
                if !self.inner.borrow().adjacency.contains_key(&(a, b)) {
                    self.connect(a, b, spec.clone());
                }
            }
        }
    }

    /// Registers `handler` for frames addressed to `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the address is already bound.
    pub fn bind(&self, addr: Addr, handler: FrameHandler) {
        let mut inner = self.inner.borrow_mut();
        let prev = inner.handlers.insert(addr, Rc::new(RefCell::new(handler)));
        assert!(prev.is_none(), "address {addr} already bound");
    }

    /// Removes the handler bound to `addr` (no-op if unbound).
    pub fn unbind(&self, addr: Addr) {
        self.inner.borrow_mut().handlers.remove(&addr);
    }

    /// True if a handler is bound to `addr`.
    pub fn is_bound(&self, addr: Addr) -> bool {
        self.inner.borrow().handlers.contains_key(&addr)
    }

    /// Allocates a fresh ephemeral port number on `host`.
    pub fn ephemeral_port(&self, host: HostId) -> Addr {
        let mut inner = self.inner.borrow_mut();
        let port = inner.next_ephemeral_port;
        inner.next_ephemeral_port += 1;
        Addr::new(host, port)
    }

    /// Sends a frame, modelling link serialization, propagation, and faults.
    /// Delivery (if any) is scheduled on `sim`.
    ///
    /// Four fault coins are drawn from the simulator RNG for *every* frame,
    /// whether or not any fault rule is installed, so the random stream is
    /// independent of when chaos rules are toggled and a seeded run replays
    /// byte-identically.
    ///
    /// # Panics
    ///
    /// Panics if the two hosts are distinct and not connected by a link.
    pub fn send(&self, sim: &mut Simulator, frame: Frame) {
        let coins = {
            let rng = sim.rng();
            FaultCoins {
                drop: rng.gen(),
                duplicate: rng.gen(),
                corrupt: rng.gen(),
                jitter: rng.gen(),
            }
        };
        let verdict = self
            .inner
            .borrow()
            .faults
            .judge(frame.src.host, frame.dst.host, &coins);
        match verdict {
            FaultVerdict::Drop => {
                let mut inner = self.inner.borrow_mut();
                inner.stats.dropped_by_fault += 1;
                inner.metrics.incr(&format!(
                    "net.{}.{}.faults_dropped",
                    frame.src.host, frame.dst.host
                ));
            }
            FaultVerdict::Deliver {
                extra_delay,
                duplicate,
                corrupt,
            } => {
                let mut frame = frame;
                if corrupt {
                    frame.corrupted = true;
                    let mut inner = self.inner.borrow_mut();
                    inner.stats.corrupted_by_fault += 1;
                    inner.metrics.incr(&format!(
                        "net.{}.{}.faults_corrupted",
                        frame.src.host, frame.dst.host
                    ));
                }
                if duplicate {
                    let copy = frame.clone();
                    {
                        let mut inner = self.inner.borrow_mut();
                        inner.stats.duplicated_by_fault += 1;
                        inner.metrics.incr(&format!(
                            "net.{}.{}.faults_duplicated",
                            frame.src.host, frame.dst.host
                        ));
                    }
                    self.transmit(sim, copy, extra_delay);
                }
                self.transmit(sim, frame, extra_delay);
            }
        }
    }

    /// Serializes one frame copy on its link (or the loopback path) and
    /// schedules its delivery.
    fn transmit(&self, sim: &mut Simulator, frame: Frame, extra_delay: Nanos) {
        let now = sim.now();
        let deliver_at;
        {
            let mut inner = self.inner.borrow_mut();
            if frame.src.host == frame.dst.host {
                let ready = match inner.loopback_bandwidth {
                    Some(bw) => {
                        let ser = bw.transmit_time(frame.wire_bytes);
                        let busy = inner
                            .loopback_busy
                            .entry(frame.src.host)
                            .or_insert(Nanos::ZERO);
                        let start = now.max(*busy);
                        *busy = start + ser;
                        *busy
                    }
                    None => now,
                };
                deliver_at = ready + inner.loopback_delay + extra_delay;
            } else {
                let idx = *inner
                    .adjacency
                    .get(&(frame.src.host, frame.dst.host))
                    .unwrap_or_else(|| {
                        panic!("no link between {} and {}", frame.src.host, frame.dst.host)
                    });
                let link = &mut inner.links[idx];
                let dir = usize::from(frame.src.host != link.ends.0);
                let spec = &link.spec[dir];
                let wire = spec.wire_size(frame.wire_bytes);
                let ser = spec.bandwidth.transmit_time(wire);
                let start = now.max(link.busy_until[dir]);
                link.busy_until[dir] = start + ser;
                link.bytes_carried += wire as u64;
                deliver_at = link.busy_until[dir] + spec.propagation + extra_delay;
            }
        }
        let net = self.clone();
        // Deliveries shard by destination host: the handler runs (and mostly
        // reschedules) on that host, keeping event-queue traffic local.
        let shard = frame.dst.host.0;
        sim.schedule_at_on(
            shard,
            deliver_at,
            Box::new(move |sim| net.deliver(sim, frame)),
        );
    }

    fn deliver(&self, sim: &mut Simulator, frame: Frame) {
        let handler = {
            let mut inner = self.inner.borrow_mut();
            match inner.handlers.get(&frame.dst).cloned() {
                Some(h) => {
                    inner.stats.delivered += 1;
                    h
                }
                None => {
                    inner.stats.unroutable += 1;
                    return;
                }
            }
        };
        // The handler may itself send frames or (un)bind addresses, so the
        // network borrow must be released before invoking it.
        (handler.borrow_mut())(sim, frame);
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> NetStats {
        self.inner.borrow().stats
    }

    /// Total bytes carried by a link so far.
    pub fn link_bytes(&self, id: LinkId) -> u64 {
        self.inner.borrow().links[id.0 as usize].bytes_carried
    }

    /// Sets the latency of the implicit same-host loopback path.
    pub fn set_loopback_delay(&self, d: Nanos) {
        self.inner.borrow_mut().loopback_delay = d;
    }

    /// Sets the serialization rate of the loopback path (`None` =
    /// infinitely fast).
    pub fn set_loopback_bandwidth(&self, bw: Option<Bandwidth>) {
        self.inner.borrow_mut().loopback_bandwidth = bw;
    }

    /// Applies a function to the fault plane (partitions, loss, delay).
    pub fn with_faults<R>(&self, f: impl FnOnce(&mut FaultPlane) -> R) -> R {
        f(&mut self.inner.borrow_mut().faults)
    }

    /// The shared byte-buffer pool transports recycle per-message buffers
    /// through. Clones share one freelist.
    pub fn buffer_pool(&self) -> BytePool {
        self.inner.borrow().pool.clone()
    }

    /// Publishes the simulator's `sim.events_*` queue gauges and this
    /// network's `pool.*` occupancy gauges into the shared metrics
    /// registry, so snapshots capture event-core and allocation health.
    pub fn publish_sim_gauges(&self, sim: &Simulator) {
        let m = self.metrics();
        let q = sim.queue_stats();
        m.set_gauge("sim.events_scheduled", q.scheduled as i64);
        m.set_gauge("sim.events_executed", sim.executed_events() as i64);
        m.set_gauge("sim.events_cancelled", q.cancelled as i64);
        m.set_gauge("sim.events_tombstones_purged", q.tombstones_purged as i64);
        m.set_gauge("sim.events_tombstones_live", q.tombstones as i64);
        m.set_gauge("sim.events_compactions", q.compactions as i64);
        m.set_gauge("sim.events_pending", q.pending as i64);
        m.set_gauge("sim.events_high_water", q.high_water as i64);
        m.set_gauge("sim.events_shards", sim.queue_shards() as i64);
        m.set_gauge("sim.events_run_hits", q.run_hits as i64);
        m.set_gauge("sim.events_merges", q.merges as i64);
        m.set_gauge("sim.events_index_stale", q.index_stale as i64);
        self.inner.borrow().pool.publish(&m);
    }

    /// Charges `work` of CPU time on `core` of `host`, returning completion
    /// time. Convenience wrapper over [`Host::exec`].
    pub fn exec_on(
        &self,
        sim: &Simulator,
        host: HostId,
        core: crate::host::CoreId,
        work: Nanos,
    ) -> Nanos {
        self.host(host).borrow_mut().exec(sim.now(), core, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn two_host_net() -> (Simulator, Network, HostId, HostId) {
        let sim = Simulator::new(7);
        let net = Network::new();
        let a = net.add_host("a", 2, CpuModel::xeon_v2());
        let b = net.add_host("b", 2, CpuModel::xeon_v2());
        net.connect(a, b, LinkSpec::ten_gbe());
        (sim, net, a, b)
    }

    #[test]
    fn frame_delivery_latency_matches_link_model() {
        let (mut sim, net, a, b) = two_host_net();
        let spec = LinkSpec::ten_gbe();
        let arrived = Rc::new(RefCell::new(None));
        let arr = arrived.clone();
        let dst = Addr::new(b, 1);
        net.bind(
            dst,
            Box::new(move |sim, _f| {
                *arr.borrow_mut() = Some(sim.now());
            }),
        );
        net.send(&mut sim, Frame::new(Addr::new(a, 9), dst, 1500, ()));
        sim.run_until_idle();
        let expect = spec.serialize_time(1500) + spec.propagation;
        assert_eq!(arrived.borrow().unwrap(), expect);
    }

    #[test]
    fn back_to_back_frames_serialize_on_the_wire() {
        let (mut sim, net, a, b) = two_host_net();
        let times = Rc::new(RefCell::new(Vec::new()));
        let t = times.clone();
        let dst = Addr::new(b, 1);
        net.bind(dst, Box::new(move |sim, _f| t.borrow_mut().push(sim.now())));
        for _ in 0..2 {
            net.send(&mut sim, Frame::new(Addr::new(a, 9), dst, 1500, ()));
        }
        sim.run_until_idle();
        let times = times.borrow();
        let spec = LinkSpec::ten_gbe();
        let ser = spec.serialize_time(1500);
        assert_eq!(times[0], ser + spec.propagation);
        // Second frame waits for the first to finish serializing.
        assert_eq!(times[1], ser * 2 + spec.propagation);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let (mut sim, net, a, b) = two_host_net();
        let times = Rc::new(RefCell::new(Vec::new()));
        for (src, dst) in [(a, b), (b, a)] {
            let t = times.clone();
            let addr = Addr::new(dst, 1);
            net.bind(
                addr,
                Box::new(move |sim, _f| t.borrow_mut().push(sim.now())),
            );
            net.send(&mut sim, Frame::new(Addr::new(src, 9), addr, 1500, ()));
        }
        sim.run_until_idle();
        let times = times.borrow();
        // Full duplex: both arrive at the same instant.
        assert_eq!(times[0], times[1]);
    }

    #[test]
    fn partition_drops_frames() {
        let (mut sim, net, a, b) = two_host_net();
        net.bind(Addr::new(b, 1), Box::new(|_, _| panic!("must not deliver")));
        net.with_faults(|f| f.partition(a, b));
        net.send(
            &mut sim,
            Frame::new(Addr::new(a, 9), Addr::new(b, 1), 100, ()),
        );
        sim.run_until_idle();
        assert_eq!(net.stats().dropped_by_fault, 1);
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn duplication_delivers_twice_and_charges_link_metrics() {
        let (mut sim, net, a, b) = two_host_net();
        let count = Rc::new(RefCell::new(0u32));
        let c = count.clone();
        let dst = Addr::new(b, 1);
        net.bind(
            dst,
            Box::new(move |_sim, frame| {
                let bytes: Vec<u8> = frame.into_payload().expect("bytes payload");
                assert_eq!(bytes, vec![9u8; 16]);
                *c.borrow_mut() += 1;
            }),
        );
        net.with_faults(|f| f.set_duplication(a, b, 1.0));
        net.send(
            &mut sim,
            Frame::new(Addr::new(a, 9), dst, 16, vec![9u8; 16]),
        );
        sim.run_until_idle();
        assert_eq!(*count.borrow(), 2);
        assert_eq!(net.stats().duplicated_by_fault, 1);
        assert_eq!(net.stats().delivered, 2);
        assert_eq!(net.metrics().counter("net.h0.h1.faults_duplicated"), 1);
    }

    #[test]
    fn corruption_marks_frame_and_charges_link_metrics() {
        let (mut sim, net, a, b) = two_host_net();
        let saw_corrupt = Rc::new(RefCell::new(false));
        let s = saw_corrupt.clone();
        let dst = Addr::new(b, 1);
        net.bind(
            dst,
            Box::new(move |_sim, frame| {
                *s.borrow_mut() = frame.corrupted;
            }),
        );
        net.with_faults(|f| f.set_corruption(a, b, 1.0));
        net.send(&mut sim, Frame::new(Addr::new(a, 9), dst, 16, ()));
        sim.run_until_idle();
        assert!(*saw_corrupt.borrow());
        assert_eq!(net.stats().corrupted_by_fault, 1);
        assert_eq!(net.metrics().counter("net.h0.h1.faults_corrupted"), 1);
    }

    #[test]
    fn drops_are_charged_per_link() {
        let (mut sim, net, a, b) = two_host_net();
        net.with_faults(|f| f.set_loss(a, b, 1.0));
        net.send(
            &mut sim,
            Frame::new(Addr::new(a, 9), Addr::new(b, 1), 100, ()),
        );
        sim.run_until_idle();
        assert_eq!(net.stats().dropped_by_fault, 1);
        assert_eq!(net.metrics().counter("net.h0.h1.faults_dropped"), 1);
        assert_eq!(net.metrics().counter("net.h1.h0.faults_dropped"), 0);
    }

    #[test]
    fn crashed_host_drops_frames_until_restart() {
        let (mut sim, net, a, b) = two_host_net();
        let count = Rc::new(RefCell::new(0u32));
        let c = count.clone();
        let dst = Addr::new(b, 1);
        net.bind(dst, Box::new(move |_, _| *c.borrow_mut() += 1));
        net.with_faults(|f| f.crash_host(b));
        net.send(&mut sim, Frame::new(Addr::new(a, 9), dst, 100, ()));
        sim.run_until_idle();
        assert_eq!(*count.borrow(), 0);
        net.with_faults(|f| f.restart_host(b));
        net.send(&mut sim, Frame::new(Addr::new(a, 9), dst, 100, ()));
        sim.run_until_idle();
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn unbound_address_counts_unroutable() {
        let (mut sim, net, a, b) = two_host_net();
        net.send(
            &mut sim,
            Frame::new(Addr::new(a, 9), Addr::new(b, 1), 100, ()),
        );
        sim.run_until_idle();
        assert_eq!(net.stats().unroutable, 1);
    }

    #[test]
    fn loopback_works_without_a_link() {
        let mut sim = Simulator::new(1);
        let net = Network::new();
        let a = net.add_host("solo", 1, CpuModel::xeon_v2());
        let got = Rc::new(RefCell::new(false));
        let g = got.clone();
        net.bind(
            Addr::new(a, 2),
            Box::new(move |_, _| {
                *g.borrow_mut() = true;
            }),
        );
        net.send(
            &mut sim,
            Frame::new(Addr::new(a, 1), Addr::new(a, 2), 64, ()),
        );
        sim.run_until_idle();
        assert!(*got.borrow());
    }

    #[test]
    fn ephemeral_ports_are_unique() {
        let (_sim, net, a, _b) = two_host_net();
        let p1 = net.ephemeral_port(a);
        let p2 = net.ephemeral_port(a);
        assert_ne!(p1, p2);
    }

    #[test]
    fn handler_can_send_reentrantly() {
        let (mut sim, net, a, b) = two_host_net();
        let done = Rc::new(RefCell::new(false));
        let net2 = net.clone();
        let src_echo = Addr::new(b, 1);
        let back = Addr::new(a, 1);
        net.bind(
            src_echo,
            Box::new(move |sim, f| {
                // Echo the frame back.
                net2.send(sim, Frame::new(f.dst, back, f.wire_bytes, ()));
            }),
        );
        let d = done.clone();
        net.bind(
            back,
            Box::new(move |_, _| {
                *d.borrow_mut() = true;
            }),
        );
        net.send(&mut sim, Frame::new(back, src_echo, 500, ()));
        sim.run_until_idle();
        assert!(*done.borrow());
        assert_eq!(net.stats().delivered, 2);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let (_sim, net, a, _b) = two_host_net();
        net.bind(Addr::new(a, 1), Box::new(|_, _| {}));
        net.bind(Addr::new(a, 1), Box::new(|_, _| {}));
    }

    #[test]
    #[should_panic(expected = "no link between")]
    fn send_without_link_panics() {
        let mut sim = Simulator::new(0);
        let net = Network::new();
        let a = net.add_host("a", 1, CpuModel::xeon_v2());
        let b = net.add_host("b", 1, CpuModel::xeon_v2());
        net.send(
            &mut sim,
            Frame::new(Addr::new(a, 1), Addr::new(b, 1), 10, ()),
        );
    }

    #[test]
    fn full_mesh_connects_all_pairs() {
        let net = Network::new();
        for i in 0..4 {
            net.add_host(format!("h{i}"), 1, CpuModel::xeon_v2());
        }
        net.connect_full_mesh(LinkSpec::ten_gbe());
        // 4 choose 2 = 6 links; sending over each pair must not panic.
        let mut sim = Simulator::new(0);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    net.send(
                        &mut sim,
                        Frame::new(Addr::new(HostId(i), 1), Addr::new(HostId(j), 1), 10, ()),
                    );
                }
            }
        }
        sim.run_until_idle();
        assert_eq!(net.stats().unroutable, 12);
    }
}
