//! Simulated block storage: a flat byte device with an NVMe-style cost
//! model and injectable write faults.
//!
//! A [`SimDisk`] models one replica-local drive as a growable byte array
//! plus a serial command queue: every read or write starts no earlier
//! than the previous operation finished (the device horizon, mirroring
//! [`Host::exec`](crate::Host::exec)) and costs a fixed submission
//! latency plus a bandwidth term — so a burst of log appends genuinely
//! queues in simulated time.
//!
//! Storage is *not* fail-stop here. Following the torn-write/corruption
//! fault model of crash-consistency work, the device supports armed
//! one-shot write faults:
//!
//! * [`DiskFault::TornWrite`] — a write spanning the given absolute byte
//!   offset persists only its prefix below that offset (power loss mid
//!   sector train);
//! * [`DiskFault::BitFlip`] — the write lands whole but one bit of the
//!   given byte is flipped (firmware/media corruption);
//! * [`DiskFault::LostAfterAck`] — the write is acknowledged and charged
//!   but nothing persists (volatile write cache lost at power-off).
//!
//! Every fault is applied deterministically (no randomness) and counted
//! in the shared metrics registry, so chaos scenarios can assert exactly
//! how the persistence layer above reacted.

use std::cell::RefCell;
use std::rc::Rc;

use crate::metrics::Metrics;
use crate::time::{Bandwidth, Nanos};

/// Cost model of a simulated drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskSpec {
    /// Fixed per-write submission + program latency.
    pub write_latency: Nanos,
    /// Fixed per-read submission + sense latency.
    pub read_latency: Nanos,
    /// Sequential write bandwidth.
    pub write_bw: Bandwidth,
    /// Sequential read bandwidth.
    pub read_bw: Bandwidth,
}

impl DiskSpec {
    /// A datacenter NVMe flash drive: ~20 µs writes into the SLC buffer,
    /// ~80 µs reads, 2 GB/s sequential writes, 3.2 GB/s reads.
    pub fn nvme() -> DiskSpec {
        DiskSpec {
            write_latency: Nanos::from_micros(20),
            read_latency: Nanos::from_micros(80),
            write_bw: Bandwidth::gbps(16),
            read_bw: Bandwidth::gbps(25),
        }
    }
}

impl Default for DiskSpec {
    fn default() -> DiskSpec {
        DiskSpec::nvme()
    }
}

/// An armed one-shot write fault. See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The next write spanning `at_byte` (absolute device offset)
    /// persists only the bytes strictly below it.
    TornWrite {
        /// Absolute device offset where persistence stops.
        at_byte: u64,
    },
    /// The next write covering `at_byte` lands with bit 6 of that byte
    /// flipped.
    BitFlip {
        /// Absolute device offset of the corrupted byte.
        at_byte: u64,
    },
    /// The next write (any range) is acknowledged but never persisted.
    LostAfterAck,
}

impl DiskFault {
    /// Whether this armed fault fires for a write of `len` bytes at
    /// `offset`.
    fn applies(&self, offset: u64, len: u64) -> bool {
        match *self {
            DiskFault::TornWrite { at_byte } | DiskFault::BitFlip { at_byte } => {
                at_byte >= offset && at_byte < offset + len
            }
            DiskFault::LostAfterAck => true,
        }
    }
}

#[derive(Debug)]
struct DiskInner {
    spec: DiskSpec,
    data: Vec<u8>,
    /// Serial command-queue horizon: the instant the device is next free.
    busy_until: Nanos,
    /// Armed one-shot faults, consumed front-first by the first write
    /// they apply to.
    faults: Vec<DiskFault>,
    metrics: Metrics,
    prefix: String,
}

impl DiskInner {
    fn bump(&self, metric: &str, n: u64) {
        self.metrics.incr_by(&format!("{}{metric}", self.prefix), n);
    }

    /// Reserves device time starting at or after `now`, returning the
    /// completion instant (the [`Host::exec`](crate::Host::exec) idiom).
    fn charge(&mut self, now: Nanos, cost: Nanos) -> Nanos {
        let start = now.max(self.busy_until);
        self.busy_until = start + cost;
        self.busy_until
    }
}

/// A simulated drive. Cloning shares the device (the durable medium
/// outlives any volatile protocol state holding a handle to it).
#[derive(Debug, Clone)]
pub struct SimDisk {
    inner: Rc<RefCell<DiskInner>>,
}

impl SimDisk {
    /// Creates an empty device reporting `disk.{name}.*` counters into
    /// `metrics`.
    pub fn new(name: impl Into<String>, spec: DiskSpec, metrics: Metrics) -> SimDisk {
        SimDisk {
            inner: Rc::new(RefCell::new(DiskInner {
                spec,
                data: Vec::new(),
                busy_until: Nanos::ZERO,
                faults: Vec::new(),
                metrics,
                prefix: format!("disk.{}.", name.into()),
            })),
        }
    }

    /// Arms a one-shot write fault; the first applicable write consumes
    /// it. Multiple armed faults are consumed front-first.
    pub fn arm_fault(&self, fault: DiskFault) {
        self.inner.borrow_mut().faults.push(fault);
    }

    /// Number of faults armed but not yet consumed.
    pub fn armed_faults(&self) -> usize {
        self.inner.borrow().faults.len()
    }

    /// Current device length in bytes (highest byte ever written + 1).
    pub fn len(&self) -> u64 {
        self.inner.borrow().data.len() as u64
    }

    /// True if nothing was ever written.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().data.is_empty()
    }

    /// The instant the device's serial command queue is next free.
    pub fn busy_until(&self) -> Nanos {
        self.inner.borrow().busy_until
    }

    /// Writes `bytes` at `offset`, growing the device as needed, and
    /// returns the acknowledged completion instant. An armed fault may
    /// tear, corrupt, or drop the persisted bytes — the returned ack time
    /// is the same either way (the writer cannot tell).
    pub fn write(&self, now: Nanos, offset: u64, bytes: &[u8]) -> Nanos {
        let mut inner = self.inner.borrow_mut();
        let cost = inner.spec.write_latency + inner.spec.write_bw.transmit_time(bytes.len());
        let done = inner.charge(now, cost);
        inner.bump("writes", 1);
        inner.bump("bytes_written", bytes.len() as u64);

        let fault = inner
            .faults
            .iter()
            .position(|f| f.applies(offset, bytes.len() as u64))
            .map(|i| inner.faults.remove(i));
        let (persist_len, flip_at) = match fault {
            Some(DiskFault::TornWrite { at_byte }) => {
                inner.bump("torn_writes", 1);
                ((at_byte - offset) as usize, None)
            }
            Some(DiskFault::BitFlip { at_byte }) => {
                inner.bump("bit_flips", 1);
                (bytes.len(), Some((at_byte - offset) as usize))
            }
            Some(DiskFault::LostAfterAck) => {
                inner.bump("lost_writes", 1);
                (0, None)
            }
            None => (bytes.len(), None),
        };
        if persist_len > 0 {
            let end = offset as usize + persist_len;
            if inner.data.len() < end {
                inner.data.resize(end, 0);
            }
            inner.data[offset as usize..end].copy_from_slice(&bytes[..persist_len]);
        }
        if let Some(at) = flip_at {
            inner.data[offset as usize + at] ^= 0x40;
        }
        done
    }

    /// Reads `len` bytes at `offset` (zero-filled past the device end)
    /// and returns them with the completion instant.
    pub fn read(&self, now: Nanos, offset: u64, len: usize) -> (Vec<u8>, Nanos) {
        let mut inner = self.inner.borrow_mut();
        let cost = inner.spec.read_latency + inner.spec.read_bw.transmit_time(len);
        let done = inner.charge(now, cost);
        inner.bump("reads", 1);
        inner.bump("bytes_read", len as u64);
        let mut out = vec![0u8; len];
        let dev_len = inner.data.len();
        let start = (offset as usize).min(dev_len);
        let end = (offset as usize + len).min(dev_len);
        out[..end - start].copy_from_slice(&inner.data[start..end]);
        (out, done)
    }

    /// Truncates the device to `len` bytes (a metadata-only operation,
    /// charged one write latency). A shorter device stays shorter; a
    /// longer `len` is a no-op.
    pub fn truncate(&self, now: Nanos, len: u64) -> Nanos {
        let mut inner = self.inner.borrow_mut();
        let cost = inner.spec.write_latency;
        let done = inner.charge(now, cost);
        inner.data.truncate(len as usize);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new("t", DiskSpec::nvme(), Metrics::new())
    }

    #[test]
    fn write_read_roundtrip_and_growth() {
        let d = disk();
        d.write(Nanos::ZERO, 4, b"hello");
        assert_eq!(d.len(), 9);
        let (got, _) = d.read(Nanos::ZERO, 4, 5);
        assert_eq!(got, b"hello");
        // The gap below the write reads as zeros, and reads past the end
        // zero-fill.
        let (head, _) = d.read(Nanos::ZERO, 0, 4);
        assert_eq!(head, [0, 0, 0, 0]);
        let (past, _) = d.read(Nanos::ZERO, 7, 4);
        assert_eq!(past, [b'l', b'o', 0, 0]);
    }

    #[test]
    fn operations_serialize_on_the_device_horizon() {
        let d = disk();
        let spec = DiskSpec::nvme();
        let a = d.write(Nanos::ZERO, 0, &[0u8; 1000]);
        assert_eq!(
            a,
            spec.write_latency + spec.write_bw.transmit_time(1000),
            "latency plus bandwidth term"
        );
        // Issued at the same instant, the second op queues behind.
        let (_, b) = d.read(Nanos::ZERO, 0, 8);
        assert!(b > a + spec.read_latency - Nanos::from_nanos(1));
        assert_eq!(d.busy_until(), b);
        // After an idle gap the horizon restarts from `now`.
        let far = b + Nanos::from_millis(1);
        let c = d.write(far, 0, &[1]);
        assert!(c >= far + spec.write_latency);
    }

    #[test]
    fn torn_write_persists_only_the_prefix() {
        let d = disk();
        d.write(Nanos::ZERO, 0, &[0xFFu8; 16]);
        d.arm_fault(DiskFault::TornWrite { at_byte: 10 });
        d.write(Nanos::ZERO, 4, &[0x11u8; 12]);
        assert_eq!(d.armed_faults(), 0);
        let (got, _) = d.read(Nanos::ZERO, 0, 16);
        // Bytes 4..10 took the new value, 10..16 kept the old one.
        assert_eq!(&got[..4], &[0xFF; 4]);
        assert_eq!(&got[4..10], &[0x11; 6]);
        assert_eq!(&got[10..], &[0xFF; 6]);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_byte() {
        let d = disk();
        d.arm_fault(DiskFault::BitFlip { at_byte: 3 });
        d.write(Nanos::ZERO, 0, &[0u8; 8]);
        let (got, _) = d.read(Nanos::ZERO, 0, 8);
        assert_eq!(got, [0, 0, 0, 0x40, 0, 0, 0, 0]);
    }

    #[test]
    fn lost_after_ack_persists_nothing_but_charges_time() {
        let d = disk();
        d.arm_fault(DiskFault::LostAfterAck);
        let done = d.write(Nanos::ZERO, 0, b"gone");
        assert!(done > Nanos::ZERO, "the write is acked as if it landed");
        assert_eq!(d.len(), 0, "nothing persisted");
    }

    #[test]
    fn faults_wait_for_an_applicable_write() {
        let d = disk();
        d.arm_fault(DiskFault::TornWrite { at_byte: 100 });
        d.write(Nanos::ZERO, 0, &[1u8; 8]); // does not span byte 100
        assert_eq!(d.armed_faults(), 1, "fault stays armed");
        d.write(Nanos::ZERO, 96, &[2u8; 8]);
        assert_eq!(d.armed_faults(), 0);
        let (got, _) = d.read(Nanos::ZERO, 96, 8);
        assert_eq!(&got[..4], &[2u8; 4]);
        assert_eq!(&got[4..], &[0u8; 4], "torn past byte 100");
    }

    #[test]
    fn truncate_shrinks_the_device() {
        let d = disk();
        d.write(Nanos::ZERO, 0, &[7u8; 32]);
        d.truncate(Nanos::ZERO, 8);
        assert_eq!(d.len(), 8);
        d.truncate(Nanos::ZERO, 64);
        assert_eq!(d.len(), 8, "growing truncate is a no-op");
    }

    #[test]
    fn counters_track_operations_and_faults() {
        let m = Metrics::new();
        let d = SimDisk::new("r0", DiskSpec::nvme(), m.clone());
        d.write(Nanos::ZERO, 0, &[0u8; 100]);
        d.arm_fault(DiskFault::LostAfterAck);
        d.write(Nanos::ZERO, 0, &[0u8; 50]);
        d.read(Nanos::ZERO, 0, 10);
        let snap = m.snapshot();
        assert_eq!(snap.counter("disk.r0.writes"), 2);
        assert_eq!(snap.counter("disk.r0.bytes_written"), 150);
        assert_eq!(snap.counter("disk.r0.reads"), 1);
        assert_eq!(snap.counter("disk.r0.bytes_read"), 10);
        assert_eq!(snap.counter("disk.r0.lost_writes"), 1);
    }
}
