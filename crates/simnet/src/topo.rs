//! Geo-distributed topology: named regions with pairwise latency matrices.
//!
//! A [`LatencyMatrix`] describes a set of named regions with asymmetric
//! pairwise one-way delay and bandwidth — the shape of real inter-region
//! WAN paths, where the two directions of a route often differ. Builders
//! cover the common experimental shapes (single-region LAN, 3-region and
//! 5-region WAN) plus a coordinate-derived variant whose delays provably
//! respect the triangle inequality. [`LatencyMatrix::wire`] threads the
//! matrix through [`Network`] construction: every host pair gets an
//! asymmetric full-mesh link whose specs come from their regions.

use crate::host::HostId;
use crate::net::{LinkSpec, Network};
use crate::time::{Bandwidth, Nanos};

/// Pairwise region latency/bandwidth matrix with named regions.
///
/// `one_way[src][dst]` is the one-way propagation delay from `src` to
/// `dst`; the diagonal holds the intra-region delay. Bandwidth follows the
/// same indexing. Matrices need not be symmetric.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyMatrix {
    regions: Vec<String>,
    one_way: Vec<Vec<Nanos>>,
    bandwidth: Vec<Vec<Bandwidth>>,
    mtu: usize,
    per_segment_overhead: usize,
}

/// One-way delay in microseconds, for matrix literals.
const fn us(n: u64) -> u64 {
    n * 1_000
}

impl LatencyMatrix {
    /// Builds a matrix from explicit delay/bandwidth tables.
    ///
    /// # Panics
    ///
    /// Panics if the tables are not square and matching `regions` in size.
    pub fn from_tables(
        regions: &[&str],
        one_way: Vec<Vec<Nanos>>,
        bandwidth: Vec<Vec<Bandwidth>>,
    ) -> LatencyMatrix {
        let n = regions.len();
        assert!(n > 0, "at least one region");
        assert_eq!(one_way.len(), n, "delay table must be {n}x{n}");
        assert_eq!(bandwidth.len(), n, "bandwidth table must be {n}x{n}");
        for row in &one_way {
            assert_eq!(row.len(), n, "delay table must be {n}x{n}");
        }
        for row in &bandwidth {
            assert_eq!(row.len(), n, "bandwidth table must be {n}x{n}");
        }
        LatencyMatrix {
            regions: regions.iter().map(|s| s.to_string()).collect(),
            one_way,
            bandwidth,
            mtu: 1500,
            per_segment_overhead: 58,
        }
    }

    /// Single-region LAN: every pair gets the paper's 10 GbE link.
    pub fn lan() -> LatencyMatrix {
        LatencyMatrix::from_tables(
            &["lan"],
            vec![vec![Nanos::from_micros(1)]],
            vec![vec![Bandwidth::gbps(10)]],
        )
    }

    /// Three-region WAN (US East, EU West, AP South): one-way delays around
    /// half the public inter-region RTTs, with a few percent of directional
    /// asymmetry, 10 Gbps inside a region and 2 Gbps between regions.
    pub fn three_region_wan() -> LatencyMatrix {
        let delays: [[u64; 3]; 3] = [
            [us(25), us(37_500), us(90_000)],
            [us(39_400), us(25), us(55_000)],
            [us(93_000), us(57_500), us(25)],
        ];
        LatencyMatrix::from_tables(
            &["us-east", "eu-west", "ap-south"],
            delays
                .iter()
                .map(|row| row.iter().map(|&ns| Nanos::from_nanos(ns)).collect())
                .collect(),
            Self::bandwidth_table(3, Bandwidth::gbps(10), Bandwidth::gbps(2)),
        )
    }

    /// Five-region WAN (US East/West, EU West, AP South, AP Northeast),
    /// same conventions as [`three_region_wan`](LatencyMatrix::three_region_wan).
    pub fn five_region_wan() -> LatencyMatrix {
        let delays: [[u64; 5]; 5] = [
            [us(25), us(30_000), us(37_500), us(90_000), us(75_000)],
            [us(31_500), us(25), us(65_000), us(110_000), us(55_000)],
            [us(39_400), us(67_000), us(25), us(55_000), us(105_000)],
            [us(93_000), us(113_000), us(57_500), us(25), us(60_000)],
            [us(77_000), us(56_500), us(108_000), us(62_000), us(25)],
        ];
        LatencyMatrix::from_tables(
            &["us-east", "us-west", "eu-west", "ap-south", "ap-ne"],
            delays
                .iter()
                .map(|row| row.iter().map(|&ns| Nanos::from_nanos(ns)).collect())
                .collect(),
            Self::bandwidth_table(5, Bandwidth::gbps(10), Bandwidth::gbps(2)),
        )
    }

    /// Builds a symmetric matrix from 2-D region coordinates: one-way delay
    /// is the Euclidean distance scaled by `ns_per_unit`, then closed under
    /// min-plus (no direct path slower than any relay), so the delays
    /// respect the triangle inequality *exactly* despite rounding.
    pub fn from_coordinates(
        regions: &[(&str, f64, f64)],
        ns_per_unit: f64,
        intra: Nanos,
        inter_bandwidth: Bandwidth,
    ) -> LatencyMatrix {
        let n = regions.len();
        let mut one_way = vec![vec![Nanos::ZERO; n]; n];
        for (i, &(_, xi, yi)) in regions.iter().enumerate() {
            for (j, &(_, xj, yj)) in regions.iter().enumerate() {
                one_way[i][j] = if i == j {
                    intra
                } else {
                    let dist = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                    Nanos::from_nanos((dist * ns_per_unit).ceil().max(1.0) as u64)
                };
            }
        }
        // Min-plus closure: rounding can leave ceil(d(a,c)) a nanosecond
        // above ceil(d(a,b)) + ceil(d(b,c)) for collinear regions; a routed
        // network would relay, so close the matrix to restore the metric.
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let via = one_way[i][k] + one_way[k][j];
                    if via < one_way[i][j] {
                        one_way[i][j] = via;
                    }
                }
            }
        }
        let names: Vec<&str> = regions.iter().map(|&(name, _, _)| name).collect();
        LatencyMatrix::from_tables(
            &names,
            one_way,
            Self::bandwidth_table(n, Bandwidth::gbps(10), inter_bandwidth),
        )
    }

    fn bandwidth_table(n: usize, intra: Bandwidth, inter: Bandwidth) -> Vec<Vec<Bandwidth>> {
        (0..n)
            .map(|i| (0..n).map(|j| if i == j { intra } else { inter }).collect())
            .collect()
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Name of region `r`.
    pub fn region_name(&self, r: usize) -> &str {
        &self.regions[r]
    }

    /// One-way delay from region `src` to region `dst`.
    pub fn one_way(&self, src: usize, dst: usize) -> Nanos {
        self.one_way[src][dst]
    }

    /// Largest one-way delay anywhere in the matrix.
    pub fn max_one_way(&self) -> Nanos {
        self.one_way
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// A protocol-timeout floor for this topology: consensus timers (view
    /// change, retransmission) must comfortably exceed several WAN
    /// traversals or they fire spuriously.
    pub fn suggested_timeout(&self) -> Nanos {
        Nanos::from_nanos(self.max_one_way().as_nanos() * 8).max(Nanos::from_millis(10))
    }

    /// The link spec for frames from region `src` to region `dst`.
    pub fn link_spec(&self, src: usize, dst: usize) -> LinkSpec {
        LinkSpec {
            bandwidth: self.bandwidth[src][dst],
            propagation: self.one_way[src][dst],
            mtu: self.mtu,
            per_segment_overhead: self.per_segment_overhead,
        }
    }

    /// Round-robin region assignment for `n` hosts: host `i` lands in
    /// region `i % num_regions` — replicas spread as evenly as possible.
    pub fn round_robin(&self, n: usize) -> Vec<usize> {
        (0..n).map(|i| i % self.regions.len()).collect()
    }

    /// Wires `hosts` into a full mesh on `net`, each pair connected with
    /// the (possibly asymmetric) specs of their assigned regions.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` and `hosts` differ in length or any region
    /// index is out of range.
    pub fn wire(&self, net: &Network, hosts: &[HostId], assignment: &[usize]) {
        assert_eq!(hosts.len(), assignment.len(), "one region per host");
        for r in assignment {
            assert!(*r < self.regions.len(), "region index {r} out of range");
        }
        for i in 0..hosts.len() {
            for j in (i + 1)..hosts.len() {
                let (ri, rj) = (assignment[i], assignment[j]);
                net.connect_asymmetric(
                    hosts[i],
                    hosts[j],
                    self.link_spec(ri, rj),
                    self.link_spec(rj, ri),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Addr, Frame};
    use crate::host::CpuModel;
    use crate::sim::Simulator;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn builders_have_expected_shapes() {
        assert_eq!(LatencyMatrix::lan().num_regions(), 1);
        let w3 = LatencyMatrix::three_region_wan();
        assert_eq!(w3.num_regions(), 3);
        assert_eq!(w3.region_name(0), "us-east");
        let w5 = LatencyMatrix::five_region_wan();
        assert_eq!(w5.num_regions(), 5);
        // Asymmetry is intentional in the WAN builders.
        assert_ne!(w3.one_way(0, 1), w3.one_way(1, 0));
        assert!(w3.max_one_way() >= Nanos::from_micros(90_000));
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let w3 = LatencyMatrix::three_region_wan();
        let a = w3.round_robin(7);
        assert_eq!(a, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn wired_mesh_delivers_with_per_direction_delay() {
        let w3 = LatencyMatrix::three_region_wan();
        let mut sim = Simulator::new(3);
        let net = Network::new();
        let hosts: Vec<HostId> = (0..3)
            .map(|i| net.add_host(format!("r{i}"), 4, CpuModel::xeon_v2()))
            .collect();
        let assignment = w3.round_robin(3);
        w3.wire(&net, &hosts, &assignment);
        // Spec lookup reflects the asymmetric matrix.
        let ab = net.link_spec_between(hosts[0], hosts[1]).unwrap();
        let ba = net.link_spec_between(hosts[1], hosts[0]).unwrap();
        assert_eq!(ab.propagation, w3.one_way(0, 1));
        assert_eq!(ba.propagation, w3.one_way(1, 0));
        assert_ne!(ab.propagation, ba.propagation);
        // A frame in each direction arrives after its direction's delay.
        let times = Rc::new(RefCell::new(Vec::new()));
        for (src, dst) in [(0usize, 1usize), (1, 0)] {
            let t = times.clone();
            let addr = Addr::new(hosts[dst], 5);
            net.bind(addr, Box::new(move |sim, _| t.borrow_mut().push(sim.now())));
            net.send(
                &mut sim,
                Frame::new(Addr::new(hosts[src], 5), addr, 100, ()),
            );
        }
        sim.run_until_idle();
        let times = times.borrow();
        let base = Nanos::ZERO;
        assert_eq!(times[0], base + ab.serialize_time(100) + ab.propagation);
        assert_eq!(times[1], base + ba.serialize_time(100) + ba.propagation);
    }

    #[test]
    fn coordinates_produce_metric_delays() {
        // Deliberately collinear points — the worst case for rounding.
        let m = LatencyMatrix::from_coordinates(
            &[("a", 0.0, 0.0), ("b", 1.0, 0.0), ("c", 3.0, 0.0)],
            10_000.0,
            Nanos::from_micros(1),
            Bandwidth::gbps(2),
        );
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    assert!(
                        m.one_way(i, j) <= m.one_way(i, k) + m.one_way(k, j),
                        "triangle violated: {i}->{j} vs via {k}"
                    );
                }
            }
        }
    }
}
