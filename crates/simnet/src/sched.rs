//! Core-affinity scheduling helpers for pipeline-parallel protocol layers.
//!
//! Consensus-Oriented Parallelization (COP) runs whole protocol instances
//! on dedicated cores while execution stays sequential. The mapping from a
//! *lane* (a protocol pipeline) to a [`CoreId`] is policy every COP layer
//! needs and easy to get subtly wrong — reserving the execution core,
//! clamping to the host's core count, oversubscription wrap-around — so it
//! lives here as mechanism: a pure, shareable [`CoreAffinity`] table.
//!
//! The convention (matching the paper's 4-core Xeon-v2 testbed): core 0 is
//! the *execution core* (sequential state-machine application, checkpoint
//! digests, client replies), cores `1..` are *agreement cores*. Lane `l`
//! of `p` pipelines is pinned to core `1 + (l mod a)` where `a` is the
//! number of agreement cores actually available — with more pipelines than
//! agreement cores, lanes wrap and contend, which is exactly how the
//! simulation exposes the scaling plateau.

use crate::host::CoreId;

/// A static lane → core affinity table for one host.
///
/// # Examples
///
/// ```
/// use simnet::{CoreAffinity, CoreId};
///
/// // 4 cores, 2 pipelines: execution on core 0, lanes on cores 1 and 2.
/// let aff = CoreAffinity::new(4, 2);
/// assert_eq!(aff.exec_core(), CoreId(0));
/// assert_eq!(aff.lane_core(0), CoreId(1));
/// assert_eq!(aff.lane_core(1), CoreId(2));
/// // Sequence numbers partition round-robin across lanes.
/// assert_eq!(aff.lane_of(7), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreAffinity {
    num_cores: usize,
    lanes: usize,
}

impl CoreAffinity {
    /// Builds the affinity table for a host with `num_cores` cores running
    /// `lanes` pipelines.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` or `lanes` is zero.
    pub fn new(num_cores: usize, lanes: usize) -> CoreAffinity {
        assert!(num_cores > 0, "a host needs at least one core");
        assert!(lanes > 0, "at least one lane is required");
        CoreAffinity { num_cores, lanes }
    }

    /// Number of configured lanes (pipelines).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The execution core (sequential stage): always core 0.
    pub fn exec_core(&self) -> CoreId {
        CoreId(0)
    }

    /// Number of distinct cores serving agreement lanes. On a single-core
    /// host everything shares core 0; otherwise core 0 is reserved and at
    /// most `num_cores - 1` agreement cores exist.
    pub fn agreement_cores(&self) -> usize {
        if self.num_cores <= 1 {
            1
        } else {
            self.lanes.min(self.num_cores - 1)
        }
    }

    /// The core lane `lane` is pinned to. Lanes beyond the agreement-core
    /// count wrap around (oversubscription shares cores deterministically).
    pub fn lane_core(&self, lane: usize) -> CoreId {
        if self.num_cores <= 1 {
            return CoreId(0);
        }
        let slots = self.agreement_cores();
        CoreId((1 + (lane % self.lanes) % slots) as u16)
    }

    /// The lane owning sequence number `seq` (`seq mod lanes` — COP's
    /// static partition of the sequence-number space).
    pub fn lane_of(&self, seq: u64) -> usize {
        (seq % self.lanes as u64) as usize
    }

    /// Convenience: the core that agreement work for `seq` runs on.
    pub fn seq_core(&self, seq: u64) -> CoreId {
        self.lane_core(self.lane_of(seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_host_collapses_to_core_zero() {
        let aff = CoreAffinity::new(1, 4);
        assert_eq!(aff.exec_core(), CoreId(0));
        for lane in 0..4 {
            assert_eq!(aff.lane_core(lane), CoreId(0));
        }
    }

    #[test]
    fn lanes_fit_agreement_cores() {
        // 4 cores, 3 lanes: lanes 0..3 on cores 1..=3, no wrap.
        let aff = CoreAffinity::new(4, 3);
        assert_eq!(aff.agreement_cores(), 3);
        assert_eq!(aff.lane_core(0), CoreId(1));
        assert_eq!(aff.lane_core(1), CoreId(2));
        assert_eq!(aff.lane_core(2), CoreId(3));
    }

    #[test]
    fn oversubscribed_lanes_wrap() {
        // 4 cores, 4 lanes: only 3 agreement cores — lane 3 shares core 1.
        let aff = CoreAffinity::new(4, 4);
        assert_eq!(aff.agreement_cores(), 3);
        assert_eq!(aff.lane_core(3), CoreId(1));
        // seq 3 → lane 3 → core 1; seq 4 → lane 0 → core 1.
        assert_eq!(aff.seq_core(3), CoreId(1));
        assert_eq!(aff.seq_core(4), CoreId(1));
    }

    #[test]
    fn seq_partition_is_mod_lanes() {
        let aff = CoreAffinity::new(4, 2);
        assert_eq!(aff.lane_of(0), 0);
        assert_eq!(aff.lane_of(1), 1);
        assert_eq!(aff.lane_of(10), 0);
        // Matches the legacy single-table mapping when lanes ≤ cores - 1:
        // core = 1 + seq % lanes.
        for seq in 0..16u64 {
            assert_eq!(aff.seq_core(seq), CoreId(1 + (seq % 2) as u16));
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = CoreAffinity::new(4, 0);
    }
}
