//! Scripted fault timelines: deterministic chaos scheduling.
//!
//! A [`ChaosSchedule`] is a list of `(time, action)` entries applied to a
//! network's [`FaultPlane`](crate::FaultPlane) over simulated time. Because
//! the schedule is data and every probabilistic fault draws its coins from
//! the simulator RNG, a whole fault timeline — loss bursts, partitions,
//! crashes, restarts — replays byte-identically from a seed, which is what
//! makes failure scenarios regression-testable.
//!
//! # Examples
//!
//! ```
//! use simnet::{ChaosAction, ChaosSchedule, HostId, Nanos, Network, Simulator};
//!
//! let mut sim = Simulator::new(7);
//! let net = Network::new();
//! let a = net.add_host("a", 1, simnet::CpuModel::xeon_v2());
//! let b = net.add_host("b", 1, simnet::CpuModel::xeon_v2());
//!
//! let schedule = ChaosSchedule::new()
//!     .at(Nanos::from_millis(1), ChaosAction::SetLoss { src: a, dst: b, p: 0.05 })
//!     .at(Nanos::from_millis(5), ChaosAction::CrashHost { host: b })
//!     .at(Nanos::from_millis(9), ChaosAction::RestartHost { host: b })
//!     .at(Nanos::from_millis(9), ChaosAction::Clear);
//! schedule.install(&mut sim, &net);
//! sim.run_until_idle();
//! assert!(!net.with_faults(|f| f.is_crashed(b)));
//! ```

use crate::fault::FaultPlane;
use crate::host::HostId;
use crate::net::Network;
use crate::sim::Simulator;
use crate::time::Nanos;

/// One scripted change to the fault plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosAction {
    /// Set directional loss probability (see [`FaultPlane::set_loss`]).
    SetLoss {
        /// Source host of the affected direction.
        src: HostId,
        /// Destination host of the affected direction.
        dst: HostId,
        /// Drop probability in `[0, 1]`.
        p: f64,
    },
    /// Set directional duplication probability.
    SetDuplication {
        /// Source host of the affected direction.
        src: HostId,
        /// Destination host of the affected direction.
        dst: HostId,
        /// Duplication probability in `[0, 1]`.
        p: f64,
    },
    /// Set directional payload-corruption probability.
    SetCorruption {
        /// Source host of the affected direction.
        src: HostId,
        /// Destination host of the affected direction.
        dst: HostId,
        /// Corruption probability in `[0, 1]`.
        p: f64,
    },
    /// Set directional bounded reordering jitter.
    SetReorderJitter {
        /// Source host of the affected direction.
        src: HostId,
        /// Destination host of the affected direction.
        dst: HostId,
        /// Upper bound of the uniform extra delay.
        bound: Nanos,
    },
    /// Set directional fixed extra delay.
    SetExtraDelay {
        /// Source host of the affected direction.
        src: HostId,
        /// Destination host of the affected direction.
        dst: HostId,
        /// Extra one-way delay.
        d: Nanos,
    },
    /// Cut connectivity between two hosts (both directions).
    Partition {
        /// One end of the cut.
        a: HostId,
        /// Other end of the cut.
        b: HostId,
    },
    /// Restore connectivity between two hosts.
    Heal {
        /// One end of the healed pair.
        a: HostId,
        /// Other end of the healed pair.
        b: HostId,
    },
    /// Crash a host: all frames to/from it are blackholed.
    CrashHost {
        /// The host losing power.
        host: HostId,
    },
    /// Restart a crashed host.
    RestartHost {
        /// The host coming back.
        host: HostId,
    },
    /// Remove every installed fault.
    Clear,
}

impl ChaosAction {
    /// Applies this action to a fault plane.
    pub fn apply(&self, faults: &mut FaultPlane) {
        match *self {
            ChaosAction::SetLoss { src, dst, p } => faults.set_loss(src, dst, p),
            ChaosAction::SetDuplication { src, dst, p } => faults.set_duplication(src, dst, p),
            ChaosAction::SetCorruption { src, dst, p } => faults.set_corruption(src, dst, p),
            ChaosAction::SetReorderJitter { src, dst, bound } => {
                faults.set_reorder_jitter(src, dst, bound)
            }
            ChaosAction::SetExtraDelay { src, dst, d } => faults.set_extra_delay(src, dst, d),
            ChaosAction::Partition { a, b } => faults.partition(a, b),
            ChaosAction::Heal { a, b } => faults.heal(a, b),
            ChaosAction::CrashHost { host } => faults.crash_host(host),
            ChaosAction::RestartHost { host } => faults.restart_host(host),
            ChaosAction::Clear => faults.clear(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            ChaosAction::SetLoss { .. } => "set_loss",
            ChaosAction::SetDuplication { .. } => "set_duplication",
            ChaosAction::SetCorruption { .. } => "set_corruption",
            ChaosAction::SetReorderJitter { .. } => "set_reorder_jitter",
            ChaosAction::SetExtraDelay { .. } => "set_extra_delay",
            ChaosAction::Partition { .. } => "partition",
            ChaosAction::Heal { .. } => "heal",
            ChaosAction::CrashHost { .. } => "crash_host",
            ChaosAction::RestartHost { .. } => "restart_host",
            ChaosAction::Clear => "clear",
        }
    }
}

/// A scripted `(time, action)` fault timeline.
///
/// Entries may be added in any order; [`install`](ChaosSchedule::install)
/// schedules each at its absolute simulated time. Entries that share a
/// timestamp apply in insertion order (the event queue is FIFO within an
/// instant).
#[derive(Debug, Clone, Default)]
pub struct ChaosSchedule {
    entries: Vec<(Nanos, ChaosAction)>,
}

impl ChaosSchedule {
    /// Creates an empty schedule.
    pub fn new() -> ChaosSchedule {
        ChaosSchedule::default()
    }

    /// Adds an action at absolute simulated time `at` (builder style).
    pub fn at(mut self, at: Nanos, action: ChaosAction) -> ChaosSchedule {
        self.entries.push((at, action));
        self
    }

    /// Adds an action at absolute simulated time `at` (mutating form).
    pub fn push(&mut self, at: Nanos, action: ChaosAction) {
        self.entries.push((at, action));
    }

    /// Number of scripted entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are scripted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scripted entries, in insertion order.
    pub fn entries(&self) -> &[(Nanos, ChaosAction)] {
        &self.entries
    }

    /// Schedules every entry on `sim` against `net`'s fault plane.
    ///
    /// Each applied action bumps the `chaos.actions_applied` counter and
    /// emits a `chaos.<action>` trace event in the network's metrics
    /// registry, so a snapshot records the timeline that actually ran.
    ///
    /// # Panics
    ///
    /// Panics if any entry is scheduled before `sim.now()`.
    pub fn install(&self, sim: &mut Simulator, net: &Network) {
        for (at, action) in self.entries.clone() {
            let net = net.clone();
            sim.schedule_at(
                at,
                Box::new(move |sim| {
                    net.with_faults(|f| action.apply(f));
                    let m = net.metrics();
                    m.incr("chaos.actions_applied");
                    m.trace(sim.now(), "chaos", action.label());
                }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::CpuModel;

    #[test]
    fn schedule_applies_actions_at_their_times() {
        let mut sim = Simulator::new(1);
        let net = Network::new();
        let a = net.add_host("a", 1, CpuModel::xeon_v2());
        let b = net.add_host("b", 1, CpuModel::xeon_v2());
        let schedule = ChaosSchedule::new()
            .at(Nanos::from_micros(10), ChaosAction::Partition { a, b })
            .at(Nanos::from_micros(20), ChaosAction::Heal { a, b })
            .at(Nanos::from_micros(20), ChaosAction::CrashHost { host: a });
        assert_eq!(schedule.len(), 3);
        schedule.install(&mut sim, &net);

        sim.run_until(Nanos::from_micros(15));
        assert!(net.with_faults(|f| f.is_partitioned(a, b)));
        assert!(!net.with_faults(|f| f.is_crashed(a)));

        sim.run_until_idle();
        assert!(!net.with_faults(|f| f.is_partitioned(a, b)));
        assert!(net.with_faults(|f| f.is_crashed(a)));
        assert_eq!(net.metrics().counter("chaos.actions_applied"), 3);
    }

    #[test]
    fn entries_survive_cloning_for_replay() {
        let a = HostId(0);
        let b = HostId(1);
        let s1 = ChaosSchedule::new().at(
            Nanos::from_millis(1),
            ChaosAction::SetLoss {
                src: a,
                dst: b,
                p: 0.05,
            },
        );
        let s2 = s1.clone();
        assert_eq!(s1.entries(), s2.entries());
        assert!(!s1.is_empty());
    }
}
