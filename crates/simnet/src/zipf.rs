//! Seeded key-popularity generators for YCSB-style workloads.
//!
//! The kvstore harness drives thousands of simulated clients against the
//! replicated KV service; each client needs its own deterministic stream of
//! keys drawn from either a uniform or a zipfian popularity distribution
//! (YCSB workloads A/B use zipfian with θ = 0.99). The generators here are
//! self-contained — a SplitMix64 core instead of the `rand` shim — so the
//! per-client streams are cheap, `Copy`-free, and byte-identical across
//! runs regardless of what other code draws from shared RNGs.

/// SplitMix64: a tiny, high-quality, seedable PRNG (Steele et al., OOPSLA'14).
///
/// Every client in the KV workload owns one, seeded from
/// `(run_seed, client_id)`, so interleaving clients differently across
/// simulator schedules never perturbs any individual client's op stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64
        // per draw, irrelevant for workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Key chooser: uniform or zipfian over `[0, n)`.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform {
        /// Key-space size.
        n: u64,
    },
    /// Zipfian by rank with parameter θ, via Gray et al.'s closed-form
    /// inverse-CDF approximation (the same scheme YCSB uses).
    Zipfian {
        /// Key-space size.
        n: u64,
        /// Skew parameter θ (YCSB default 0.99).
        theta: f64,
        /// Precomputed generalized harmonic number H_{n,θ}.
        zetan: f64,
        /// Precomputed H_{2,θ}.
        zeta2: f64,
        /// Precomputed α = 1 / (1 − θ).
        alpha: f64,
        /// Precomputed η (Gray et al. constant).
        eta: f64,
    },
}

impl KeyDist {
    /// Uniform distribution over `n` keys.
    pub fn uniform(n: u64) -> KeyDist {
        assert!(n > 0);
        KeyDist::Uniform { n }
    }

    /// Zipfian distribution over `n` keys with skew `theta` (0 < θ < 1).
    pub fn zipfian(n: u64, theta: f64) -> KeyDist {
        assert!(n > 0);
        assert!(theta > 0.0 && theta < 1.0);
        let zeta = |m: u64| -> f64 { (1..=m).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let zetan = zeta(n);
        let zeta2 = zeta(2.min(n));
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        KeyDist::Zipfian {
            n,
            theta,
            zetan,
            zeta2,
            alpha,
            eta,
        }
    }

    /// Draws the next key rank in `[0, n)`. Rank 0 is the most popular key.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        match *self {
            KeyDist::Uniform { n } => rng.next_bounded(n),
            KeyDist::Zipfian {
                n,
                theta,
                zetan,
                alpha,
                eta,
                ..
            } => {
                let u = rng.next_f64();
                let uz = u * zetan;
                if uz < 1.0 {
                    return 0;
                }
                if uz < 1.0 + 0.5f64.powf(theta) {
                    return 1;
                }
                let rank = (n as f64 * (eta * u - eta + 1.0).powf(alpha)) as u64;
                rank.min(n - 1)
            }
        }
    }

    /// Key-space size.
    pub fn key_space(&self) -> u64 {
        match *self {
            KeyDist::Uniform { n } => n,
            KeyDist::Zipfian { n, .. } => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_stays_in_range() {
        let mut rng = SplitMix64::new(1);
        for bound in [1u64, 2, 3, 17, 1000] {
            for _ in 0..200 {
                assert!(rng.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn zipfian_skews_toward_low_ranks() {
        let dist = KeyDist::zipfian(1000, 0.99);
        let mut rng = SplitMix64::new(42);
        let mut head = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            if dist.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With θ = 0.99 the top-10 of 1000 keys should absorb a large
        // fraction of draws; uniform would give ~1 %.
        assert!(head > draws / 4, "head draws: {head}/{draws}");
        // And uniform really is flat.
        let flat = KeyDist::uniform(1000);
        let mut head_u = 0u64;
        for _ in 0..draws {
            if flat.sample(&mut rng) < 10 {
                head_u += 1;
            }
        }
        assert!(head_u < draws / 20, "uniform head draws: {head_u}/{draws}");
    }

    #[test]
    fn zipfian_ranks_in_range() {
        for n in [1u64, 2, 5, 1000] {
            let dist = KeyDist::zipfian(n.max(2), 0.5);
            let mut rng = SplitMix64::new(n);
            for _ in 0..500 {
                assert!(dist.sample(&mut rng) < dist.key_space());
            }
        }
    }
}
