//! Recycling byte-buffer pool for the simulated transports.
//!
//! The TCP model allocates a `Vec<u8>` per segment (send copy + unacked
//! retransmission copy) and the verbs model re-allocates each receive buffer
//! it re-posts — per-message heap traffic that dominated steady-state
//! simulation profiles. [`BytePool`] keeps freed buffers in power-of-two
//! size-class freelists so the steady state recycles instead of allocating.
//!
//! The pool is pure bookkeeping over deterministic callers — takes and
//! returns happen in event order, so recycling never perturbs a fixed-seed
//! run. Occupancy and hit/miss counts are surfaced as `pool.*` gauges in
//! metrics snapshots (see [`BytePool::publish`]).

use std::cell::RefCell;
use std::rc::Rc;

use crate::metrics::Metrics;

/// Smallest size class (everything under 64 bytes shares one class).
const MIN_CLASS: u32 = 6;
/// Largest pooled class: 2^20 = 1 MiB. Bigger buffers are not pooled.
const MAX_CLASS: u32 = 20;
/// Per-class cap on retained buffers; overflow is dropped to the allocator.
const MAX_PER_CLASS: usize = 256;

/// Lifetime counters for one pool, surfaced as `pool.<name>.*` gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out.
    pub takes: u64,
    /// Buffers returned for reuse.
    pub returns: u64,
    /// Takes that had to fall back to a fresh allocation.
    pub misses: u64,
    /// Returns dropped because the class was full or the buffer oversized.
    pub dropped: u64,
    /// Buffers currently out with callers.
    pub outstanding: i64,
    /// Maximum simultaneously outstanding buffers.
    pub high_water: i64,
    /// Buffers currently parked in the freelists.
    pub parked: usize,
}

struct PoolInner {
    name: String,
    classes: Vec<Vec<Vec<u8>>>,
    stats: PoolStats,
}

/// A shared, size-classed freelist of `Vec<u8>` buffers.
///
/// Cloning is cheap (`Rc`); all clones share one freelist. [`take`]
/// returns an empty vec with at least the requested capacity; [`put`]
/// recycles a spent buffer.
///
/// [`take`]: BytePool::take
/// [`put`]: BytePool::put
#[derive(Clone)]
pub struct BytePool {
    inner: Rc<RefCell<PoolInner>>,
}

impl std::fmt::Debug for BytePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("BytePool")
            .field("name", &inner.name)
            .field("stats", &inner.stats)
            .finish()
    }
}

fn class_for_len(len: usize) -> u32 {
    let bits = usize::BITS - len.max(1).next_power_of_two().leading_zeros() - 1;
    bits.clamp(MIN_CLASS, MAX_CLASS + 1)
}

impl BytePool {
    /// Creates an empty pool. `name` prefixes its metrics keys.
    pub fn new(name: impl Into<String>) -> BytePool {
        BytePool {
            inner: Rc::new(RefCell::new(PoolInner {
                name: name.into(),
                classes: (MIN_CLASS..=MAX_CLASS).map(|_| Vec::new()).collect(),
                stats: PoolStats::default(),
            })),
        }
    }

    /// Hands out an empty buffer with capacity ≥ `len`, recycling a parked
    /// one when the size class has any.
    pub fn take(&self, len: usize) -> Vec<u8> {
        let mut inner = self.inner.borrow_mut();
        inner.stats.takes += 1;
        inner.stats.outstanding += 1;
        inner.stats.high_water = inner.stats.high_water.max(inner.stats.outstanding);
        let class = class_for_len(len);
        if class <= MAX_CLASS {
            let idx = (class - MIN_CLASS) as usize;
            if let Some(mut buf) = inner.classes[idx].pop() {
                inner.stats.parked -= 1;
                buf.clear();
                return buf;
            }
        }
        inner.stats.misses += 1;
        // Allocate the full class size so the buffer files back into the
        // class it was taken from (put classes by capacity, floor-log2).
        let cap = if class <= MAX_CLASS {
            1usize << class
        } else {
            len
        };
        Vec::with_capacity(cap)
    }

    /// Returns a spent buffer to its size class for reuse. Oversized
    /// buffers and full classes fall back to the allocator.
    pub fn put(&self, buf: Vec<u8>) {
        let mut inner = self.inner.borrow_mut();
        inner.stats.returns += 1;
        inner.stats.outstanding -= 1;
        if buf.capacity() == 0 {
            inner.stats.dropped += 1;
            return;
        }
        // File under the largest class the capacity fully covers, so a
        // later take from that class is guaranteed to fit.
        let cap_bits = usize::BITS - buf.capacity().leading_zeros() - 1;
        if !(MIN_CLASS..=MAX_CLASS).contains(&cap_bits) {
            inner.stats.dropped += 1;
            return;
        }
        let idx = (cap_bits - MIN_CLASS) as usize;
        if inner.classes[idx].len() >= MAX_PER_CLASS {
            inner.stats.dropped += 1;
            return;
        }
        inner.classes[idx].push(buf);
        inner.stats.parked += 1;
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.borrow().stats
    }

    /// Publishes the counters as `pool.<name>.*` gauges into `metrics`.
    pub fn publish(&self, metrics: &Metrics) {
        let inner = self.inner.borrow();
        let s = inner.stats;
        let p = &inner.name;
        metrics.set_gauge(&format!("pool.{p}.takes"), s.takes as i64);
        metrics.set_gauge(&format!("pool.{p}.returns"), s.returns as i64);
        metrics.set_gauge(&format!("pool.{p}.misses"), s.misses as i64);
        metrics.set_gauge(&format!("pool.{p}.dropped"), s.dropped as i64);
        metrics.set_gauge(&format!("pool.{p}.outstanding"), s.outstanding);
        metrics.set_gauge(&format!("pool.{p}.high_water"), s.high_water);
        metrics.set_gauge(&format!("pool.{p}.parked"), s.parked as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_within_class() {
        let pool = BytePool::new("t");
        let mut a = pool.take(1000);
        a.extend_from_slice(&[7u8; 1000]);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take(900);
        assert!(b.is_empty());
        assert!(b.capacity() >= 900);
        assert_eq!(b.capacity(), cap, "same buffer came back");
        let s = pool.stats();
        assert_eq!(s.takes, 2);
        assert_eq!(s.returns, 1);
        assert_eq!(s.misses, 1, "only the first take allocates");
        assert_eq!(s.outstanding, 1);
    }

    #[test]
    fn take_after_put_of_smaller_class_still_fits() {
        let pool = BytePool::new("t");
        pool.put(Vec::with_capacity(100)); // class 64: guarantees ≥ 64 only
        let b = pool.take(4096); // must not reuse the 100-cap buffer
        assert!(b.capacity() >= 4096);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn oversized_and_overflow_are_dropped() {
        let pool = BytePool::new("t");
        pool.put(Vec::with_capacity(4 << 20));
        assert_eq!(pool.stats().dropped, 1);
        assert_eq!(pool.stats().parked, 0);
    }

    #[test]
    fn steady_state_take_put_cycle_never_misses_again() {
        let pool = BytePool::new("t");
        for round in 0..100 {
            let mut b = pool.take(1460);
            b.extend_from_slice(&[round as u8; 1460]);
            pool.put(b);
        }
        let s = pool.stats();
        assert_eq!(s.takes, 100);
        assert_eq!(s.misses, 1, "steady state allocates nothing per message");
        assert_eq!(s.outstanding, 0);
    }

    #[test]
    fn publishes_gauges() {
        let m = Metrics::new();
        let pool = BytePool::new("net");
        let b = pool.take(100);
        pool.put(b);
        pool.publish(&m);
        let snap = m.snapshot();
        assert_eq!(snap.gauge("pool.net.takes"), 1);
        assert_eq!(snap.gauge("pool.net.returns"), 1);
        assert_eq!(snap.gauge("pool.net.outstanding"), 0);
    }
}
