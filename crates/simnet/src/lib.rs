//! # simnet — deterministic discrete-event network & host simulator
//!
//! `simnet` is the substrate for the RUBIN reproduction: it stands in for the
//! paper's physical testbed (two 4-core Xeon v2 machines, Mellanox RoCE NICs,
//! a 10 Gbps full-duplex link) with a fully deterministic simulation.
//!
//! The crate provides *mechanism only*:
//!
//! * [`Simulator`] — a nanosecond-resolution event loop. Events are closures;
//!   ordering is `(time, scheduling order)`, so runs are reproducible.
//! * [`Host`] — a machine with N cores. Protocol layers charge CPU work
//!   (copies, syscalls, MAC computation) to cores via [`Host::exec`]; work on
//!   one core serializes, work on different cores overlaps.
//! * [`Network`] — hosts joined by full-duplex [`LinkSpec`] links with
//!   bandwidth, propagation delay, MTU segmentation overhead, and an
//!   implicit per-host loopback. Frames are typed messages ([`Frame`]) bound
//!   to [`Addr`] handlers.
//! * [`FaultPlane`] — partitions, probabilistic loss, duplication,
//!   corruption, reordering jitter, host crash/restart, and added delay,
//!   applied deterministically from the simulator's seeded RNG.
//! * [`ChaosSchedule`] — scripted `(time, fault)` timelines applied over
//!   simulated time, so whole failure scenarios replay byte-identically
//!   from a seed.
//! * [`LatencyRecorder`] / [`Series`] — measurement helpers used by the
//!   benchmark harness to regenerate the paper's figures.
//!
//! Protocol *policy* — TCP's double copy, verbs queue pairs, RDMA zero-copy —
//! lives in the `simnet-socket` and `rdma-verbs` crates built on top.
//!
//! # Example: two hosts exchanging a frame
//!
//! ```
//! use simnet::{Addr, CpuModel, Frame, LinkSpec, Network, Simulator};
//!
//! let mut sim = Simulator::new(42);
//! let net = Network::new();
//! let a = net.add_host("client", 4, CpuModel::xeon_v2());
//! let b = net.add_host("server", 4, CpuModel::xeon_v2());
//! net.connect(a, b, LinkSpec::ten_gbe());
//!
//! net.bind(Addr::new(b, 1), Box::new(|sim, frame| {
//!     println!("got {} wire bytes at {}", frame.wire_bytes, sim.now());
//! }));
//! net.send(&mut sim, Frame::new(Addr::new(a, 1), Addr::new(b, 1), 1024, ()));
//! sim.run_until_idle();
//! assert_eq!(net.stats().delivered, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chaos;
mod disk;
mod event;
mod fault;
mod frame;
mod host;
pub mod metrics;
mod net;
mod pool;
mod sched;
mod sim;
mod stats;
mod time;
mod topo;
pub mod zipf;

pub use chaos::{ChaosAction, ChaosSchedule};
pub use disk::{DiskFault, DiskSpec, SimDisk};
pub use event::{speed, EventFn, EventId, QueueStats};
pub use fault::{FaultCoins, FaultPlane, FaultVerdict};
pub use frame::{Addr, Frame, Payload};
pub use host::{CoreId, CpuModel, Host, HostId, HostRef};
pub use metrics::{Histogram, HistogramSummary, Metrics, MetricsSnapshot, TraceEvent};
pub use net::{FrameHandler, LinkId, LinkSpec, NetStats, Network};
pub use pool::{BytePool, PoolStats};
pub use sched::CoreAffinity;
pub use sim::Simulator;
pub use stats::{
    render_table, throughput_ops_per_sec, LatencyRecorder, LatencySummary, Series, SeriesPoint,
};
pub use time::{Bandwidth, Nanos};
pub use topo::LatencyMatrix;
pub use zipf::{KeyDist, SplitMix64};

/// A ready-made two-host world mirroring the paper's testbed: two 4-core
/// hosts, one 10 Gbps full-duplex link.
///
/// # Examples
///
/// ```
/// use simnet::TestBed;
///
/// let tb = TestBed::paper_testbed(1);
/// assert_eq!(tb.net.num_hosts(), 2);
/// ```
#[derive(Debug)]
pub struct TestBed {
    /// The simulator (time starts at zero).
    pub sim: Simulator,
    /// The network with both hosts connected.
    pub net: Network,
    /// First host ("machine A" — typically the client).
    pub a: HostId,
    /// Second host ("machine B" — typically the server).
    pub b: HostId,
}

impl TestBed {
    /// Builds the paper's two-machine testbed with the given RNG seed.
    pub fn paper_testbed(seed: u64) -> TestBed {
        let sim = Simulator::new(seed);
        let net = Network::new();
        let a = net.add_host("machine-a", 4, CpuModel::xeon_v2());
        let b = net.add_host("machine-b", 4, CpuModel::xeon_v2());
        net.connect(a, b, LinkSpec::ten_gbe());
        TestBed { sim, net, a, b }
    }

    /// Builds an `n`-host full-mesh cluster (for replicated experiments).
    pub fn cluster(seed: u64, n: usize) -> (Simulator, Network, Vec<HostId>) {
        let sim = Simulator::new(seed);
        let net = Network::new();
        let hosts: Vec<HostId> = (0..n)
            .map(|i| net.add_host(format!("replica-{i}"), 4, CpuModel::xeon_v2()))
            .collect();
        net.connect_full_mesh(LinkSpec::ten_gbe());
        (sim, net, hosts)
    }

    /// Builds an `n`-host full-mesh cluster whose links come from a
    /// [`LatencyMatrix`]: hosts are assigned to regions round-robin and
    /// every pair is connected with the (possibly asymmetric) specs of
    /// their regions. Returns the per-host region assignment alongside.
    pub fn geo_cluster(
        seed: u64,
        n: usize,
        topology: &LatencyMatrix,
    ) -> (Simulator, Network, Vec<HostId>, Vec<usize>) {
        let sim = Simulator::new(seed);
        let net = Network::new();
        let assignment = topology.round_robin(n);
        let hosts: Vec<HostId> = (0..n)
            .map(|i| {
                let region = topology.region_name(assignment[i]);
                net.add_host(format!("replica-{i}-{region}"), 4, CpuModel::xeon_v2())
            })
            .collect();
        topology.wire(&net, &hosts, &assignment);
        (sim, net, hosts, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let tb = TestBed::paper_testbed(0);
        assert_eq!(tb.net.num_hosts(), 2);
        assert_eq!(tb.net.host(tb.a).borrow().num_cores(), 4);
        assert_eq!(tb.net.host(tb.b).borrow().name(), "machine-b");
    }

    #[test]
    fn cluster_builds_full_mesh() {
        let (mut sim, net, hosts) = TestBed::cluster(0, 4);
        assert_eq!(hosts.len(), 4);
        // Any pair can exchange frames.
        net.send(
            &mut sim,
            Frame::new(Addr::new(hosts[0], 1), Addr::new(hosts[3], 1), 10, ()),
        );
        sim.run_until_idle();
        assert_eq!(net.stats().unroutable, 1);
    }
}
