//! Frames: the unit of delivery on the simulated network.

use std::any::Any;
use std::fmt;

use crate::host::HostId;

/// A network address: host plus port (a demultiplexing key on the NIC).
///
/// Ports below 1024 are conventionally used by listeners in this simulator,
/// but nothing enforces that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    /// The host the port lives on.
    pub host: HostId,
    /// The port number on that host.
    pub port: u32,
}

impl Addr {
    /// Creates an address from host and port.
    pub fn new(host: HostId, port: u32) -> Addr {
        Addr { host, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// A frame in flight between two addresses.
///
/// The `payload` is a type-erased message owned by the protocol layer that
/// sent it (TCP segment, RoCE packet, …); `wire_bytes` is the size the link
/// timing model charges for it. Keeping payloads as `Box<dyn Any>` lets every
/// protocol layer define its own message types without a central enum, while
/// the real bytes still travel end to end so data integrity is genuine.
pub struct Frame {
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Size charged on the wire (payload + protocol headers), in bytes.
    pub wire_bytes: usize,
    /// The protocol message being carried.
    pub payload: Box<dyn Any>,
}

impl Frame {
    /// Creates a frame carrying `payload`, charged as `wire_bytes` on the
    /// wire.
    pub fn new<T: Any>(src: Addr, dst: Addr, wire_bytes: usize, payload: T) -> Frame {
        Frame {
            src,
            dst,
            wire_bytes,
            payload: Box::new(payload),
        }
    }

    /// Downcasts the payload to `T`, consuming the frame.
    ///
    /// # Errors
    ///
    /// Returns the frame unchanged if the payload is not a `T`.
    pub fn into_payload<T: Any>(self) -> Result<T, Frame> {
        match self.payload.downcast::<T>() {
            Ok(b) => Ok(*b),
            Err(payload) => Err(Frame { payload, ..self }),
        }
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Frame")
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("wire_bytes", &self.wire_bytes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display() {
        let a = Addr::new(HostId(3), 80);
        assert_eq!(a.to_string(), "h3:80");
    }

    #[test]
    fn payload_downcast_roundtrip() {
        let a = Addr::new(HostId(0), 1);
        let b = Addr::new(HostId(1), 2);
        let f = Frame::new(a, b, 100, String::from("hello"));
        let s: String = f.into_payload().expect("payload is a String");
        assert_eq!(s, "hello");
    }

    #[test]
    fn payload_downcast_wrong_type_returns_frame() {
        let a = Addr::new(HostId(0), 1);
        let b = Addr::new(HostId(1), 2);
        let f = Frame::new(a, b, 100, 42u64);
        let f = f.into_payload::<String>().expect_err("not a String");
        assert_eq!(f.wire_bytes, 100);
        let v: u64 = f.into_payload().expect("payload is u64");
        assert_eq!(v, 42);
    }
}
