//! Frames: the unit of delivery on the simulated network.

use std::any::Any;
use std::fmt;

use crate::host::HostId;

/// A network address: host plus port (a demultiplexing key on the NIC).
///
/// Ports below 1024 are conventionally used by listeners in this simulator,
/// but nothing enforces that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr {
    /// The host the port lives on.
    pub host: HostId,
    /// The port number on that host.
    pub port: u32,
}

impl Addr {
    /// Creates an address from host and port.
    pub fn new(host: HostId, port: u32) -> Addr {
        Addr { host, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// A frame payload: any `'static` message type that can be cloned.
///
/// Cloning is required so the fault plane can duplicate frames in flight
/// (real networks deliver duplicates; a type-erased but uncloneable payload
/// could not model that). The blanket impl covers every `Any + Clone` type,
/// so protocol layers keep defining plain message enums/structs.
pub trait Payload: Any {
    /// Clones the payload behind the type-erased box.
    fn clone_box(&self) -> Box<dyn Payload>;
    /// Borrows the payload as `Any` for type checks.
    fn as_any(&self) -> &dyn Any;
    /// Upcasts to `Any` so [`Frame::into_payload`] can downcast.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<T: Any + Clone> Payload for T {
    fn clone_box(&self) -> Box<dyn Payload> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A frame in flight between two addresses.
///
/// The `payload` is a type-erased message owned by the protocol layer that
/// sent it (TCP segment, RoCE packet, …); `wire_bytes` is the size the link
/// timing model charges for it. Keeping payloads type-erased lets every
/// protocol layer define its own message types without a central enum, while
/// the real bytes still travel end to end so data integrity is genuine.
pub struct Frame {
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Size charged on the wire (payload + protocol headers), in bytes.
    pub wire_bytes: usize,
    /// Set by the fault plane when the frame's payload was damaged in
    /// flight. Protocol layers that carry real bytes honour this by
    /// flipping payload bits at delivery; integrity checks (MACs,
    /// checksums) downstream are what must catch it.
    pub corrupted: bool,
    /// The protocol message being carried.
    pub payload: Box<dyn Payload>,
}

impl Frame {
    /// Creates a frame carrying `payload`, charged as `wire_bytes` on the
    /// wire.
    pub fn new<T: Any + Clone>(src: Addr, dst: Addr, wire_bytes: usize, payload: T) -> Frame {
        Frame {
            src,
            dst,
            wire_bytes,
            corrupted: false,
            payload: Box::new(payload),
        }
    }

    /// Downcasts the payload to `T`, consuming the frame.
    ///
    /// # Errors
    ///
    /// Returns the frame unchanged if the payload is not a `T`.
    pub fn into_payload<T: Any>(self) -> Result<T, Frame> {
        if self.payload.as_any().is::<T>() {
            let b = self
                .payload
                .into_any()
                .downcast::<T>()
                .expect("type already checked");
            Ok(*b)
        } else {
            Err(self)
        }
    }
}

impl Clone for Frame {
    fn clone(&self) -> Frame {
        Frame {
            src: self.src,
            dst: self.dst,
            wire_bytes: self.wire_bytes,
            corrupted: self.corrupted,
            payload: self.payload.clone_box(),
        }
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Frame")
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("wire_bytes", &self.wire_bytes)
            .field("corrupted", &self.corrupted)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display() {
        let a = Addr::new(HostId(3), 80);
        assert_eq!(a.to_string(), "h3:80");
    }

    #[test]
    fn payload_downcast_roundtrip() {
        let a = Addr::new(HostId(0), 1);
        let b = Addr::new(HostId(1), 2);
        let f = Frame::new(a, b, 100, String::from("hello"));
        let s: String = f.into_payload().expect("payload is a String");
        assert_eq!(s, "hello");
    }

    #[test]
    fn payload_downcast_wrong_type_returns_frame() {
        let a = Addr::new(HostId(0), 1);
        let b = Addr::new(HostId(1), 2);
        let f = Frame::new(a, b, 100, 42u64);
        let f = f.into_payload::<String>().expect_err("not a String");
        assert_eq!(f.wire_bytes, 100);
        let v: u64 = f.into_payload().expect("payload is u64");
        assert_eq!(v, 42);
    }

    #[test]
    fn clone_duplicates_payload() {
        let a = Addr::new(HostId(0), 1);
        let b = Addr::new(HostId(1), 2);
        let f = Frame::new(a, b, 100, vec![1u8, 2, 3]);
        let g = f.clone();
        let v1: Vec<u8> = f.into_payload().expect("payload is bytes");
        let v2: Vec<u8> = g.into_payload().expect("clone carries same bytes");
        assert_eq!(v1, v2);
    }
}
