//! Simulated hosts: multi-core CPUs with a cost model.
//!
//! A [`Host`] models a machine with a fixed number of cores. Higher layers
//! charge CPU work (copies, syscalls, MAC computations, …) to a core; the
//! core's timeline serializes that work, so two tasks pinned to the same core
//! genuinely contend in simulated time while tasks on different cores overlap
//! — this is what makes Consensus-Oriented Parallelization observable in the
//! simulation.

use std::cell::RefCell;
use std::rc::Rc;

use crate::metrics::Metrics;
use crate::time::Nanos;

/// Identifier of a host within a [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Index of a core within a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub u16);

/// Per-host CPU cost constants, in nanoseconds.
///
/// These are the generic machine primitives; protocol-stack-specific costs
/// (TCP segment processing, verbs posting, …) live in the respective crates'
/// cost models and are expressed in terms of these plus their own constants.
///
/// Defaults approximate the paper's testbed: a 4-core Xeon v2 with a managed
/// (Java) runtime on top, which is why the per-operation overheads are far
/// above bare-metal C numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Cost of copying one byte between user buffers (memcpy through the
    /// managed heap; includes cache misses at BFT message sizes).
    pub copy_ns_per_byte: f64,
    /// Cost of one user/kernel crossing (syscall entry+exit).
    pub syscall_ns: u64,
    /// Cost of taking one interrupt (NIC RX, completion).
    pub interrupt_ns: u64,
    /// Fixed per-operation overhead of the managed runtime I/O layer
    /// (object allocation, JNI-equivalent marshalling, dispatch).
    pub runtime_io_ns: u64,
}

impl CpuModel {
    /// Cost model for the paper's 4-core Xeon v2 + Java stack.
    pub fn xeon_v2() -> CpuModel {
        CpuModel {
            copy_ns_per_byte: 0.8,
            syscall_ns: 7_700,
            interrupt_ns: 2_600,
            runtime_io_ns: 5_300,
        }
    }

    /// Cost of copying `bytes` bytes.
    pub fn copy_cost(&self, bytes: usize) -> Nanos {
        Nanos::from_nanos((self.copy_ns_per_byte * bytes as f64) as u64)
    }
}

impl Default for CpuModel {
    fn default() -> CpuModel {
        CpuModel::xeon_v2()
    }
}

#[derive(Debug, Clone, Default)]
struct Core {
    busy_until: Nanos,
    total_busy: Nanos,
}

/// A simulated machine with `n` cores.
///
/// Work is charged with [`Host::exec`]: it reserves time on a core starting
/// no earlier than `now` and no earlier than the core's previous work, and
/// returns the completion instant. Callers then schedule their continuation
/// at that instant.
#[derive(Debug)]
pub struct Host {
    id: HostId,
    name: String,
    cores: Vec<Core>,
    cpu: CpuModel,
    metrics: Metrics,
    metrics_prefix: String,
}

/// Shared handle to a [`Host`].
pub type HostRef = Rc<RefCell<Host>>;

impl Host {
    pub(crate) fn new(
        id: HostId,
        name: impl Into<String>,
        num_cores: usize,
        cpu: CpuModel,
    ) -> Host {
        assert!(num_cores > 0, "a host needs at least one core");
        Host {
            id,
            name: name.into(),
            cores: vec![Core::default(); num_cores],
            cpu,
            metrics: Metrics::new(),
            metrics_prefix: format!("host.{id}."),
        }
    }

    /// Points this host's counters at a shared registry (done by
    /// [`Network::add_host`](crate::Network::add_host), so every host of one
    /// network reports into the same snapshot).
    pub(crate) fn attach_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Handle to the registry this host reports into.
    pub fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }

    fn bump(&self, metric: &str, n: u64) {
        self.metrics
            .incr_by(&format!("{}{metric}", self.metrics_prefix), n);
    }

    /// This host's identifier.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// Human-readable host name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The host's CPU cost model.
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// Reserves `work` of CPU time on `core`, starting at or after `now`.
    /// Returns the instant the work completes.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn exec(&mut self, now: Nanos, core: CoreId, work: Nanos) -> Nanos {
        let c = &mut self.cores[core.0 as usize];
        let start = now.max(c.busy_until);
        c.busy_until = start + work;
        c.total_busy += work;
        c.busy_until
    }

    /// Reserves `work` on the least-busy core; returns `(core, completion)`.
    pub fn exec_least_busy(&mut self, now: Nanos, work: Nanos) -> (CoreId, Nanos) {
        let (idx, _) = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.busy_until)
            .expect("host has at least one core");
        let core = CoreId(idx as u16);
        let done = self.exec(now, core, work);
        (core, done)
    }

    /// Charges one user/kernel crossing (syscall entry+exit) to `core` and
    /// counts it. Returns the completion instant.
    pub fn charge_syscall(&mut self, now: Nanos, core: CoreId) -> Nanos {
        self.bump("syscalls", 1);
        self.bump("kernel_crossings", 1);
        let cost = Nanos::from_nanos(self.cpu.syscall_ns);
        self.exec(now, core, cost)
    }

    /// Charges one interrupt (NIC RX, completion) to `core` and counts it as
    /// a kernel crossing. Returns the completion instant.
    pub fn charge_interrupt(&mut self, now: Nanos, core: CoreId) -> Nanos {
        self.bump("interrupts", 1);
        self.bump("kernel_crossings", 1);
        let cost = Nanos::from_nanos(self.cpu.interrupt_ns);
        self.exec(now, core, cost)
    }

    /// Charges a copy of `bytes` across the user/kernel boundary (socket
    /// buffer staging) to `core` and counts it. Returns the completion
    /// instant.
    pub fn charge_kernel_copy(&mut self, now: Nanos, core: CoreId, bytes: usize) -> Nanos {
        self.bump("kernel_copies", 1);
        self.bump("kernel_copy_bytes", bytes as u64);
        let cost = self.cpu.copy_cost(bytes);
        self.exec(now, core, cost)
    }

    /// Charges a userspace copy of `bytes` (framework or application
    /// buffer-to-buffer) to `core` and counts it. Returns the completion
    /// instant.
    pub fn charge_user_copy(&mut self, now: Nanos, core: CoreId, bytes: usize) -> Nanos {
        self.bump("user_copies", 1);
        self.bump("user_copy_bytes", bytes as u64);
        let cost = self.cpu.copy_cost(bytes);
        self.exec(now, core, cost)
    }

    /// Counts one DMA transfer of `bytes` by the NIC. DMA costs no host CPU
    /// time — that asymmetry versus [`Host::charge_kernel_copy`] is the
    /// paper's core argument — so this only bumps counters.
    pub fn count_dma(&self, bytes: usize) {
        self.bump("dma_transfers", 1);
        self.bump("dma_bytes", bytes as u64);
    }

    /// The instant `core` becomes free.
    pub fn core_free_at(&self, core: CoreId) -> Nanos {
        self.cores[core.0 as usize].busy_until
    }

    /// Total CPU time consumed on `core` so far (utilization accounting).
    pub fn core_busy_time(&self, core: CoreId) -> Nanos {
        self.cores[core.0 as usize].total_busy
    }

    /// Total CPU time across all cores.
    pub fn total_busy_time(&self) -> Nanos {
        self.cores.iter().map(|c| c.total_busy).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(cores: usize) -> Host {
        Host::new(HostId(0), "test", cores, CpuModel::xeon_v2())
    }

    #[test]
    fn exec_serializes_on_one_core() {
        let mut h = host(1);
        let now = Nanos::from_nanos(100);
        let a = h.exec(now, CoreId(0), Nanos::from_nanos(50));
        assert_eq!(a.as_nanos(), 150);
        // Second task at the same wall time queues behind the first.
        let b = h.exec(now, CoreId(0), Nanos::from_nanos(30));
        assert_eq!(b.as_nanos(), 180);
    }

    #[test]
    fn exec_overlaps_across_cores() {
        let mut h = host(2);
        let now = Nanos::from_nanos(0);
        let a = h.exec(now, CoreId(0), Nanos::from_nanos(100));
        let (core, b) = h.exec_least_busy(now, Nanos::from_nanos(100));
        assert_eq!(core, CoreId(1));
        assert_eq!(a.as_nanos(), 100);
        assert_eq!(b.as_nanos(), 100);
    }

    #[test]
    fn idle_gap_does_not_accumulate_busy_time() {
        let mut h = host(1);
        h.exec(Nanos::from_nanos(0), CoreId(0), Nanos::from_nanos(10));
        h.exec(Nanos::from_nanos(1_000), CoreId(0), Nanos::from_nanos(10));
        assert_eq!(h.core_busy_time(CoreId(0)).as_nanos(), 20);
        assert_eq!(h.core_free_at(CoreId(0)).as_nanos(), 1_010);
    }

    #[test]
    fn copy_cost_scales_with_bytes() {
        let cpu = CpuModel::xeon_v2();
        let one_kb = cpu.copy_cost(1024);
        let ten_kb = cpu.copy_cost(10 * 1024);
        assert!(ten_kb.as_nanos() >= 9 * one_kb.as_nanos());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_host_rejected() {
        let _ = host(0);
    }
}
