//! Simulated time and bandwidth primitives.
//!
//! All simulation timing is expressed in integer nanoseconds via [`Nanos`],
//! which keeps event ordering exact (no floating-point drift) and makes the
//! simulator fully deterministic. [`Bandwidth`] converts byte counts into
//! serialization delays on a link.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in nanoseconds.
///
/// `Nanos` is used for both instants and durations; the simulator starts at
/// `Nanos::ZERO` and only ever moves forward.
///
/// # Examples
///
/// ```
/// use simnet::Nanos;
///
/// let t = Nanos::from_micros(3) + Nanos::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// assert_eq!(t.as_micros_f64(), 3.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero instant / empty duration.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant. Used as "never".
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a duration of `n` nanoseconds.
    pub const fn from_nanos(n: u64) -> Nanos {
        Nanos(n)
    }

    /// Creates a duration of `n` microseconds.
    pub const fn from_micros(n: u64) -> Nanos {
        Nanos(n * 1_000)
    }

    /// Creates a duration of `n` milliseconds.
    pub const fn from_millis(n: u64) -> Nanos {
        Nanos(n * 1_000_000)
    }

    /// Creates a duration of `n` seconds.
    pub const fn from_secs(n: u64) -> Nanos {
        Nanos(n * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the value in microseconds, rounding down.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the value in microseconds as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the value in milliseconds as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the value in seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// Returns the larger of two times.
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// Returns the smaller of two times.
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        Nanos(iter.map(|n| n.0).sum())
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<u64> for Nanos {
    fn from(n: u64) -> Nanos {
        Nanos(n)
    }
}

/// Link bandwidth in bits per second.
///
/// # Examples
///
/// ```
/// use simnet::Bandwidth;
///
/// let bw = Bandwidth::gbps(10);
/// // 10 Gbps moves one byte every 0.8 ns.
/// assert_eq!(bw.transmit_time(1_000).as_nanos(), 800);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth {
    bits_per_sec: u64,
}

impl Bandwidth {
    /// Creates a bandwidth of `n` bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn bps(n: u64) -> Bandwidth {
        assert!(n > 0, "bandwidth must be positive");
        Bandwidth { bits_per_sec: n }
    }

    /// Creates a bandwidth of `n` megabits per second.
    pub fn mbps(n: u64) -> Bandwidth {
        Bandwidth::bps(n * 1_000_000)
    }

    /// Creates a bandwidth of `n` gigabits per second.
    pub fn gbps(n: u64) -> Bandwidth {
        Bandwidth::bps(n * 1_000_000_000)
    }

    /// Returns the raw bits-per-second value.
    pub fn bits_per_sec(self) -> u64 {
        self.bits_per_sec
    }

    /// Time needed to serialize `bytes` onto the wire at this rate.
    ///
    /// Rounds up so that transmitting a non-empty frame always takes at
    /// least one nanosecond.
    pub fn transmit_time(self, bytes: usize) -> Nanos {
        if bytes == 0 {
            return Nanos::ZERO;
        }
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.bits_per_sec as u128);
        Nanos::from_nanos(ns as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits_per_sec.is_multiple_of(1_000_000_000) {
            write!(f, "{}Gbps", self.bits_per_sec / 1_000_000_000)
        } else if self.bits_per_sec.is_multiple_of(1_000_000) {
            write!(f, "{}Mbps", self.bits_per_sec / 1_000_000)
        } else {
            write!(f, "{}bps", self.bits_per_sec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_constructors_convert_units() {
        assert_eq!(Nanos::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Nanos::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::from_nanos(100);
        let b = Nanos::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a / 4).as_nanos(), 25);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn nanos_sum_and_assign() {
        let total: Nanos = [1u64, 2, 3].iter().map(|&n| Nanos::from_nanos(n)).sum();
        assert_eq!(total.as_nanos(), 6);
        let mut t = Nanos::from_nanos(5);
        t += Nanos::from_nanos(2);
        t -= Nanos::from_nanos(3);
        assert_eq!(t.as_nanos(), 4);
    }

    #[test]
    fn nanos_display_picks_unit() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn bandwidth_transmit_time_rounds_up() {
        let bw = Bandwidth::gbps(10);
        assert_eq!(bw.transmit_time(0), Nanos::ZERO);
        // A single byte takes 0.8ns, rounded up to 1ns.
        assert_eq!(bw.transmit_time(1).as_nanos(), 1);
        assert_eq!(bw.transmit_time(1500).as_nanos(), 1200);
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth::gbps(10).to_string(), "10Gbps");
        assert_eq!(Bandwidth::mbps(100).to_string(), "100Mbps");
        assert_eq!(Bandwidth::bps(1234).to_string(), "1234bps");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn bandwidth_rejects_zero() {
        let _ = Bandwidth::bps(0);
    }
}
