//! Cross-layer metrics registry and bounded structured event trace.
//!
//! Every simulated world owns one [`Metrics`] registry (created by
//! [`Network::new`](crate::Network::new) and shared by every layer built on
//! top: hosts, the TCP stack, the verbs stack, RUBIN, and the replication
//! protocol). The registry is *deterministic*: counters, gauges and
//! histograms are stored under ordered string keys, and
//! [`MetricsSnapshot::to_json`] renders them byte-identically for identical
//! simulations — which is what lets the test suite assert the paper's
//! structural claims ("the RDMA data path crosses the kernel zero times")
//! directly from counters, and lets a determinism regression test compare
//! whole runs by comparing two JSON strings.
//!
//! Key naming convention: `layer.scope.metric`, e.g.
//! `host.h0.kernel_crossings`, `rdma.h1.qp3.rnr_retries`,
//! `reptor.r2.view_changes`. Dots order lexicographically, so related keys
//! group together in snapshots.
//!
//! # Example
//!
//! ```
//! use simnet::metrics::Metrics;
//!
//! let m = Metrics::new();
//! m.incr("host.h0.syscalls");
//! m.incr_by("host.h0.kernel_copy_bytes", 1024);
//! m.observe("reptor.r0.batch_fill_pct", 75);
//! let snap = m.snapshot();
//! assert_eq!(snap.counter("host.h0.syscalls"), 1);
//! assert!(simnet::metrics::validate_json(&snap.to_json()).is_ok());
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::stats::LatencyRecorder;
use crate::time::Nanos;

/// Default bound on the structured event trace.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// A histogram of unit-agnostic `u64` observations, built on
/// [`LatencyRecorder`]. Most users record nanoseconds, but any
/// non-negative integer quantity (batch fill percent, events per poll)
/// works; the summary is reported in the recorded unit.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    rec: LatencyRecorder,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.rec.record(Nanos::from_nanos(value));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.rec.len() as u64
    }

    /// True if nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.rec.is_empty()
    }

    /// The `p`-th percentile (nearest rank). See
    /// [`LatencyRecorder::percentile`] for panics.
    pub fn percentile(&self, p: f64) -> u64 {
        self.rec.percentile(p).as_nanos()
    }

    /// Minimum observation (zero when empty).
    pub fn min(&self) -> u64 {
        self.rec.min().as_nanos()
    }

    /// Maximum observation (zero when empty).
    pub fn max(&self) -> u64 {
        self.rec.max().as_nanos()
    }

    /// Integer mean (zero when empty).
    pub fn mean(&self) -> u64 {
        self.rec.mean().as_nanos()
    }

    /// Produces the integer summary embedded in snapshots.
    pub fn summary(&self) -> HistogramSummary {
        if self.is_empty() {
            return HistogramSummary::default();
        }
        HistogramSummary {
            count: self.count(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
        }
    }
}

/// Integer summary of a [`Histogram`], in the recorded unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Integer mean.
    pub mean: u64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 90th percentile (nearest rank).
    pub p90: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
}

/// One entry of the bounded structured trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time of the event, in nanoseconds.
    pub at_ns: u64,
    /// Emitting layer (`"reptor"`, `"rdma"`, `"tcp"`, …).
    pub layer: &'static str,
    /// Human-readable event description.
    pub event: String,
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    trace: VecDeque<TraceEvent>,
    trace_capacity: usize,
    trace_dropped: u64,
}

/// Shared handle to a metrics registry. Cheap to clone; every layer of one
/// simulated world holds the same underlying registry.
#[derive(Debug, Clone)]
pub struct Metrics {
    inner: Rc<RefCell<Registry>>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates a fresh, empty registry.
    pub fn new() -> Metrics {
        Metrics {
            inner: Rc::new(RefCell::new(Registry {
                trace_capacity: DEFAULT_TRACE_CAPACITY,
                ..Registry::default()
            })),
        }
    }

    /// Increments the counter `key` by one.
    pub fn incr(&self, key: &str) {
        self.incr_by(key, 1);
    }

    /// Increments the counter `key` by `n`.
    pub fn incr_by(&self, key: &str, n: u64) {
        let mut reg = self.inner.borrow_mut();
        match reg.counters.get_mut(key) {
            Some(c) => *c += n,
            None => {
                reg.counters.insert(key.to_string(), n);
            }
        }
    }

    /// Current value of counter `key` (zero if never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.inner.borrow().counters.get(key).copied().unwrap_or(0)
    }

    /// Sets the gauge `key` to `value`.
    pub fn set_gauge(&self, key: &str, value: i64) {
        self.inner
            .borrow_mut()
            .gauges
            .insert(key.to_string(), value);
    }

    /// Current value of gauge `key` (zero if never set).
    pub fn gauge(&self, key: &str) -> i64 {
        self.inner.borrow().gauges.get(key).copied().unwrap_or(0)
    }

    /// Records `value` into the histogram `key`, creating it on first use.
    pub fn observe(&self, key: &str, value: u64) {
        let mut reg = self.inner.borrow_mut();
        match reg.histograms.get_mut(key) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                reg.histograms.insert(key.to_string(), h);
            }
        }
    }

    /// A clone of the histogram `key`, if any values were observed.
    pub fn histogram(&self, key: &str) -> Option<Histogram> {
        self.inner.borrow().histograms.get(key).cloned()
    }

    /// Appends a structured trace event; the oldest entry is dropped (and
    /// counted) once the ring is full.
    pub fn trace(&self, at: Nanos, layer: &'static str, event: impl Into<String>) {
        let mut reg = self.inner.borrow_mut();
        if reg.trace.len() >= reg.trace_capacity {
            reg.trace.pop_front();
            reg.trace_dropped += 1;
        }
        reg.trace.push_back(TraceEvent {
            at_ns: at.as_nanos(),
            layer,
            event: event.into(),
        });
    }

    /// Changes the trace ring capacity (existing excess entries are
    /// dropped oldest-first and counted).
    pub fn set_trace_capacity(&self, capacity: usize) {
        let mut reg = self.inner.borrow_mut();
        reg.trace_capacity = capacity;
        while reg.trace.len() > capacity {
            reg.trace.pop_front();
            reg.trace_dropped += 1;
        }
    }

    /// Sums every counter whose key ends in `.{metric}` — e.g.
    /// `total("syscalls")` adds the syscall counters of all hosts.
    pub fn total(&self, metric: &str) -> u64 {
        let suffix = format!(".{metric}");
        self.inner
            .borrow()
            .counters
            .iter()
            .filter(|(k, _)| k.ends_with(&suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Produces an immutable, serializable snapshot of everything recorded
    /// so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.inner.borrow();
        MetricsSnapshot {
            counters: reg.counters.clone(),
            gauges: reg.gauges.clone(),
            histograms: reg
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
            trace: reg.trace.iter().cloned().collect(),
            trace_dropped: reg.trace_dropped,
        }
    }
}

/// An immutable snapshot of a [`Metrics`] registry.
///
/// Rendering with [`MetricsSnapshot::to_json`] is deterministic: keys are
/// ordered (`BTreeMap`), all numbers are integers, and the trace preserves
/// insertion order — identical simulations produce byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by key.
    pub counters: BTreeMap<String, u64>,
    /// Last-write gauges by key.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by key.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// The bounded structured trace, oldest first.
    pub trace: Vec<TraceEvent>,
    /// Number of trace events evicted by the ring bound.
    pub trace_dropped: u64,
}

impl MetricsSnapshot {
    /// Counter value by key (zero if absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Gauge value by key (zero if absent).
    pub fn gauge(&self, key: &str) -> i64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// Histogram summary by key, if present.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSummary> {
        self.histograms.get(key)
    }

    /// Sums every counter whose key ends in `.{metric}`.
    pub fn total(&self, metric: &str) -> u64 {
        let suffix = format!(".{metric}");
        self.counters
            .iter()
            .filter(|(k, _)| k.ends_with(&suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Renders the snapshot as deterministic JSON (ordered keys, integer
    /// values, hand-rolled because no JSON crate is available offline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        out.push_str("\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.histograms.iter(), |out, h| {
            out.push_str(&format!(
                "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count, h.min, h.max, h.mean, h.p50, h.p90, h.p99
            ));
        });
        out.push_str("},\"trace\":[");
        for (i, ev) in self.trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at_ns\":{},\"layer\":{},\"event\":{}}}",
                ev.at_ns,
                json_string(ev.layer),
                json_string(&ev.event)
            ));
        }
        out.push_str("],\"trace_dropped\":");
        out.push_str(&self.trace_dropped.to_string());
        out.push('}');
        out
    }
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut render: impl FnMut(&mut String, &V),
) {
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(k));
        out.push(':');
        render(out, v);
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validates that `s` is one complete JSON value (object, array, string,
/// number, boolean or null). Returns a byte offset and description on error.
///
/// A minimal recursive-descent checker — enough for tests and tools to
/// guard the sidecar format without an external JSON crate.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn expect(b: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", want as char))
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.incr("a.b.c");
        m.incr_by("a.b.c", 4);
        assert_eq!(m.counter("a.b.c"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn totals_sum_by_suffix() {
        let m = Metrics::new();
        m.incr_by("host.h0.syscalls", 3);
        m.incr_by("host.h1.syscalls", 4);
        m.incr_by("host.h0.syscalls_total_other", 100);
        assert_eq!(m.total("syscalls"), 7);
        assert_eq!(m.snapshot().total("syscalls"), 7);
    }

    #[test]
    fn histogram_summary_orders() {
        let mut h = Histogram::new();
        for v in [5u64, 1, 9, 3, 7] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert!((s.min..=s.max).contains(&s.mean));
    }

    #[test]
    fn trace_ring_is_bounded() {
        let m = Metrics::new();
        m.set_trace_capacity(3);
        for i in 0..5u64 {
            m.trace(Nanos::from_nanos(i), "test", format!("ev{i}"));
        }
        let snap = m.snapshot();
        assert_eq!(snap.trace.len(), 3);
        assert_eq!(snap.trace_dropped, 2);
        assert_eq!(snap.trace[0].event, "ev2");
        assert_eq!(snap.trace[2].event, "ev4");
    }

    #[test]
    fn snapshot_json_is_valid_and_deterministic() {
        let build = || {
            let m = Metrics::new();
            m.incr_by("host.h0.kernel_copies", 2);
            m.set_gauge("rubin.h0.pool.recv.high_water", -1);
            m.observe("reptor.r0.phase.commit_ns", 420);
            m.trace(Nanos::from_nanos(7), "reptor", "view change \"quoted\"\n");
            m.snapshot().to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same operations must render identical JSON");
        validate_json(&a).expect("snapshot JSON validates");
        assert!(a.contains("\"host.h0.kernel_copies\":2"));
        assert!(a.contains("\\\"quoted\\\""));
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            r#"{"a":[1,2,{"b":"c\n"}],"d":true}"#,
            "  [ 1 , 2 ]  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?} should validate: {e}"));
        }
        for bad in ["", "{", "[1,]", "{\"a\"}", "01x", "\"unterminated", "{}{}"] {
            assert!(validate_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let j = Metrics::new().snapshot().to_json();
        validate_json(&j).expect("empty snapshot validates");
        assert_eq!(
            j,
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"trace\":[],\"trace_dropped\":0}"
        );
    }
}
