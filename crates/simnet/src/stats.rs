//! Measurement utilities: latency recording and throughput accounting.
//!
//! These are used by the benchmark harness to report the same quantities the
//! paper plots (mean latency in µs, requests per second).

use serde::{Deserialize, Serialize};

use crate::time::Nanos;

/// Collects latency samples and computes summary statistics.
///
/// # Examples
///
/// ```
/// use simnet::{LatencyRecorder, Nanos};
///
/// let mut rec = LatencyRecorder::new();
/// for us in [10, 20, 30] {
///     rec.record(Nanos::from_micros(us));
/// }
/// assert_eq!(rec.len(), 3);
/// assert_eq!(rec.mean().as_micros(), 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Adds one latency sample.
    pub fn record(&mut self, latency: Nanos) {
        self.samples.push(latency.as_nanos());
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean. Returns zero when empty.
    pub fn mean(&self) -> Nanos {
        if self.samples.is_empty() {
            return Nanos::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Nanos::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    /// The `p`-th percentile (0.0..=100.0), nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or the recorder is empty.
    pub fn percentile(&self, p: f64) -> Nanos {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        assert!(!self.samples.is_empty(), "no samples recorded");
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        Nanos::from_nanos(sorted[rank])
    }

    /// Minimum sample. Zero when empty.
    pub fn min(&self) -> Nanos {
        Nanos::from_nanos(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// Maximum sample. Zero when empty.
    pub fn max(&self) -> Nanos {
        Nanos::from_nanos(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Produces an immutable summary of the current samples.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.len() as u64,
            mean_us: self.mean().as_micros_f64(),
            p50_us: if self.is_empty() {
                0.0
            } else {
                self.percentile(50.0).as_micros_f64()
            },
            p99_us: if self.is_empty() {
                0.0
            } else {
                self.percentile(99.0).as_micros_f64()
            },
            min_us: self.min().as_micros_f64(),
            max_us: self.max().as_micros_f64(),
        }
    }
}

/// Immutable latency summary, serializable for bench output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Minimum latency in microseconds.
    pub min_us: f64,
    /// Maximum latency in microseconds.
    pub max_us: f64,
}

/// Computes closed-loop throughput: `ops` completed over `elapsed`.
///
/// Returns operations per second. Zero if `elapsed` is zero.
///
/// # Examples
///
/// ```
/// use simnet::{throughput_ops_per_sec, Nanos};
///
/// let rps = throughput_ops_per_sec(1_000, Nanos::from_secs(2));
/// assert!((rps - 500.0).abs() < 1e-9);
/// ```
pub fn throughput_ops_per_sec(ops: u64, elapsed: Nanos) -> f64 {
    if elapsed == Nanos::ZERO {
        return 0.0;
    }
    ops as f64 / elapsed.as_secs_f64()
}

/// One measured point in a figure series: payload size and a value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Measured value (µs for latency figures, ops/s for throughput).
    pub value: f64,
}

/// A named series of points (one line in a paper figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `"RDMA Send/Recv"`.
    pub label: String,
    /// Points in sweep order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends one point.
    pub fn push(&mut self, payload_bytes: usize, value: f64) {
        self.points.push(SeriesPoint {
            payload_bytes,
            value,
        });
    }

    /// The value at a given payload size, if present.
    pub fn value_at(&self, payload_bytes: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.payload_bytes == payload_bytes)
            .map(|p| p.value)
    }
}

/// Renders a set of series as an aligned text table (one row per payload).
///
/// All series must cover the same payload sweep; missing values print as `-`.
pub fn render_table(title: &str, unit: &str, series: &[Series]) -> String {
    use std::collections::BTreeSet;
    let mut out = String::new();
    out.push_str(&format!("# {title} ({unit})\n"));
    let payloads: BTreeSet<usize> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.payload_bytes))
        .collect();
    out.push_str(&format!("{:>12}", "payload"));
    for s in series {
        out.push_str(&format!("  {:>18}", s.label));
    }
    out.push('\n');
    for p in payloads {
        let label = if p % 1024 == 0 {
            format!("{}KB", p / 1024)
        } else {
            format!("{p}B")
        };
        out.push_str(&format!("{label:>12}"));
        for s in series {
            match s.value_at(p) {
                Some(v) => out.push_str(&format!("  {v:>18.1}")),
                None => out.push_str(&format!("  {:>18}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_is_safe() {
        let rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.mean(), Nanos::ZERO);
        assert_eq!(rec.min(), Nanos::ZERO);
        assert_eq!(rec.max(), Nanos::ZERO);
        assert_eq!(rec.summary().count, 0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut rec = LatencyRecorder::new();
        for n in 1..=100u64 {
            rec.record(Nanos::from_nanos(n));
        }
        assert_eq!(rec.percentile(0.0).as_nanos(), 1);
        assert_eq!(rec.percentile(100.0).as_nanos(), 100);
        let p50 = rec.percentile(50.0).as_nanos();
        assert!((50..=51).contains(&p50));
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn percentile_of_empty_panics() {
        LatencyRecorder::new().percentile(50.0);
    }

    #[test]
    fn throughput_division() {
        assert_eq!(throughput_ops_per_sec(0, Nanos::from_secs(1)), 0.0);
        assert_eq!(throughput_ops_per_sec(10, Nanos::ZERO), 0.0);
        let rps = throughput_ops_per_sec(2_000, Nanos::from_millis(500));
        assert!((rps - 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("TCP");
        s.push(1024, 250.0);
        s.push(2048, 260.0);
        assert_eq!(s.value_at(1024), Some(250.0));
        assert_eq!(s.value_at(4096), None);
    }

    #[test]
    fn table_rendering_includes_all_series() {
        let mut a = Series::new("TCP");
        a.push(1024, 250.0);
        let mut b = Series::new("RDMA");
        b.push(1024, 120.0);
        b.push(2048, 130.0);
        let t = render_table("Fig 3a", "us", &[a, b]);
        assert!(t.contains("Fig 3a"));
        assert!(t.contains("TCP"));
        assert!(t.contains("RDMA"));
        assert!(t.contains("1KB"));
        assert!(t.contains("2KB"));
        assert!(t.contains('-'));
    }

    #[test]
    fn summary_round_trip_serde() {
        let mut rec = LatencyRecorder::new();
        rec.record(Nanos::from_micros(5));
        let s = rec.summary();
        // Field sanity rather than full serde round trip (no json crate
        // offline); Serialize derive compiles, values accessible.
        assert_eq!(s.count, 1);
        assert!((s.mean_us - 5.0).abs() < 1e-9);
    }
}
