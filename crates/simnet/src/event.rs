//! The simulator's event queue.
//!
//! Events are closures scheduled for a future instant. Ordering is total and
//! deterministic: ties on the timestamp are broken by the monotonically
//! increasing sequence number assigned at scheduling time, so two runs of the
//! same program always execute events in the same order.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::sim::Simulator;
use crate::time::Nanos;

/// An event action: a one-shot closure run at its scheduled time.
pub type EventFn = Box<dyn FnOnce(&mut Simulator)>;

/// Handle identifying a scheduled event, usable with
/// [`Simulator::cancel`](crate::Simulator::cancel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

pub(crate) struct ScheduledEvent {
    pub at: Nanos,
    pub id: EventId,
    pub action: EventFn,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties broken by scheduling order (lower id first).
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

/// Deterministic priority queue of scheduled events with O(1) cancellation.
pub(crate) struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    cancelled: HashSet<EventId>,
    next_id: u64,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_id: 0,
        }
    }

    pub fn push(&mut self, at: Nanos, action: EventFn) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(ScheduledEvent { at, id, action });
        id
    }

    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Pops the next live (non-cancelled) event, discarding cancelled ones.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            return Some(ev);
        }
        None
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        loop {
            match self.heap.peek() {
                None => return None,
                Some(ev) if self.cancelled.contains(&ev.id) => {
                    let ev = self.heap.pop().expect("peeked event exists");
                    self.cancelled.remove(&ev.id);
                }
                Some(ev) => return Some(ev.at),
            }
        }
    }

    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    pub fn len(&self) -> usize {
        // Upper bound: may include cancelled events not yet discarded.
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> EventFn {
        Box::new(|_| {})
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(30), noop());
        q.push(Nanos::from_nanos(10), noop());
        q.push(Nanos::from_nanos(20), noop());
        assert_eq!(q.pop().unwrap().at.as_nanos(), 10);
        assert_eq!(q.pop().unwrap().at.as_nanos(), 20);
        assert_eq!(q.pop().unwrap().at.as_nanos(), 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos::from_nanos(5), noop());
        let b = q.push(Nanos::from_nanos(5), noop());
        assert_eq!(q.pop().unwrap().id, a);
        assert_eq!(q.pop().unwrap().id, b);
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos::from_nanos(1), noop());
        let b = q.push(Nanos::from_nanos(2), noop());
        q.cancel(a);
        assert_eq!(q.pop().unwrap().id, b);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos::from_nanos(1), noop());
        q.push(Nanos::from_nanos(7), noop());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(7)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
