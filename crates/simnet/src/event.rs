//! The simulator's event queue.
//!
//! Events are closures scheduled for a future instant. Ordering is total and
//! deterministic: ties on the timestamp are broken by the monotonically
//! increasing sequence number assigned at scheduling time, so two runs of the
//! same program always execute events in the same order.
//!
//! # Sharded queue with conservative lookahead
//!
//! The queue is the simulator's hottest data structure: every frame delivery,
//! CPU completion and protocol timer passes through it, and big geo-cluster
//! runs keep hundreds of thousands of events pending. The implementation is
//! built for that load:
//!
//! * **Arena-allocated events.** Actions live in a slab ([`Slot`] arena with
//!   a free list); the heaps order 16-byte plain-old-data [`Entry`] values
//!   (`(time, id)`), so a sift moves two words instead of a fat closure
//!   pointer, and the slot index is packed into the id's low bits — no side
//!   map is needed to find an event from its handle.
//! * **Per-host shards.** Events carry a shard hint (the destination host of
//!   a frame delivery, propagated to everything an event schedules in turn),
//!   and each shard keeps its own small heap — small enough to stay
//!   cache-resident where one global heap of the same events spills. The
//!   shard heads are merged through a tiny *head index* (a lazily
//!   invalidated min-heap holding each shard's current head), so a pop
//!   costs `O(log shards)` on the index plus `O(log n/shards)` on one
//!   shard instead of `O(log n)` on a cache-cold global heap.
//! * **Conservative lookahead fence.** After a merge, the winning shard may
//!   keep popping without re-consulting the index for as long as its head
//!   stays at or below the runner-up key observed at merge time. Events
//!   cluster per host, so bursty stretches take the fenced fast path. The
//!   merge always yields the global `(time, id)` minimum, so the execution
//!   order is bit-identical to a single global queue.
//! * **O(1) cancellation without tombstone growth.** Cancelling frees the
//!   slot immediately (the action drops, the arena slot recycles); the dead
//!   heap entry is drained lazily the next time it surfaces, and a tombstone
//!   counter triggers a compaction sweep when dead entries outnumber live
//!   ones, so cancel-heavy runs (per-segment ACK timers) stay bounded.
//!
//! The `shadow-event-queue` feature runs the pre-sharding [`legacy`] queue in
//! lock-step and asserts every pop agrees — the transition-safety harness
//! proving the refactor preserves the total order.

use std::cmp::Ordering;

use crate::sim::Simulator;
use crate::time::Nanos;

/// A 4-ary min-heap of small `Copy` items.
///
/// The event core's heaps hold 16-byte plain-old-data entries, so a node's
/// four children share one 64-byte cache line: a sift-down touches half the
/// levels of a binary heap and one line per level, which is most of the
/// sharded core's speed advantage over the `std::collections::BinaryHeap`
/// generation it replaced.
#[derive(Debug)]
struct MinHeap4<T: Copy + Ord> {
    v: Vec<T>,
}

impl<T: Copy + Ord> Default for MinHeap4<T> {
    fn default() -> Self {
        MinHeap4::new()
    }
}

impl<T: Copy + Ord> MinHeap4<T> {
    fn new() -> MinHeap4<T> {
        MinHeap4 { v: Vec::new() }
    }

    /// Heapifies a vec in O(n).
    fn from_vec(v: Vec<T>) -> MinHeap4<T> {
        let mut h = MinHeap4 { v };
        if h.v.len() > 1 {
            for i in (0..=(h.v.len() - 2) / 4).rev() {
                h.sift_down(i);
            }
        }
        h
    }

    fn into_vec(self) -> Vec<T> {
        self.v
    }

    fn clear(&mut self) {
        self.v.clear();
    }

    #[inline]
    fn peek(&self) -> Option<&T> {
        self.v.first()
    }

    #[inline]
    fn push(&mut self, item: T) {
        self.v.push(item);
        let mut i = self.v.len() - 1;
        while i > 0 {
            let parent = (i - 1) >> 2;
            if self.v[parent] <= self.v[i] {
                break;
            }
            self.v.swap(i, parent);
            i = parent;
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<T> {
        let n = self.v.len();
        if n == 0 {
            return None;
        }
        self.v.swap(0, n - 1);
        let out = self.v.pop();
        if self.v.len() > 1 {
            self.sift_down(0);
        }
        out
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let n = self.v.len();
        loop {
            let first = (i << 2) + 1;
            if first >= n {
                break;
            }
            let last = (first + 4).min(n);
            let mut min = first;
            for c in first + 1..last {
                if self.v[c] < self.v[min] {
                    min = c;
                }
            }
            if self.v[i] <= self.v[min] {
                break;
            }
            self.v.swap(i, min);
            i = min;
        }
    }
}

/// An event action: a one-shot closure run at its scheduled time.
pub type EventFn = Box<dyn FnOnce(&mut Simulator)>;

/// Bits of an [`EventId`] holding the arena slot index.
const SLOT_BITS: u32 = 24;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;

/// Handle identifying a scheduled event, usable with
/// [`Simulator::cancel`](crate::Simulator::cancel).
///
/// The id packs the scheduling sequence number (high bits — the
/// deterministic tie-breaker) with the arena slot (low bits — O(1)
/// cancellation), so ids still compare in scheduling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

/// A heap entry: plain old data, 16 bytes, cheap to sift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    at: Nanos,
    id: u64,
}

impl Entry {
    fn key(&self) -> (Nanos, u64) {
        (self.at, self.id)
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Natural (min-first) order: earliest time, ties broken by
        // scheduling order (lower id first).
        self.at.cmp(&other.at).then_with(|| self.id.cmp(&other.id))
    }
}

/// One arena slot: the stored action plus the id it belongs to, so stale
/// heap entries pointing at a recycled slot are recognised as dead.
struct Slot {
    id: u64,
    action: Option<EventFn>,
}

/// Counters describing the queue's lifetime behaviour, surfaced as the
/// `sim.events_*` gauges in metrics snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
    /// Dead heap entries drained lazily on pop/peek.
    pub tombstones_purged: u64,
    /// Compaction sweeps rebuilding the shard heaps.
    pub compactions: u64,
    /// Live (pending, non-cancelled) events right now.
    pub pending: usize,
    /// Dead entries currently sitting in the heaps.
    pub tombstones: usize,
    /// Maximum simultaneously pending live events.
    pub high_water: usize,
    /// Pops served by the fenced fast path (no index traffic).
    pub run_hits: u64,
    /// Pops that needed a full head-index merge.
    pub merges: u64,
    /// Stale head-index entries discarded during merges.
    pub index_stale: u64,
}

/// Fenced fast-path state: while `shard`'s head stays at or below `fence`
/// (the runner-up key from the last index merge, `None` = no other entry
/// was indexed), it may pop without consulting the index.
#[derive(Clone, Copy)]
struct RunCache {
    shard: usize,
    fence: Option<(Nanos, u64)>,
}

/// A head-index entry: one shard's head at the time it was indexed. Stale
/// entries (the head has since been popped or displaced) are discarded
/// lazily when they surface at the index top.
#[derive(Clone, Copy, PartialEq, Eq)]
struct IndexEntry {
    e: Entry,
    shard: u32,
}

impl PartialOrd for IndexEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Order purely by the entry key; the shard tag is payload.
        self.e.cmp(&other.e)
    }
}

/// Deterministic priority queue of scheduled events with O(1) cancellation.
///
/// Invariant: every non-empty shard's *current* head has an entry in
/// `index` (possibly alongside stale duplicates). Pops keep it by
/// re-indexing a shard's new head immediately after popping the old one.
pub(crate) struct EventQueue {
    shards: Vec<MinHeap4<Entry>>,
    index: MinHeap4<IndexEntry>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    next_seq: u64,
    live: usize,
    tombstones: usize,
    scheduled: u64,
    cancelled: u64,
    tombstones_purged: u64,
    compactions: u64,
    high_water: usize,
    run_hits: u64,
    merges: u64,
    index_stale: u64,
    cache: Option<RunCache>,
    #[cfg(feature = "shadow-event-queue")]
    shadow: legacy::LegacyEventQueue,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue::with_shards(DEFAULT_SHARDS)
    }

    pub fn with_shards(shards: usize) -> EventQueue {
        let shards = shards.max(1);
        EventQueue {
            shards: (0..shards).map(|_| MinHeap4::new()).collect(),
            index: MinHeap4::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            tombstones: 0,
            scheduled: 0,
            cancelled: 0,
            tombstones_purged: 0,
            compactions: 0,
            high_water: 0,
            run_hits: 0,
            merges: 0,
            index_stale: 0,
            cache: None,
            #[cfg(feature = "shadow-event-queue")]
            shadow: legacy::LegacyEventQueue::new(),
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn is_live(&self, entry: Entry) -> bool {
        let slot = &self.slots[(entry.id & SLOT_MASK) as usize];
        slot.id == entry.id && slot.action.is_some()
    }

    pub fn push(&mut self, at: Nanos, shard_hint: u32, action: EventFn) -> EventId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = self.slots.len() as u64;
                assert!(s <= SLOT_MASK, "too many pending events ({s})");
                self.slots.push(Slot {
                    id: 0,
                    action: None,
                });
                s as u32
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        debug_assert!(seq < (1 << (64 - SLOT_BITS)), "event sequence overflow");
        let id = (seq << SLOT_BITS) | slot as u64;
        self.slots[slot as usize] = Slot {
            id,
            action: Some(action),
        };
        let shard = (shard_hint as usize) % self.shards.len();
        // A push into another shard below the fence can change the merge
        // winner; retire the fast path and re-merge on the next pop.
        if let Some(c) = self.cache {
            if c.shard != shard && c.fence.is_none_or(|f| (at, id) < f) {
                self.retire_cache();
            }
        }
        let entry = Entry { at, id };
        // Index the entry iff it becomes its shard's head; otherwise the
        // current head's index entry already covers the shard. The cached
        // shard is exempt while its run is active — `retire_cache`
        // re-indexes its head on run exit — so same-shard cascade pushes
        // generate no index traffic at all.
        let new_head = self.shards[shard]
            .peek()
            .is_none_or(|head| entry.key() < head.key());
        self.shards[shard].push(entry);
        if new_head && !matches!(self.cache, Some(c) if c.shard == shard) {
            self.index.push(IndexEntry {
                e: entry,
                shard: shard as u32,
            });
        }
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        self.scheduled += 1;
        #[cfg(feature = "shadow-event-queue")]
        self.shadow.push(at, Box::new(|_| {}));
        EventId(id)
    }

    pub fn cancel(&mut self, id: EventId) {
        let idx = (id.0 & SLOT_MASK) as usize;
        if idx >= self.slots.len() {
            return;
        }
        let slot = &mut self.slots[idx];
        if slot.id != id.0 || slot.action.is_none() {
            return; // already ran or already cancelled
        }
        slot.action = None;
        self.free.push(idx as u32);
        self.live -= 1;
        self.tombstones += 1;
        self.cancelled += 1;
        #[cfg(feature = "shadow-event-queue")]
        self.shadow.cancel(id.0 >> SLOT_BITS);
        self.maybe_compact();
    }

    /// Rebuilds every shard heap without its dead entries once tombstones
    /// outnumber live events, bounding memory on cancel-heavy runs. The
    /// head index is rebuilt from the surviving shard heads.
    fn maybe_compact(&mut self) {
        if self.tombstones <= 64 || self.tombstones <= self.live {
            return;
        }
        for shard in &mut self.shards {
            let entries: Vec<Entry> = std::mem::take(shard)
                .into_vec()
                .into_iter()
                .filter(|e| {
                    let slot = &self.slots[(e.id & SLOT_MASK) as usize];
                    slot.id == e.id && slot.action.is_some()
                })
                .collect();
            *shard = MinHeap4::from_vec(entries);
        }
        self.index.clear();
        for (s, shard) in self.shards.iter().enumerate() {
            if let Some(&head) = shard.peek() {
                self.index.push(IndexEntry {
                    e: head,
                    shard: s as u32,
                });
            }
        }
        self.tombstones_purged += self.tombstones as u64;
        self.tombstones = 0;
        self.compactions += 1;
        self.cache = None;
    }

    /// Ends a fast-path run: re-indexes the cached shard's current head
    /// (the one entry the lazy invariant exempts while the run is active)
    /// and clears the cache.
    #[cold]
    fn retire_cache(&mut self) {
        if let Some(c) = self.cache.take() {
            if let Some(&head) = self.shards[c.shard].peek() {
                self.index.push(IndexEntry {
                    e: head,
                    shard: c.shard as u32,
                });
            }
        }
    }

    /// Takes `entry`'s action out of the arena if it is still live; purges
    /// the tombstone counter otherwise.
    #[inline]
    fn claim(&mut self, entry: Entry) -> Option<EventFn> {
        let idx = (entry.id & SLOT_MASK) as usize;
        let slot = &mut self.slots[idx];
        if slot.id == entry.id {
            if let Some(action) = slot.action.take() {
                self.free.push(idx as u32);
                self.live -= 1;
                return Some(action);
            }
        }
        self.tombstones -= 1;
        self.tombstones_purged += 1;
        None
    }

    /// Full merge via the head index: pops the globally minimal live event,
    /// discarding dead entries and stale index entries along the way, and
    /// opens a new fenced run for the winning shard.
    fn merge_pop(&mut self) -> Option<(u32, Nanos, EventFn)> {
        self.merges += 1;
        loop {
            let top = *self.index.peek()?;
            let shard = top.shard as usize;
            if self.shards[shard].peek() != Some(&top.e) {
                // Stale: that head was popped or displaced since indexing.
                self.index.pop();
                self.index_stale += 1;
                continue;
            }
            self.index.pop();
            self.shards[shard].pop();
            if let Some(action) = self.claim(top.e) {
                // Open a run: the shard's next head stays un-indexed while
                // the fence (runner-up key; possibly a stale entry, which
                // is conservative — a too-low fence only re-merges early)
                // lets the fast path keep popping it.
                let fence = self.index.peek().map(|i| i.e.key());
                self.cache = Some(RunCache { shard, fence });
                return Some((shard as u32, top.e.at, action));
            }
            // Dead head: no run opened, so restore the shard's index cover.
            if let Some(&next) = self.shards[shard].peek() {
                self.index.push(IndexEntry {
                    e: next,
                    shard: top.shard,
                });
            }
        }
    }

    /// Pops the next live (non-cancelled) event with its shard.
    pub fn pop(&mut self) -> Option<(u32, Nanos, EventFn)> {
        let popped = self.pop_inner();
        #[cfg(feature = "shadow-event-queue")]
        match &popped {
            Some((_, at, _)) => {
                let (s_at, _s_seq) = self
                    .shadow
                    .pop()
                    .expect("shadow queue agrees the queue is non-empty");
                assert_eq!(
                    s_at, *at,
                    "sharded queue diverged from the legacy total order"
                );
            }
            None => assert!(
                self.shadow.pop().is_none(),
                "shadow queue still has live events"
            ),
        }
        popped
    }

    fn pop_inner(&mut self) -> Option<(u32, Nanos, EventFn)> {
        if self.live == 0 {
            self.retire_cache();
            return None;
        }
        // Fenced fast path: the last winner keeps popping while its head
        // stays at or below the runner-up key from the last merge — no
        // index traffic at all during the run.
        if let Some(c) = self.cache {
            while let Some(&head) = self.shards[c.shard].peek() {
                if c.fence.is_some_and(|f| head.key() > f) {
                    break;
                }
                self.shards[c.shard].pop();
                if let Some(action) = self.claim(head) {
                    self.run_hits += 1;
                    return Some((c.shard as u32, head.at, action));
                }
            }
            self.retire_cache();
        }
        self.merge_pop()
    }

    /// Timestamp of the next live event, if any. Purges dead heads and
    /// stale index entries encountered on the way.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        if self.live == 0 {
            return None;
        }
        // Fast path mirror of `pop_inner`: the cached shard's head is the
        // global minimum while it stays at or below the fence.
        if let Some(c) = self.cache {
            while let Some(&head) = self.shards[c.shard].peek() {
                if c.fence.is_some_and(|f| head.key() > f) {
                    break;
                }
                if self.is_live(head) {
                    return Some(head.at);
                }
                self.shards[c.shard].pop();
                self.tombstones -= 1;
                self.tombstones_purged += 1;
            }
            self.retire_cache();
        }
        loop {
            let top = *self.index.peek()?;
            let shard = top.shard as usize;
            if self.shards[shard].peek() != Some(&top.e) {
                self.index.pop();
                continue;
            }
            if self.is_live(top.e) {
                // Open a run so the following `pop` takes the fast path.
                self.index.pop();
                let fence = self.index.peek().map(|i| i.e.key());
                self.cache = Some(RunCache { shard, fence });
                return Some(top.e.at);
            }
            self.index.pop();
            self.shards[shard].pop();
            self.tombstones -= 1;
            self.tombstones_purged += 1;
            if let Some(&next) = self.shards[shard].peek() {
                self.index.push(IndexEntry {
                    e: next,
                    shard: top.shard,
                });
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    pub fn len(&self) -> usize {
        self.live
    }

    pub fn stats(&self) -> QueueStats {
        QueueStats {
            scheduled: self.scheduled,
            cancelled: self.cancelled,
            tombstones_purged: self.tombstones_purged,
            compactions: self.compactions,
            pending: self.live,
            tombstones: self.tombstones,
            high_water: self.high_water,
            run_hits: self.run_hits,
            merges: self.merges,
            index_stale: self.index_stale,
        }
    }
}

/// Default shard count: enough that a 31-replica cluster spreads ~2 hosts
/// per shard while the merge scan stays a cache-line-friendly sweep.
pub(crate) const DEFAULT_SHARDS: usize = 16;

pub(crate) mod legacy {
    //! The pre-sharding event queue: one global `BinaryHeap` of boxed
    //! events plus a cancelled-id `HashSet` checked on every pop. Kept as
    //! the lock-step oracle for the `shadow-event-queue` feature and as the
    //! measured baseline of the `sim_speed` bench.

    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashSet};

    use super::EventFn;
    use crate::time::Nanos;

    pub(crate) struct ScheduledEvent {
        pub at: Nanos,
        pub id: u64,
        #[allow(dead_code)]
        pub action: EventFn,
    }

    impl PartialEq for ScheduledEvent {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.id == other.id
        }
    }

    impl Eq for ScheduledEvent {}

    impl PartialOrd for ScheduledEvent {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for ScheduledEvent {
        fn cmp(&self, other: &Self) -> Ordering {
            other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
        }
    }

    pub(crate) struct LegacyEventQueue {
        heap: BinaryHeap<ScheduledEvent>,
        cancelled: HashSet<u64>,
        next_id: u64,
    }

    impl LegacyEventQueue {
        pub fn new() -> LegacyEventQueue {
            LegacyEventQueue {
                heap: BinaryHeap::new(),
                cancelled: HashSet::new(),
                next_id: 0,
            }
        }

        pub fn push(&mut self, at: Nanos, action: EventFn) -> u64 {
            let id = self.next_id;
            self.next_id += 1;
            self.heap.push(ScheduledEvent { at, id, action });
            id
        }

        pub fn cancel(&mut self, id: u64) {
            self.cancelled.insert(id);
        }

        pub fn pop(&mut self) -> Option<(Nanos, u64)> {
            while let Some(ev) = self.heap.pop() {
                if self.cancelled.remove(&ev.id) {
                    continue;
                }
                return Some((ev.at, ev.id));
            }
            None
        }

        #[allow(dead_code)]
        pub fn peek_time(&mut self) -> Option<Nanos> {
            loop {
                match self.heap.peek() {
                    None => return None,
                    Some(ev) if self.cancelled.contains(&ev.id) => {
                        let ev = self.heap.pop().expect("peeked event exists");
                        self.cancelled.remove(&ev.id);
                    }
                    Some(ev) => return Some(ev.at),
                }
            }
        }
    }
}

pub mod speed {
    //! The event-core micro-benchmark behind `bench --bin sim_speed`.
    //!
    //! Both queue generations run the *same* deterministic workload — a
    //! standing window of pending events spread across simulated hosts,
    //! with a slice of timers cancelled before they fire, the shape the RC
    //! transports and geo runs actually produce — and report events/sec.

    use super::{legacy::LegacyEventQueue, EventQueue};
    use crate::time::Nanos;

    /// Workload knobs for [`events_per_sec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SpeedWorkload {
        /// Total events scheduled.
        pub events: u64,
        /// Standing pending-event window.
        pub window: usize,
        /// Every k-th event is cancelled before firing (0 = none).
        pub cancel_every: u64,
        /// Simulated host count driving the shard hints.
        pub hosts: u32,
        /// Maximum events per same-host burst: when a host wakes up it
        /// schedules a cascade of follow-ups (handler completions, DMA
        /// doorbells, acks) clustered a few nanoseconds apart — the shape
        /// the RC transports actually produce.
        pub burst: u64,
    }

    impl Default for SpeedWorkload {
        fn default() -> SpeedWorkload {
            // The scale-out regime the PR targets: a thousand-client WAN
            // run holds a ~100k-event standing window dominated by
            // retransmission guards, nearly all cancelled by their acks.
            SpeedWorkload {
                events: 600_000,
                window: 100_000,
                cancel_every: 2,
                hosts: 32,
                burst: 8,
            }
        }
    }

    /// Which event-core generation to measure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Core {
        /// The pre-sharding global heap + cancelled-id `HashSet`.
        Legacy,
        /// The sharded slab queue with conservative lookahead.
        Sharded,
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    /// Runs the workload on the chosen core and returns `(events_per_sec,
    /// executed)`. Deterministic in its decisions; only the wall-clock
    /// denominator varies by machine.
    pub fn events_per_sec(core: Core, w: SpeedWorkload, seed: u64) -> (f64, u64) {
        enum Q {
            Legacy(LegacyEventQueue),
            Sharded(EventQueue),
        }
        let mut q = match core {
            Core::Legacy => Q::Legacy(LegacyEventQueue::new()),
            Core::Sharded => Q::Sharded(EventQueue::with_shards(16)),
        };
        let mut rng = seed | 1;
        let mut now = Nanos::ZERO;
        let mut pending: usize = 0;
        let mut executed: u64 = 0;
        let mut last_id: Option<u64> = None;
        let start = std::time::Instant::now();
        let mut scheduled: u64 = 0;
        while scheduled < w.events {
            // A host wakes up and schedules a burst of follow-up events.
            // Three in four bursts are local cascades (handler work, DMA
            // completions, acks a few nanoseconds out); the rest are long
            // retransmission-guard timers — the population the cancels hit.
            let host = (lcg(&mut rng) % w.hosts as u64) as u32;
            let burst_len = 1 + lcg(&mut rng) % w.burst.max(1);
            let base = if lcg(&mut rng).is_multiple_of(4) {
                now + Nanos::from_nanos(10_000 + lcg(&mut rng) % 100_000)
            } else {
                now + Nanos::from_nanos(20 + lcg(&mut rng) % 200)
            };
            for j in 0..burst_len {
                if scheduled >= w.events {
                    break;
                }
                let at = base + Nanos::from_nanos(5 * j);
                let id = match &mut q {
                    Q::Legacy(q) => q.push(at, Box::new(|_| {})),
                    Q::Sharded(q) => q.push(at, host, Box::new(|_| {})).0,
                };
                scheduled += 1;
                pending += 1;
                if w.cancel_every > 0 && scheduled.is_multiple_of(w.cancel_every) {
                    // Cancel the previously scheduled event (an ACK
                    // arriving before its retransmission timer fires).
                    if let Some(prev) = last_id.take() {
                        match &mut q {
                            Q::Legacy(q) => q.cancel(prev),
                            Q::Sharded(q) => q.cancel(super::EventId(prev)),
                        }
                        pending -= 1;
                    }
                }
                last_id = Some(id);
                while pending > w.window {
                    let popped = match &mut q {
                        Q::Legacy(q) => q.pop().map(|(at, _)| at),
                        Q::Sharded(q) => q.pop().map(|(_, at, _)| at),
                    };
                    if let Some(at) = popped {
                        now = at;
                        executed += 1;
                    }
                    pending -= 1;
                }
            }
        }
        loop {
            let popped = match &mut q {
                Q::Legacy(q) => q.pop(),
                Q::Sharded(q) => q.pop().map(|(_, at, _)| (at, 0)),
            };
            if popped.is_none() {
                break;
            }
            executed += 1;
        }
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        if std::env::var("SIM_SPEED_DEBUG").is_ok() {
            if let Q::Sharded(q) = &q {
                eprintln!("  sharded stats: {:?}", q.stats());
            }
        }
        (executed as f64 / elapsed, executed)
    }

    /// Runs both cores on the same workload and asserts they execute the
    /// same number of events; returns `(legacy_eps, sharded_eps)`.
    pub fn compare(w: SpeedWorkload, seed: u64) -> (f64, f64) {
        let (legacy_eps, legacy_n) = events_per_sec(Core::Legacy, w, seed);
        let (sharded_eps, sharded_n) = events_per_sec(Core::Sharded, w, seed);
        assert_eq!(
            legacy_n, sharded_n,
            "both cores must execute the same workload"
        );
        (legacy_eps, sharded_eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> EventFn {
        Box::new(|_| {})
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(30), 0, noop());
        q.push(Nanos::from_nanos(10), 1, noop());
        q.push(Nanos::from_nanos(20), 2, noop());
        assert_eq!(q.pop().unwrap().1.as_nanos(), 10);
        assert_eq!(q.pop().unwrap().1.as_nanos(), 20);
        assert_eq!(q.pop().unwrap().1.as_nanos(), 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order_across_shards() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos::from_nanos(5), 3, noop());
        let b = q.push(Nanos::from_nanos(5), 9, noop());
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        // Entries live in different shards; insertion order still wins.
        assert!(a < b);
        assert_eq!(first.1, Nanos::from_nanos(5));
        assert_eq!(second.1, Nanos::from_nanos(5));
    }

    #[test]
    fn cancelled_events_are_skipped_and_counted() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos::from_nanos(1), 0, noop());
        q.push(Nanos::from_nanos(2), 0, noop());
        q.cancel(a);
        assert_eq!(q.pop().unwrap().1.as_nanos(), 2);
        assert!(q.pop().is_none());
        let s = q.stats();
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.tombstones_purged, 1);
        assert_eq!(s.tombstones, 0);
    }

    #[test]
    fn cancel_after_pop_is_a_noop() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos::from_nanos(1), 0, noop());
        let _ = q.pop().unwrap();
        q.cancel(a);
        // The slot was recycled; cancelling the stale handle must not
        // damage a new event reusing it.
        let b = q.push(Nanos::from_nanos(9), 0, noop());
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.cancel(b);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(Nanos::from_nanos(1), 0, noop());
        q.push(Nanos::from_nanos(7), 0, noop());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(7)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn slots_recycle_under_churn() {
        let mut q = EventQueue::new();
        for round in 0..1_000u64 {
            let id = q.push(Nanos::from_nanos(round), (round % 7) as u32, noop());
            if round % 2 == 0 {
                q.cancel(id);
            } else {
                let _ = q.pop().unwrap();
            }
        }
        // The arena never grew past the tiny working set.
        assert!(q.slots.len() <= 4, "arena grew to {}", q.slots.len());
        assert!(q.is_empty() || q.len() <= 1);
    }

    #[test]
    fn compaction_bounds_tombstones() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..1_000)
            .map(|i| q.push(Nanos::from_nanos(1_000 + i), (i % 16) as u32, noop()))
            .collect();
        // One survivor; cancel everything else without popping.
        for id in &ids[1..] {
            q.cancel(*id);
        }
        let s = q.stats();
        assert!(s.compactions >= 1, "mass-cancel must trigger compaction");
        assert!(
            s.tombstones <= s.pending.max(64),
            "tombstones must stay bounded by live events: {s:?}"
        );
        assert_eq!(q.pop().unwrap().1.as_nanos(), 1_000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn matches_legacy_order_under_random_churn() {
        use legacy::LegacyEventQueue;
        let mut new_q = EventQueue::with_shards(5);
        let mut old_q = LegacyEventQueue::new();
        let mut state = 0x5EEDu64;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut live_new: Vec<EventId> = Vec::new();
        let mut live_old: Vec<u64> = Vec::new();
        for _ in 0..5_000 {
            match lcg() % 4 {
                0 | 1 => {
                    let at = Nanos::from_nanos(lcg() % 512);
                    let shard = (lcg() % 5) as u32;
                    live_new.push(new_q.push(at, shard, noop()));
                    live_old.push(old_q.push(at, noop()));
                }
                2 if !live_new.is_empty() => {
                    let i = (lcg() as usize) % live_new.len();
                    new_q.cancel(live_new.swap_remove(i));
                    old_q.cancel(live_old.swap_remove(i));
                }
                _ => {
                    let a = new_q.pop().map(|(_, at, _)| at);
                    let b = old_q.pop().map(|(at, _)| at);
                    assert_eq!(a, b, "pop order diverged");
                    assert_eq!(new_q.peek_time(), old_q.peek_time());
                }
            }
        }
        loop {
            let a = new_q.pop().map(|(_, at, _)| at);
            let b = old_q.pop().map(|(at, _)| at);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn speed_harness_cores_agree() {
        let w = speed::SpeedWorkload {
            events: 5_000,
            window: 500,
            cancel_every: 3,
            hosts: 8,
            burst: 8,
        };
        let (l, s) = speed::compare(w, 7);
        assert!(l > 0.0 && s > 0.0);
    }
}
