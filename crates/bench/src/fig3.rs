//! Figure 3: client–server echo micro-benchmark on two machines.
//!
//! Four series, as in the paper:
//!
//! * **TCP** — plain non-blocking stream sockets.
//! * **RDMA Send/Recv** — raw two-sided verbs, every send signaled, data
//!   copied into registered buffers on both sides (the naive integration).
//! * **RDMA Read/Write** — one-sided RDMA WRITE; "only the client writes
//!   messages to the server without waiting for a response" (§V), so a
//!   message completes at the client's write completion.
//! * **RDMA Channel** — the RUBIN channel with the §IV optimizations
//!   (pre-registered pools, batched posting, selective signaling,
//!   send-side zero copy, inline), echoed by the server.

use rdma_verbs::{
    connect_pair, Access, QpConfig, RdmaDevice, RecvWr, RnicModel, SendWr, Sge, WrId,
};
use rubin::{RdmaChannel, RecvOutcome, RubinConfig};
use simnet::{throughput_ops_per_sec, CoreId, LatencyRecorder, Nanos, Series, TestBed};
use simnet_socket::{ReadOutcome, TcpListener, TcpModel, TcpStream};

use crate::{pattern, EchoResult, PAYLOAD_SWEEP};

/// Runs the full Figure 3 sweep; returns `(latency series, throughput
/// series)`, one entry per protocol.
pub fn run(msgs: usize) -> (Vec<Series>, Vec<Series>) {
    let mut lat: Vec<Series> = ["TCP", "RDMA Send/Recv", "RDMA Read/Write", "RDMA Channel"]
        .iter()
        .map(|l| Series::new(*l))
        .collect();
    let mut thr = lat.clone();
    for &payload in &PAYLOAD_SWEEP {
        let points = [
            tcp_echo(payload, msgs),
            send_recv_echo(payload, msgs),
            write_oneway(payload, msgs),
            channel_echo(payload, msgs, RubinConfig::paper()),
        ];
        for (i, p) in points.iter().enumerate() {
            lat[i].push(payload, p.latency_us);
            thr[i].push(payload, p.rps);
        }
    }
    (lat, thr)
}

/// Plain TCP echo: the client ping-pongs `msgs` messages of `payload`
/// bytes with a server on the other machine.
pub fn tcp_echo(payload: usize, msgs: usize) -> EchoResult {
    tcp_echo_instrumented(payload, msgs).0
}

/// As [`tcp_echo`], additionally returning the run's full cross-layer
/// [`simnet::MetricsSnapshot`] (used by the report sidecar and the stack
/// invariant tests).
pub fn tcp_echo_instrumented(payload: usize, msgs: usize) -> (EchoResult, simnet::MetricsSnapshot) {
    let mut tb = TestBed::paper_testbed(0xF163);
    let model = TcpModel::linux_xeon();
    let listener =
        TcpListener::bind(&tb.net, tb.b, 80, CoreId(0), model.clone()).expect("port free");
    let client = TcpStream::connect(
        &mut tb.sim,
        &tb.net,
        tb.a,
        CoreId(0),
        model.clone(),
        listener.local_addr(),
    );
    tb.sim.run_until_idle();
    let server = listener.accept(&mut tb.sim).expect("accepted");
    let data = pattern(payload);

    let mut rec = LatencyRecorder::new();
    let t0 = tb.sim.now();
    for _ in 0..msgs {
        let start = tb.sim.now();
        let (mut c_sent, mut s_recv, mut s_sent, mut c_recv) = (0usize, 0usize, 0usize, 0usize);
        // A selector-driven application is woken with substantial buffer
        // space / data available and performs few large read/write calls;
        // issuing one syscall per freed segment would be a driver artefact.
        const CHUNK: usize = 32 * 1024;
        loop {
            if c_sent < payload && client.free_send_space() >= (payload - c_sent).min(CHUNK) {
                c_sent += client.write(&mut tb.sim, &data[c_sent..]).expect("write");
            }
            if s_recv < payload && server.available() >= (payload - s_recv).min(CHUNK) {
                if let ReadOutcome::Data(d) = server.read(&mut tb.sim, 1 << 20).expect("read") {
                    s_recv += d.len();
                }
            }
            if s_sent < s_recv && server.free_send_space() >= (s_recv - s_sent).min(CHUNK) {
                s_sent += server
                    .write(&mut tb.sim, &data[s_sent..s_recv])
                    .expect("write");
            }
            if c_recv < payload && client.available() >= (payload - c_recv).min(CHUNK) {
                if let ReadOutcome::Data(d) = client.read(&mut tb.sim, 1 << 20).expect("read") {
                    c_recv += d.len();
                }
            }
            if c_recv == payload {
                break;
            }
            assert!(tb.sim.step(), "echo stalled with no pending events");
        }
        rec.record(tb.sim.now() - start);
    }
    let result = EchoResult {
        latency_us: rec.mean().as_micros_f64(),
        rps: throughput_ops_per_sec(msgs as u64, tb.sim.now() - t0),
    };
    (result, tb.net.metrics().snapshot())
}

struct VerbsEnd {
    dev: RdmaDevice,
    pd: rdma_verbs::ProtectionDomain,
    qp: rdma_verbs::QueuePair,
    sbuf: rdma_verbs::MemoryRegion,
    rbuf: rdma_verbs::MemoryRegion,
}

fn verbs_pair(tb: &mut TestBed, payload: usize) -> (VerbsEnd, VerbsEnd) {
    let mk = |net: &simnet::Network, host| {
        let dev = RdmaDevice::open(net, host, RnicModel::mt27520());
        let pd = dev.alloc_pd();
        let scq = dev.create_cq(256, None);
        let rcq = dev.create_cq(256, None);
        let qp = dev.create_qp(&QpConfig {
            pd,
            send_cq: scq,
            recv_cq: rcq,
            core: CoreId(0),
        });
        let sbuf = dev.reg_mr(&pd, payload.max(1), Access::LOCAL_WRITE);
        let rbuf = dev.reg_mr(
            &pd,
            payload.max(1),
            Access::LOCAL_WRITE | Access::REMOTE_WRITE,
        );
        VerbsEnd {
            dev,
            pd,
            qp,
            sbuf,
            rbuf,
        }
    };
    let a = mk(&tb.net, tb.a);
    let b = mk(&tb.net, tb.b);
    connect_pair(&a.qp, &b.qp).expect("fresh queue pairs connect");
    (a, b)
}

/// Charges an application-level buffer copy plus runtime overhead.
fn charge_copy(tb: &mut TestBed, host: simnet::HostId, len: usize) {
    let h = tb.net.host(host);
    let mut h = h.borrow_mut();
    let cpu = h.cpu().clone();
    let work = Nanos::from_nanos(cpu.runtime_io_ns) + cpu.copy_cost(len);
    h.exec(tb.sim.now(), CoreId(0), work);
}

/// Charges the managed-runtime dispatch overhead only (no copy).
fn charge_runtime(tb: &mut TestBed, host: simnet::HostId) {
    let h = tb.net.host(host);
    let mut h = h.borrow_mut();
    let cpu = h.cpu().clone();
    h.exec(
        tb.sim.now(),
        CoreId(0),
        Nanos::from_nanos(cpu.runtime_io_ns),
    );
}

/// Raw two-sided echo: every send signaled, both sides copy between
/// application and registered buffers — the unoptimized baseline RUBIN
/// improves on.
pub fn send_recv_echo(payload: usize, msgs: usize) -> EchoResult {
    let mut tb = TestBed::paper_testbed(0xF1632);
    let (client, server) = verbs_pair(&mut tb, payload);
    let data = pattern(payload);

    // Pre-post the first receive on each side; subsequent re-posts happen
    // on the critical path, as naive per-message code does.
    client
        .qp
        .post_recv(
            &mut tb.sim,
            RecvWr::new(WrId(0), Sge::whole(client.rbuf.clone())),
        )
        .expect("post recv");
    server
        .qp
        .post_recv(
            &mut tb.sim,
            RecvWr::new(WrId(0), Sge::whole(server.rbuf.clone())),
        )
        .expect("post recv");

    let mut rec = LatencyRecorder::new();
    let t0 = tb.sim.now();
    for m in 0..msgs {
        let start = tb.sim.now();
        // Client: copy into the registered buffer and send (signaled).
        let ha = tb.a;
        charge_copy(&mut tb, ha, payload);
        client.sbuf.write(0, &data).expect("fits");
        client
            .qp
            .post_send(
                &mut tb.sim,
                SendWr::send(WrId(m as u64), Sge::whole(client.sbuf.clone())).signaled(),
            )
            .expect("post send");
        // Server: on arrival it dispatches, re-posts its receive, copies
        // the reply into its registered send buffer and posts it — all on
        // the critical path, as naive per-message DiSNI code does. It can
        // read the request in place (no receive-side copy: the one the
        // RUBIN channel abstraction cannot avoid).
        let mut echoed = false;
        loop {
            if !echoed {
                let rx = server.qp.recv_cq().poll(4);
                if !rx.is_empty() {
                    assert!(rx[0].is_ok(), "server recv failed: {rx:?}");
                    server.dev.charge_poll(&tb.sim, CoreId(0), rx.len());
                    let hb = tb.b;
                    charge_runtime(&mut tb, hb); // app dispatch
                    server
                        .qp
                        .post_recv(
                            &mut tb.sim,
                            RecvWr::new(WrId(m as u64 + 1), Sge::whole(server.rbuf.clone())),
                        )
                        .expect("repost recv");
                    let hb = tb.b;
                    charge_copy(&mut tb, hb, payload); // reply into send buf
                    server.sbuf.write(0, &data).expect("fits");
                    server
                        .qp
                        .post_send(
                            &mut tb.sim,
                            SendWr::send(WrId(m as u64), Sge::whole(server.sbuf.clone()))
                                .signaled(),
                        )
                        .expect("post send");
                    echoed = true;
                }
            }
            let rx = client.qp.recv_cq().poll(4);
            if !rx.is_empty() {
                assert!(rx[0].is_ok(), "client recv failed: {rx:?}");
                client.dev.charge_poll(&tb.sim, CoreId(0), rx.len());
                let ha = tb.a;
                charge_copy(&mut tb, ha, payload); // app copy out
                client
                    .qp
                    .post_recv(
                        &mut tb.sim,
                        RecvWr::new(WrId(m as u64 + 1), Sge::whole(client.rbuf.clone())),
                    )
                    .expect("repost recv");
                break;
            }
            // Drain send completions as they appear.
            let tx = client.qp.send_cq().poll(4);
            if !tx.is_empty() {
                client.dev.charge_poll(&tb.sim, CoreId(0), tx.len());
            }
            let tx = server.qp.send_cq().poll(4);
            if !tx.is_empty() {
                server.dev.charge_poll(&tb.sim, CoreId(0), tx.len());
            }
            assert!(tb.sim.step(), "echo stalled");
        }
        rec.record(tb.sim.now() - start);
    }
    EchoResult {
        latency_us: rec.mean().as_micros_f64(),
        rps: throughput_ops_per_sec(msgs as u64, tb.sim.now() - t0),
    }
}

/// One-sided RDMA WRITE: the client deposits messages directly in server
/// memory; a message is complete when the client's WRITEs complete. No
/// server software runs at all. As in one-sided ring designs, each message
/// is a payload write followed by a small *tail-pointer* write the server
/// would poll on; the tail write is the signaled one (RC ordering makes
/// its completion imply the payload landed).
pub fn write_oneway(payload: usize, msgs: usize) -> EchoResult {
    let mut tb = TestBed::paper_testbed(0xF1633);
    let (client, server) = verbs_pair(&mut tb, payload);
    let data = pattern(payload);
    let rkey = server.rbuf.rkey();
    // An 8-byte tail pointer at the end of the server region.
    let tail_src = client.dev.reg_mr(&client_pd(&client), 8, Access::NONE);

    let mut rec = LatencyRecorder::new();
    let t0 = tb.sim.now();
    for m in 0..msgs {
        let start = tb.sim.now();
        let ha = tb.a;
        charge_copy(&mut tb, ha, payload);
        client.sbuf.write(0, &data).expect("fits");
        tail_src.write(0, &(m as u64).to_le_bytes()).expect("fits");
        client
            .qp
            .post_send_batch(
                &mut tb.sim,
                vec![
                    SendWr::write(WrId(m as u64), Sge::whole(client.sbuf.clone()), rkey, 0),
                    SendWr::write(
                        WrId(m as u64),
                        Sge::whole(tail_src.clone()),
                        rkey,
                        payload.saturating_sub(8),
                    )
                    .signaled(),
                ],
            )
            .expect("post writes");
        loop {
            let tx = client.qp.send_cq().poll(4);
            if !tx.is_empty() {
                assert!(tx[0].is_ok(), "write failed: {tx:?}");
                client.dev.charge_poll(&tb.sim, CoreId(0), tx.len());
                break;
            }
            assert!(tb.sim.step(), "write stalled");
        }
        rec.record(tb.sim.now() - start);
    }
    EchoResult {
        latency_us: rec.mean().as_micros_f64(),
        rps: throughput_ops_per_sec(msgs as u64, tb.sim.now() - t0),
    }
}

/// The protection domain a verbs endpoint's buffers live in.
fn client_pd(end: &VerbsEnd) -> rdma_verbs::ProtectionDomain {
    end.pd
}

/// The RUBIN RDMA channel echo with a configurable optimization set (the
/// ablation benchmark reuses this with other configs).
pub fn channel_echo(payload: usize, msgs: usize, cfg: RubinConfig) -> EchoResult {
    channel_echo_instrumented(payload, msgs, cfg).0
}

/// As [`channel_echo`], additionally returning the run's full cross-layer
/// [`simnet::MetricsSnapshot`] (used by the report sidecar and the stack
/// invariant tests).
pub fn channel_echo_instrumented(
    payload: usize,
    msgs: usize,
    cfg: RubinConfig,
) -> (EchoResult, simnet::MetricsSnapshot) {
    channel_echo_run(payload, msgs, cfg, 0.0)
}

/// As [`channel_echo_instrumented`] but with frame loss probability `loss`
/// applied to both directions of the link *after* establishment: the RC
/// retransmission path recovers every drop while the data path stays on
/// the RNIC (asserted by the stack-invariant tests).
pub fn channel_echo_lossy_instrumented(
    payload: usize,
    msgs: usize,
    cfg: RubinConfig,
    loss: f64,
) -> (EchoResult, simnet::MetricsSnapshot) {
    channel_echo_run(payload, msgs, cfg, loss)
}

fn channel_echo_run(
    payload: usize,
    msgs: usize,
    cfg: RubinConfig,
    loss: f64,
) -> (EchoResult, simnet::MetricsSnapshot) {
    let mut tb = TestBed::paper_testbed(0xF1634);
    let dev_a = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
    let dev_b = RdmaDevice::open(&tb.net, tb.b, RnicModel::mt27520());
    let _listener = dev_b.listen(4000).expect("port free");
    let client = RdmaChannel::connect(
        &mut tb.sim,
        &dev_a,
        simnet::Addr::new(tb.b, 4000),
        cfg.clone(),
        CoreId(0),
    )
    .expect("connect");
    tb.sim.run_until_idle();
    // Manual accept + establishment (no selector in this microbenchmark).
    let mut server = None;
    while let Some(ev) = dev_b.poll_cm_event() {
        if let rdma_verbs::CmEvent::ConnectRequest(req) = ev {
            server = Some(
                RdmaChannel::from_accepted(&mut tb.sim, &dev_b, req, cfg.clone(), CoreId(0))
                    .expect("accept"),
            );
        }
    }
    let server = server.expect("server channel");
    tb.sim.run_until_idle();
    while let Some(ev) = dev_a.poll_cm_event() {
        if let rdma_verbs::CmEvent::Established { .. } = ev {
            client.mark_established(&mut tb.sim);
        }
    }
    assert!(client.is_established());
    if loss > 0.0 {
        let (a, b) = (tb.a, tb.b);
        tb.net.with_faults(|f| {
            f.set_loss(a, b, loss);
            f.set_loss(b, a, loss);
        });
    }
    let data = pattern(payload);

    let mut rec = LatencyRecorder::new();
    let t0 = tb.sim.now();
    for _ in 0..msgs {
        let start = tb.sim.now();
        assert!(client.write(&mut tb.sim, &data).expect("write accepted"));
        let mut echoed = false;
        loop {
            server.process_completions(&mut tb.sim);
            if !echoed {
                if let RecvOutcome::Msg(m) = server.read(&mut tb.sim).expect("read") {
                    assert_eq!(m.len(), payload);
                    assert!(server.write(&mut tb.sim, &m).expect("echo accepted"));
                    echoed = true;
                }
            }
            client.process_completions(&mut tb.sim);
            if let RecvOutcome::Msg(m) = client.read(&mut tb.sim).expect("read") {
                assert_eq!(m, data);
                break;
            }
            assert!(tb.sim.step(), "channel echo stalled");
        }
        rec.record(tb.sim.now() - start);
    }
    let result = EchoResult {
        latency_us: rec.mean().as_micros_f64(),
        rps: throughput_ops_per_sec(msgs as u64, tb.sim.now() - t0),
    };
    tb.net.publish_sim_gauges(&tb.sim);
    (result, tb.net.metrics().snapshot())
}

/// Pipelined RUBIN channel echo: keeps `window` messages outstanding so
/// per-message overheads (signaling, posting) land on the critical path —
/// used by the ablation benchmark where the sequential echo would hide
/// them in idle time.
pub fn channel_echo_pipelined(
    payload: usize,
    msgs: usize,
    window: usize,
    cfg: RubinConfig,
) -> EchoResult {
    let mut tb = TestBed::paper_testbed(0xF1635);
    let dev_a = RdmaDevice::open(&tb.net, tb.a, RnicModel::mt27520());
    let dev_b = RdmaDevice::open(&tb.net, tb.b, RnicModel::mt27520());
    let _listener = dev_b.listen(4000).expect("port free");
    let client = RdmaChannel::connect(
        &mut tb.sim,
        &dev_a,
        simnet::Addr::new(tb.b, 4000),
        cfg.clone(),
        CoreId(0),
    )
    .expect("connect");
    tb.sim.run_until_idle();
    let mut server = None;
    while let Some(ev) = dev_b.poll_cm_event() {
        if let rdma_verbs::CmEvent::ConnectRequest(req) = ev {
            server = Some(
                RdmaChannel::from_accepted(&mut tb.sim, &dev_b, req, cfg.clone(), CoreId(0))
                    .expect("accept"),
            );
        }
    }
    let server = server.expect("server channel");
    tb.sim.run_until_idle();
    while let Some(ev) = dev_a.poll_cm_event() {
        if let rdma_verbs::CmEvent::Established { .. } = ev {
            client.mark_established(&mut tb.sim);
        }
    }
    let data = pattern(payload);

    let mut rec = LatencyRecorder::new();
    let mut send_times = std::collections::VecDeque::new();
    let mut sent = 0usize;
    let mut done = 0usize;
    let t0 = tb.sim.now();
    while done < msgs {
        // Keep the window full.
        while sent < msgs && sent - done < window {
            if !client.write(&mut tb.sim, &data).expect("write") {
                break; // buffers exhausted: wait for completions
            }
            send_times.push_back(tb.sim.now());
            sent += 1;
        }
        server.process_completions(&mut tb.sim);
        if cfg.zero_copy_receive {
            // §VII path: echo from the borrowed buffer without copying out.
            while let Some(m) = server.read_borrowed(&mut tb.sim).expect("read") {
                let echoed = m.with_data(|d| d.to_vec());
                m.release(&mut tb.sim).expect("release");
                if !server.write(&mut tb.sim, &echoed).expect("echo") {
                    break;
                }
            }
        } else {
            while let RecvOutcome::Msg(m) = server.read(&mut tb.sim).expect("read") {
                if !server.write(&mut tb.sim, &m).expect("echo") {
                    // Should not happen with symmetric pools, but be safe.
                    break;
                }
            }
        }
        client.process_completions(&mut tb.sim);
        while let RecvOutcome::Msg(_) = client.read(&mut tb.sim).expect("read") {
            let at = send_times.pop_front().expect("matching send");
            rec.record(tb.sim.now() - at);
            done += 1;
        }
        if done < msgs && !tb.sim.step() {
            panic!("pipelined channel echo stalled at {done}/{msgs}");
        }
    }
    EchoResult {
        latency_us: rec.mean().as_micros_f64(),
        rps: throughput_ops_per_sec(msgs as u64, tb.sim.now() - t0),
    }
}

/// Formats the expected-shape checks of §V against the measured series;
/// returns human-readable pass/fail lines (used by the binary and tests).
pub fn shape_report(lat: &[Series], thr: &[Series]) -> Vec<(String, bool)> {
    let v = |s: &Series, p: usize| s.value_at(p).expect("point measured");
    let tcp = &lat[0];
    let sr = &lat[1];
    let rw = &lat[2];
    let ch = &lat[3];
    let mut out = Vec::new();

    // RDMA Read/Write lowest latency everywhere.
    let rw_lowest = PAYLOAD_SWEEP
        .iter()
        .all(|&p| v(rw, p) < v(sr, p) && v(rw, p) < v(tcp, p) && v(rw, p) < v(ch, p));
    out.push(("RDMA Read/Write has the lowest latency".into(), rw_lowest));

    // ~46 % below Send/Recv (band check: 35–70 % — see EXPERIMENTS.md for
    // why the simulated gap runs somewhat above the paper's).
    let rw_vs_sr: f64 = PAYLOAD_SWEEP
        .iter()
        .map(|&p| 1.0 - v(rw, p) / v(sr, p))
        .sum::<f64>()
        / PAYLOAD_SWEEP.len() as f64;
    out.push((
        format!(
            "Read/Write ≈46% below Send/Recv (measured {:.0}%)",
            rw_vs_sr * 100.0
        ),
        (0.35..=0.70).contains(&rw_vs_sr),
    ));

    // 53–79 % below TCP.
    let rw_vs_tcp_min = PAYLOAD_SWEEP
        .iter()
        .map(|&p| 1.0 - v(rw, p) / v(tcp, p))
        .fold(f64::INFINITY, f64::min);
    let rw_vs_tcp_max = PAYLOAD_SWEEP
        .iter()
        .map(|&p| 1.0 - v(rw, p) / v(tcp, p))
        .fold(0.0, f64::max);
    out.push((
        format!(
            "Read/Write 53–79% below TCP (measured {:.0}–{:.0}%)",
            rw_vs_tcp_min * 100.0,
            rw_vs_tcp_max * 100.0
        ),
        rw_vs_tcp_min > 0.50 && rw_vs_tcp_max < 0.85,
    ));

    // Channel 33–43 % below TCP.
    let ch_vs_tcp: Vec<f64> = PAYLOAD_SWEEP
        .iter()
        .map(|&p| 1.0 - v(ch, p) / v(tcp, p))
        .collect();
    let lo = ch_vs_tcp.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = ch_vs_tcp.iter().copied().fold(0.0, f64::max);
    out.push((
        format!(
            "Channel 33–43% below TCP (measured {:.0}–{:.0}%)",
            lo * 100.0,
            hi * 100.0
        ),
        lo > 0.25 && hi < 0.50,
    ));

    // Channel beats Send/Recv at small payloads and loses above the
    // crossover (the receive-side copy). The simulated crossover sits at
    // ~4–8 KB versus the paper's 16 KB; see EXPERIMENTS.md.
    let small_better = [1024usize, 2048, 4096].iter().all(|&p| v(ch, p) < v(sr, p));
    let large_worse = [32_768usize, 65_536, 102_400]
        .iter()
        .all(|&p| v(ch, p) > v(sr, p));
    out.push((
        "Channel beats Send/Recv at small payloads, degrades at large (recv copy)".into(),
        small_better && large_worse,
    ));

    // Throughput mirror: Read/Write highest everywhere.
    let t = |s: &Series, p: usize| s.value_at(p).expect("point");
    let rw_thr_best = PAYLOAD_SWEEP
        .iter()
        .all(|&p| t(&thr[2], p) >= t(&thr[0], p) && t(&thr[2], p) >= t(&thr[1], p));
    out.push(("Read/Write throughput is the highest".into(), rw_thr_best));
    out
}
