//! Read throughput of the replicated KV service: one-sided
//! agreement-free reads vs. the message (agreement) path.
//!
//! The experiment the lease machinery exists for: at a read-heavy YCSB
//! mix, serving `Get`s by RNIC-checked one-sided READs removes the whole
//! agreement pipeline — batching, MAC vectors, three protocol phases,
//! replica CPU — from the read's critical path. Both operating points run
//! the *same* RDMA stack and the same workload; the only difference is
//! `read_leases`, so the ratio isolates the protocol change rather than
//! the transport. Every measured run's recorded history is
//! linearizability-checked — a throughput number from an unsafe run is
//! worthless.

use kvstore::{KvHarness, KvHistOp, Stack, YcsbSpec};
use reptor::ReptorConfig;
use simnet::throughput_ops_per_sec;

/// One measured KV operating point.
#[derive(Debug, Clone)]
pub struct KvPoint {
    /// Operating-point label.
    pub label: String,
    /// Completed reads.
    pub reads: u64,
    /// Completed read throughput in ops/s of simulated time.
    pub read_rps: f64,
    /// Mean completed-read latency in microseconds.
    pub read_latency_us: f64,
    /// Reads served one-sided.
    pub onesided: u64,
    /// Reads served through agreement (fallbacks included).
    pub fallback: u64,
    /// RNIC denials observed.
    pub denied: u64,
    /// Whether the recorded history linearized.
    pub lin_ok: bool,
}

/// Runs `clients` closed-loop clients for `ops` operations each over the
/// RDMA stack, with the one-sided read path on or off.
pub fn kv_read_point(
    leases: bool,
    spec: &YcsbSpec,
    clients: usize,
    ops: u64,
    seed: u64,
) -> KvPoint {
    let cfg = ReptorConfig {
        read_leases: leases,
        ..ReptorConfig::small()
    };
    let mut h = KvHarness::build(Stack::Rubin, seed, clients, cfg, 256);
    let t0 = h.sim.now();
    assert!(
        h.run_ycsb(spec, seed, ops, 600_000_000),
        "bench run wedged (leases={leases} seed={seed})"
    );
    let elapsed = h.sim.now() - t0;
    let hist = h.history();
    let mut reads = 0u64;
    let mut lat_sum_ns = 0u64;
    for e in &hist {
        if let (KvHistOp::Get { .. }, Some(resp)) = (&e.op, e.response) {
            reads += 1;
            lat_sum_ns += resp - e.invoke;
        }
    }
    KvPoint {
        label: if leases {
            "one-sided".into()
        } else {
            "message-path".into()
        },
        reads,
        read_rps: throughput_ops_per_sec(reads, elapsed),
        read_latency_us: if reads == 0 {
            0.0
        } else {
            lat_sum_ns as f64 / reads as f64 / 1_000.0
        },
        onesided: h.total("kv_read_onesided"),
        fallback: h.total("kv_read_fallback"),
        denied: h.total("kv_read_denied"),
        lin_ok: h.check_history().is_ok(),
    }
}

/// The headline comparison: workload B (95/5) with and without the
/// one-sided read path, same stack, same seed.
pub fn read_path_comparison(clients: usize, ops: u64, seed: u64) -> (KvPoint, KvPoint) {
    let spec = YcsbSpec::b(64);
    let onesided = kv_read_point(true, &spec, clients, ops, seed);
    let message = kv_read_point(false, &spec, clients, ops, seed);
    (onesided, message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_points_measure_real_reads() {
        let (one, msg) = read_path_comparison(2, 12, 0x1234);
        assert!(one.reads > 0 && msg.reads > 0);
        assert!(one.lin_ok && msg.lin_ok);
        assert!(one.onesided > 0, "lease path must engage when enabled");
        assert_eq!(msg.onesided, 0, "lease path must be inert when disabled");
        assert!(
            one.read_rps > msg.read_rps,
            "one-sided reads must be faster"
        );
    }
}
