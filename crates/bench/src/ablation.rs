//! Ablation of the §IV optimizations: each knob toggled individually on a
//! *pipelined* RUBIN channel echo (16 messages outstanding), where
//! per-message overheads land on the critical path.
//!
//! The baseline is [`RubinConfig::future`] — all optimizations including
//! the planned send-side zero copy — so "no zero-copy send" corresponds to
//! the configuration the paper actually evaluated.

use rubin::RubinConfig;
use simnet::Series;

use crate::fig3::channel_echo_pipelined;

/// Payloads probed by the ablation: one inline-eligible size, the 1 KB BFT
/// common case, one mid-range and one large payload.
pub const ABLATION_PAYLOADS: [usize; 4] = [256, 1024, 16 * 1024, 64 * 1024];

/// Outstanding messages during the ablation echo.
pub const ABLATION_WINDOW: usize = 16;

/// The ablation variants.
pub fn variants() -> Vec<(&'static str, RubinConfig)> {
    let base = RubinConfig::future();
    vec![
        ("all optimizations", base.clone()),
        (
            "no inline",
            RubinConfig {
                inline_threshold: 0,
                ..base.clone()
            },
        ),
        (
            "no selective signaling",
            RubinConfig {
                signal_interval: 1,
                ..base.clone()
            },
        ),
        (
            "no batched reposting",
            RubinConfig {
                recv_batch: 1,
                ..base.clone()
            },
        ),
        (
            "no zero-copy receive",
            RubinConfig {
                zero_copy_receive: false,
                ..base
            },
        ),
        ("no zero-copy at all (as evaluated)", RubinConfig::paper()),
        ("none (naive Send/Recv)", RubinConfig::unoptimized()),
    ]
}

/// Runs the ablation; one latency series per variant.
pub fn run(msgs: usize) -> Vec<Series> {
    variants()
        .into_iter()
        .map(|(label, cfg)| {
            let mut s = Series::new(label);
            for &p in &ABLATION_PAYLOADS {
                let r = channel_echo_pipelined(p, msgs, ABLATION_WINDOW, cfg.clone());
                s.push(p, r.latency_us);
            }
            s
        })
        .collect()
}

/// Ablation of the replica-side COP parallelization: the same replicated
/// workload with the pipeline count swept over [`crate::replicated::COP_SWEEP`]
/// (`p = 1` is COP "off" — the pre-parallelization replica). One series for
/// throughput, one for latency, both keyed by pipeline count.
pub fn cop_run(total: u64, depth: usize) -> Vec<Series> {
    let points = crate::replicated::cop_scaling(total, depth);
    let mut rps = Series::new("throughput (req/s)");
    let mut lat = Series::new("latency (us)");
    for pt in points {
        rps.push(pt.pipelines, pt.rps);
        lat.push(pt.pipelines, pt.latency_us);
    }
    vec![rps, lat]
}
