//! Figure 4: echo through the Reptor communication stack, RUBIN selector
//! vs. Java-NIO selector.
//!
//! As in the paper (§V): the workload runs locally on one machine, the
//! window size is 30 and batching is 10 messages — the client keeps up to
//! 30 echoes outstanding and injects them in bursts of 10. Both stacks use
//! the full transport path (framing, selectors, flow control), which is
//! what separates this from the raw Figure 3 micro-benchmark.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use rdma_verbs::RnicModel;
use reptor::{NioTransport, RubinTransport, Transport};
use rubin::RubinConfig;
use simnet::{
    throughput_ops_per_sec, CoreId, CpuModel, LatencyRecorder, Nanos, Network, Series, Simulator,
};
use simnet_socket::TcpModel;

use crate::{pattern, EchoResult, PAYLOAD_SWEEP};

/// Paper parameters: window size 30, batching 10.
pub const WINDOW: usize = 30;
/// Paper parameters: window size 30, batching 10.
pub const BATCH: usize = 10;

/// Runs the Figure 4 sweep; returns `(latency series, throughput series)`
/// with one entry per stack (`Rubin`, `TCP`).
pub fn run(msgs: usize) -> (Vec<Series>, Vec<Series>) {
    let mut lat: Vec<Series> = ["Rubin", "TCP"].iter().map(|l| Series::new(*l)).collect();
    let mut thr = lat.clone();
    for &payload in &PAYLOAD_SWEEP {
        eprintln!("[fig4] payload {payload}: rubin...");
        let rubin = rubin_selector_echo(payload, msgs);
        eprintln!("[fig4] payload {payload}: tcp...");
        let tcp = nio_selector_echo(payload, msgs);
        lat[0].push(payload, rubin.latency_us);
        lat[1].push(payload, tcp.latency_us);
        thr[0].push(payload, rubin.rps);
        thr[1].push(payload, tcp.rps);
    }
    (lat, thr)
}

struct ClientState {
    payload: Vec<u8>,
    total: usize,
    sent: usize,
    completed: usize,
    outstanding: usize,
    send_times: VecDeque<Nanos>,
    rec: LatencyRecorder,
}

fn drive_echo(
    sim: &mut Simulator,
    client: Rc<dyn Transport>,
    server: Rc<dyn Transport>,
    payload: usize,
    msgs: usize,
) -> EchoResult {
    // Server: echo every message straight back.
    let server_t = server.clone();
    let client_node = client.node();
    server.set_delivery(Rc::new(move |sim, _from, bytes| {
        server_t.send(sim, client_node, bytes);
    }));

    let state = Rc::new(RefCell::new(ClientState {
        payload: pattern(payload),
        total: msgs,
        sent: 0,
        completed: 0,
        outstanding: 0,
        send_times: VecDeque::new(),
        rec: LatencyRecorder::new(),
    }));

    fn top_up(
        sim: &mut Simulator,
        client: &Rc<dyn Transport>,
        server_node: u32,
        state: &Rc<RefCell<ClientState>>,
    ) {
        loop {
            let burst = {
                let s = state.borrow();
                if s.sent >= s.total || s.outstanding + BATCH > WINDOW {
                    0
                } else {
                    BATCH.min(s.total - s.sent)
                }
            };
            if burst == 0 {
                return;
            }
            for _ in 0..burst {
                let msg = {
                    let mut s = state.borrow_mut();
                    s.sent += 1;
                    s.outstanding += 1;
                    s.send_times.push_back(sim.now());
                    s.payload.clone()
                };
                client.send(sim, server_node, msg);
            }
        }
    }

    let server_node = server.node();
    let st = state.clone();
    let client_for_cb = client.clone();
    client.set_delivery(Rc::new(move |sim, _from, bytes| {
        {
            let mut s = st.borrow_mut();
            assert_eq!(bytes.len(), s.payload.len(), "echo length mismatch");
            let sent_at = s.send_times.pop_front().expect("matching send");
            s.rec.record(sim.now() - sent_at);
            s.completed += 1;
            s.outstanding -= 1;
        }
        top_up(sim, &client_for_cb, server_node, &st);
    }));

    let t0 = sim.now();
    top_up(sim, &client, server_node, &state);
    sim.run_until_idle();
    let s = state.borrow();
    assert_eq!(
        s.completed, msgs,
        "selector echo stalled at {}/{msgs}",
        s.completed
    );
    EchoResult {
        latency_us: s.rec.mean().as_micros_f64(),
        rps: throughput_ops_per_sec(msgs as u64, sim.now() - t0),
    }
}

/// One 4-core machine, as in the paper's local run. Client and server are
/// two endpoints on different cores of the same host.
fn local_host(seed: u64) -> (Simulator, Network, simnet::HostId) {
    let sim = Simulator::new(seed);
    let net = Network::new();
    let host = net.add_host("local", 4, CpuModel::xeon_v2());
    (sim, net, host)
}

/// Echo over the Java-NIO-style selector stack.
pub fn nio_selector_echo(payload: usize, msgs: usize) -> EchoResult {
    let (mut sim, net, host) = local_host(0xF1641);
    let nodes = [(0u32, host, CoreId(0)), (1u32, host, CoreId(2))];
    let ts = NioTransport::build_group(&mut sim, &net, &nodes, TcpModel::linux_xeon());
    sim.run_until_idle(); // connections + hellos settle
    let server: Rc<dyn Transport> = Rc::new(ts[0].clone());
    let client: Rc<dyn Transport> = Rc::new(ts[1].clone());
    drive_echo(&mut sim, client, server, payload, msgs)
}

/// Echo over the RUBIN selector stack.
pub fn rubin_selector_echo(payload: usize, msgs: usize) -> EchoResult {
    let (mut sim, net, host) = local_host(0xF1642);
    let nodes = [(0u32, host, CoreId(0)), (1u32, host, CoreId(2))];
    let ts = RubinTransport::build_group(
        &mut sim,
        &net,
        &nodes,
        RnicModel::mt27520(),
        RubinConfig::paper(),
    );
    sim.run_until_idle();
    let server: Rc<dyn Transport> = Rc::new(ts[0].clone());
    let client: Rc<dyn Transport> = Rc::new(ts[1].clone());
    drive_echo(&mut sim, client, server, payload, msgs)
}

/// Shape checks for Figure 4 (§V): RUBIN ~19–20 % lower latency at the
/// extremes, RUBIN throughput 25–38 % above TCP.
pub fn shape_report(lat: &[Series], thr: &[Series]) -> Vec<(String, bool)> {
    let v = |s: &Series, p: usize| s.value_at(p).expect("point");
    let rubin = &lat[0];
    let tcp = &lat[1];
    let mut out = Vec::new();

    let small = 1.0 - v(rubin, 1024) / v(tcp, 1024);
    out.push((
        format!(
            "RUBIN ≈19% below TCP at 1KB (measured {:.0}%)",
            small * 100.0
        ),
        (0.05..=0.45).contains(&small),
    ));
    // The paper reports ≈20% at 100KB; the simulation's kernel TCP model
    // degrades harder at large payloads (see EXPERIMENTS.md), so the check
    // is directional with a wide band.
    let large = 1.0 - v(rubin, 102_400) / v(tcp, 102_400);
    out.push((
        format!(
            "RUBIN ≈20% below TCP at 100KB (measured {:.0}%)",
            large * 100.0
        ),
        (0.05..=0.75).contains(&large),
    ));
    let gains: Vec<f64> = PAYLOAD_SWEEP
        .iter()
        .map(|&p| thr[0].value_at(p).unwrap() / thr[1].value_at(p).unwrap() - 1.0)
        .collect();
    let lo = gains.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = gains.iter().copied().fold(0.0, f64::max);
    out.push((
        format!(
            "RUBIN throughput 25–38% above TCP (measured {:.0}–{:.0}%)",
            lo * 100.0,
            hi * 100.0
        ),
        lo > 0.0,
    ));
    out
}
