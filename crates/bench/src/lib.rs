//! # bench — the paper's evaluation, regenerated
//!
//! One module per experiment (see `DESIGN.md`'s experiment index):
//!
//! * [`fig3`] — the client–server echo micro-benchmark of Figure 3:
//!   TCP vs. RDMA Send/Recv vs. RDMA Read/Write vs. the RUBIN RDMA
//!   channel, latency (3a) and throughput (3b) over 1–100 KB payloads.
//! * [`fig4`] — the selector comparison of Figure 4: an echo workload
//!   through the Reptor comm stack (window 30, batching 10) over the
//!   Java-NIO-style selector vs. the RUBIN selector.
//! * [`replicated`] — the fully replicated system the paper defers to
//!   future work (§VII): 4-replica PBFT over both comm stacks.
//! * [`ablation`] — each §IV optimization toggled individually.
//! * [`kv`] — the agreement-free read path: one-sided RDMA READs
//!   against the replicated KV store vs. the ordered message path,
//!   both linearizability-checked.
//!
//! Binaries `fig3`, `fig4`, `replicated` and `ablation` print the series
//! as aligned tables; Criterion benches wrap representative points.

pub mod ablation;
pub mod fig3;
pub mod fig4;
pub mod kv;
pub mod replicated;
pub mod workload;

/// The payload sweep of the paper's Figures 3 and 4 (1 KB – 100 KB).
pub const PAYLOAD_SWEEP: [usize; 8] = [
    1024,
    2 * 1024,
    4 * 1024,
    8 * 1024,
    16 * 1024,
    32 * 1024,
    64 * 1024,
    100 * 1024,
];

/// Messages per measurement point (the paper exchanges 1000 messages per
/// run and averages five runs; the deterministic simulator needs fewer).
pub const DEFAULT_MSGS: usize = 200;

/// One measured operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EchoResult {
    /// Mean per-message latency in microseconds.
    pub latency_us: f64,
    /// Sustained throughput in requests per second.
    pub rps: f64,
}

/// Deterministic payload bytes for integrity checking.
pub fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 % 251) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_paper_range() {
        assert_eq!(*PAYLOAD_SWEEP.first().unwrap(), 1024);
        assert_eq!(*PAYLOAD_SWEEP.last().unwrap(), 100 * 1024);
        assert!(PAYLOAD_SWEEP.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pattern_is_deterministic() {
        assert_eq!(pattern(16), pattern(16));
        assert_ne!(pattern(16)[1], pattern(16)[2]);
    }
}
