//! The fully replicated system (paper §VII future work): 4-replica PBFT
//! agreement driven over both comm stacks.
//!
//! The paper stops at the comm-stack comparison and explicitly defers
//! "extensively evaluat\[ing\] the fully replicated system" to future work;
//! this module runs that experiment: a client sweeps request payloads
//! against a 4-replica Reptor group whose replica communication runs over
//! the NIO-TCP stack, the RUBIN-RDMA stack, or the direct fabric.

use std::rc::Rc;

use rdma_verbs::RnicModel;
use reptor::{
    Client, DurabilityConfig, EchoService, KvOp, KvService, NioTransport, RecoveryConfig,
    RecoveryScheduler, Replica, ReptorConfig, RubinTransport, SimTransport, Transport,
    DOMAIN_SECRET,
};
use rubin::RubinConfig;
use simnet::{throughput_ops_per_sec, CoreId, LatencyRecorder, Series, TestBed};
use simnet_socket::TcpModel;

use crate::EchoResult;

/// Which comm stack the replicas use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stack {
    /// Direct fabric delivery (no comm-stack CPU model) — the upper bound.
    Direct,
    /// Java-NIO-style TCP stack.
    Nio,
    /// RUBIN RDMA stack.
    Rubin,
}

impl Stack {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Stack::Direct => "Direct",
            Stack::Nio => "TCP (NIO)",
            Stack::Rubin => "RDMA (Rubin)",
        }
    }
}

/// The pipeline counts swept by the COP scaling experiment (Behl et al.'s
/// Consensus-Oriented Parallelization). `p = 4` oversubscribes the three
/// agreement cores of the 4-core Xeon-v2 host model, probing the plateau.
pub const COP_SWEEP: [usize; 3] = [1, 2, 4];

/// Request payload used by the COP scaling experiment.
pub const COP_PAYLOAD: usize = 4096;

/// One measured COP operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopPoint {
    /// Number of consensus pipelines (`p`).
    pub pipelines: usize,
    /// Mean request latency in microseconds.
    pub latency_us: f64,
    /// Sustained agreement throughput in requests per second.
    pub rps: f64,
}

/// The replica-group configuration of one COP scaling point: direct
/// transport and single-request batches so per-instance agreement CPU work
/// (MAC vectors, digests) dominates and lands on the pipeline cores.
pub fn cop_config(pipelines: usize) -> ReptorConfig {
    ReptorConfig {
        pillars: pipelines,
        batch_size: 1,
        window: 64,
        ..ReptorConfig::small()
    }
}

/// Measures one COP scaling point with `p` pipelines.
pub fn cop_point(pipelines: usize, total: u64, depth: usize) -> CopPoint {
    let r = bft_configured(
        Stack::Direct,
        crate::workload::Mix::Fixed(COP_PAYLOAD),
        total,
        depth,
        0xC0B + pipelines as u64,
        cop_config(pipelines),
    );
    CopPoint {
        pipelines,
        latency_us: r.latency_us,
        rps: r.rps,
    }
}

/// COP scaling: agreement throughput as the number of consensus pipelines
/// grows (the Reptor property §II-C highlights). Whole agreement instances
/// run on dedicated cores, so throughput should scale near-linearly until
/// the agreement cores of the 4-core host model are saturated.
pub fn cop_scaling(total: u64, depth: usize) -> Vec<CopPoint> {
    COP_SWEEP
        .iter()
        .map(|&p| cop_point(p, total, depth))
        .collect()
}

/// Runs `total` echo requests of `payload` bytes through a 4-replica PBFT
/// group over the chosen stack, keeping `depth` requests in flight.
pub fn bft_echo(stack: Stack, payload: usize, total: u64, depth: usize, seed: u64) -> EchoResult {
    bft_workload(
        stack,
        crate::workload::Mix::Fixed(payload),
        total,
        depth,
        seed,
    )
}

/// Runs `total` requests drawn from `mix` through a 4-replica PBFT group
/// over the chosen stack, keeping `depth` requests in flight.
pub fn bft_workload(
    stack: Stack,
    mix: crate::workload::Mix,
    total: u64,
    depth: usize,
    seed: u64,
) -> EchoResult {
    bft_configured(stack, mix, total, depth, seed, ReptorConfig::small())
}

/// As [`bft_echo`], additionally returning the run's full cross-layer
/// [`simnet::MetricsSnapshot`] (used by the report sidecar).
pub fn bft_echo_instrumented(
    stack: Stack,
    payload: usize,
    total: u64,
    depth: usize,
    seed: u64,
) -> (EchoResult, simnet::MetricsSnapshot) {
    bft_instrumented(
        stack,
        crate::workload::Mix::Fixed(payload),
        total,
        depth,
        seed,
        ReptorConfig::small(),
    )
}

/// As [`bft_workload`], with an explicit replica-group configuration.
pub fn bft_configured(
    stack: Stack,
    mix: crate::workload::Mix,
    total: u64,
    depth: usize,
    seed: u64,
    cfg: ReptorConfig,
) -> EchoResult {
    bft_instrumented(stack, mix, total, depth, seed, cfg).0
}

/// As [`bft_configured`], additionally returning the run's full
/// cross-layer [`simnet::MetricsSnapshot`] (used by the fast-path
/// comparison and the report sidecar).
pub fn bft_configured_instrumented(
    stack: Stack,
    mix: crate::workload::Mix,
    total: u64,
    depth: usize,
    seed: u64,
    cfg: ReptorConfig,
) -> (EchoResult, simnet::MetricsSnapshot) {
    bft_instrumented(stack, mix, total, depth, seed, cfg)
}

fn bft_instrumented(
    stack: Stack,
    mix: crate::workload::Mix,
    total: u64,
    depth: usize,
    seed: u64,
    cfg: ReptorConfig,
) -> (EchoResult, simnet::MetricsSnapshot) {
    let n = cfg.n;
    let (mut sim, net, hosts) = TestBed::cluster(seed, n + 1);
    let nodes: Vec<(u32, simnet::HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();

    let transports: Vec<Rc<dyn Transport>> = match stack {
        Stack::Direct => {
            let pairs: Vec<(u32, simnet::HostId)> = nodes.iter().map(|&(n, h, _)| (n, h)).collect();
            SimTransport::build_group(&net, &pairs)
                .into_iter()
                .map(|t| Rc::new(t) as Rc<dyn Transport>)
                .collect()
        }
        Stack::Nio => {
            let ts = NioTransport::build_group(&mut sim, &net, &nodes, TcpModel::linux_xeon());
            sim.run_until_idle();
            ts.into_iter()
                .map(|t| Rc::new(t) as Rc<dyn Transport>)
                .collect()
        }
        Stack::Rubin => {
            let ts = RubinTransport::build_group(
                &mut sim,
                &net,
                &nodes,
                RnicModel::mt27520(),
                RubinConfig::paper(),
            );
            sim.run_until_idle();
            ts.into_iter()
                .map(|t| Rc::new(t) as Rc<dyn Transport>)
                .collect()
        }
    };

    let _replicas: Vec<Replica> = (0..n)
        .map(|i| {
            Replica::new(
                i as u32,
                cfg.clone(),
                DOMAIN_SECRET,
                transports[i].clone(),
                &net,
                hosts[i],
                Box::new(EchoService::default()),
            )
        })
        .collect();
    let client = Client::new(n as u32, cfg, DOMAIN_SECRET, transports[n].clone());

    let mut gen = crate::workload::Workload::new(mix, seed ^ 0x5EED);
    let t0 = sim.now();
    let mut submitted = 0u64;
    let mut guard = 0u64;
    while client.stats().completed < total {
        while submitted < total && client.pending_count() < depth {
            client.submit(&mut sim, gen.next_payload());
            submitted += 1;
        }
        if !sim.step() {
            break;
        }
        guard += 1;
        assert!(
            guard < 60_000_000,
            "replicated run stalled: {}/{} done over {:?}",
            client.stats().completed,
            total,
            stack
        );
    }
    let completed = client.stats().completed;
    assert_eq!(
        completed, total,
        "not all requests completed over {stack:?}"
    );
    let mut rec = LatencyRecorder::new();
    for c in client.completions() {
        rec.record(c.latency());
    }
    let result = EchoResult {
        latency_us: rec.mean().as_micros_f64(),
        rps: throughput_ops_per_sec(total, sim.now() - t0),
    };
    (result, net.metrics().snapshot())
}

/// Runs the checkpoint state-transfer recovery drill over the RUBIN stack
/// and returns the run's cross-layer metrics snapshot: one replica is
/// partitioned until it falls below the low-water mark, then rejoins via
/// the one-sided RDMA READ fast path. The report sidecar embeds this
/// snapshot so the bench artifact records the `state_transfer_*` counters
/// (started/chunks/bytes/reads/retries/completed) for every CI run.
pub fn state_transfer_instrumented(seed: u64) -> simnet::MetricsSnapshot {
    let cfg = ReptorConfig {
        checkpoint_interval: 4,
        ..ReptorConfig::small()
    };
    let n = cfg.n;
    let (mut sim, net, hosts) = TestBed::cluster(seed, n + 1);
    let nodes: Vec<(u32, simnet::HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();
    let transports = RubinTransport::build_group(
        &mut sim,
        &net,
        &nodes,
        RnicModel::mt27520(),
        RubinConfig::paper(),
    );
    sim.run_until_idle();
    let transports: Vec<Rc<dyn Transport>> = transports
        .into_iter()
        .map(|t| Rc::new(t) as Rc<dyn Transport>)
        .collect();

    let replicas: Vec<Replica> = (0..n)
        .map(|i| {
            Replica::new(
                i as u32,
                cfg.clone(),
                DOMAIN_SECRET,
                transports[i].clone(),
                &net,
                hosts[i],
                Box::new(EchoService::default()),
            )
        })
        .collect();
    let client = Client::new(n as u32, cfg.clone(), DOMAIN_SECRET, transports[n].clone());

    // One request in flight at a time so every request lands in its own
    // agreement instance and sequence numbers advance predictably.
    let drive = |sim: &mut simnet::Simulator, client: &Client, total: u64| {
        let mut guard = 0u64;
        while client.stats().completed < total {
            if client.pending_count() == 0 {
                client.submit(sim, vec![7u8; 64]);
            }
            if !sim.step() {
                break;
            }
            guard += 1;
            assert!(guard < 60_000_000, "state-transfer drill stalled");
        }
    };

    // Warm up, then cut replica 2 off from everyone (client included).
    drive(&mut sim, &client, 3);
    let laggard = hosts[2];
    net.with_faults(|f| {
        for &h in &hosts {
            if h != laggard {
                f.partition(h, laggard);
            }
        }
    });
    // Three checkpoint intervals of progress put the laggard below the
    // low-water mark; the hold lets QP retries exhaust so the outage is
    // real (holding pens shed, channels break) rather than replayable.
    drive(&mut sim, &client, 15);
    sim.run_until(sim.now() + simnet::Nanos::from_millis(100));
    net.with_faults(|f| {
        for &h in &hosts {
            if h != laggard {
                f.heal(h, laggard);
            }
        }
    });
    sim.run_until(sim.now() + simnet::Nanos::from_millis(150));
    // Fresh traffic triggers the laggard's recovery path; give the
    // transfer time to finish.
    drive(&mut sim, &client, 18);
    sim.run_until(sim.now() + simnet::Nanos::from_millis(400));
    assert!(
        replicas[2].stats().state_transfers_completed >= 1,
        "recovery drill must complete a state transfer"
    );
    net.metrics().snapshot()
}

/// Result of the durable cold-restart drill: the same crash/restart
/// workload measured twice, once without a durable store (the rejoining
/// replica fetches the full checkpoint from peers) and once with the WAL
/// enabled (local replay shrinks the fetch to the changed chunks).
#[derive(Debug, Clone)]
pub struct DurableRestartDrill {
    /// Metrics of the baseline run (no durability: full peer fetch).
    pub baseline: simnet::MetricsSnapshot,
    /// Metrics of the durable run (WAL replay + delta fetch).
    pub durable: simnet::MetricsSnapshot,
}

impl DurableRestartDrill {
    /// Peer bytes fetched by the cold-restarted replica without a durable
    /// store — the full checkpoint payload.
    pub fn full_fetch_bytes(&self) -> u64 {
        self.baseline.counter("reptor.r1.state_transfer_bytes")
    }

    /// Peer bytes fetched with the durable store — only the chunks the
    /// locally replayed state could not satisfy.
    pub fn delta_fetch_bytes(&self) -> u64 {
        self.durable.counter("reptor.r1.state_transfer_bytes")
    }

    /// Bytes satisfied from the locally recovered payload instead of the
    /// network.
    pub fn local_bytes(&self) -> u64 {
        self.durable.counter("reptor.r1.state_transfer_bytes_local")
    }

    /// The CI gate: the delta fetch must cost less than half the full
    /// fetch, or local recovery is not pulling its weight.
    pub fn gate_passes(&self) -> bool {
        self.delta_fetch_bytes() * 2 < self.full_fetch_bytes()
    }
}

/// One cold-restart measurement: a backup is partitioned while the group
/// overwrites a slice of a seeded KV store past its watermark window, then
/// restarts cold and rebuilds via state transfer. With `durability` set,
/// the restart first replays the local WAL and the transfer degrades to a
/// delta fetch of the changed chunks.
fn durable_restart_run(seed: u64, durability: Option<DurabilityConfig>) -> simnet::MetricsSnapshot {
    let cfg = ReptorConfig {
        checkpoint_interval: 4,
        durability,
        ..ReptorConfig::small()
    };
    let n = cfg.n;
    let (mut sim, net, hosts) = TestBed::cluster(seed, n + 1);
    let nodes: Vec<(u32, simnet::HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();
    let transports = RubinTransport::build_group(
        &mut sim,
        &net,
        &nodes,
        RnicModel::mt27520(),
        RubinConfig::paper(),
    );
    sim.run_until_idle();
    let transports: Vec<Rc<dyn Transport>> = transports
        .into_iter()
        .map(|t| Rc::new(t) as Rc<dyn Transport>)
        .collect();

    let replicas: Vec<Replica> = (0..n)
        .map(|i| {
            Replica::new(
                i as u32,
                cfg.clone(),
                DOMAIN_SECRET,
                transports[i].clone(),
                &net,
                hosts[i],
                Box::new(KvService::default()),
            )
        })
        .collect();
    let client = Client::new(n as u32, cfg.clone(), DOMAIN_SECRET, transports[n].clone());

    // One request per agreement instance, fixed-size values so the
    // checkpoint payload layout is chunk-stable between the victim's
    // replayed position and the target checkpoint.
    let drive = |sim: &mut simnet::Simulator, payloads: &[Vec<u8>], done: u64| {
        let mut guard = 0u64;
        for (i, p) in payloads.iter().enumerate() {
            client.submit(sim, p.clone());
            while client.stats().completed < done + i as u64 + 1 {
                assert!(sim.step(), "durable restart drill went idle");
                guard += 1;
                assert!(guard < 60_000_000, "durable restart drill stalled");
            }
        }
    };
    let put = |key: String, val: Vec<u8>| KvOp::Put(key.into_bytes(), val).encode();

    // Seed 64 keys: seqs 1..=64, stable checkpoint at 64 everywhere.
    let seeds: Vec<Vec<u8>> = (0..64)
        .map(|i| put(format!("k{i:03}"), vec![i as u8; 32]))
        .collect();
    drive(&mut sim, &seeds, 0);
    sim.run_until_idle();

    // Cut the victim off, overwrite 8 of the 64 keys (two checkpoint
    // intervals: seqs 65..=72, stable 72), and hold until retry
    // exhaustion breaks the channels — the outage is real.
    let victim = hosts[1];
    net.with_faults(|f| {
        for &h in &hosts {
            if h != victim {
                f.partition(h, victim);
            }
        }
    });
    let updates: Vec<Vec<u8>> = (0..8)
        .map(|i| put(format!("k{i:03}"), vec![0xBB + i as u8; 32]))
        .collect();
    drive(&mut sim, &updates, 64);
    sim.run_until(sim.now() + simnet::Nanos::from_millis(100));
    net.with_faults(|f| {
        for &h in &hosts {
            if h != victim {
                f.heal(h, victim);
            }
        }
    });
    sim.run_until(sim.now() + simnet::Nanos::from_millis(150));

    // Cold restart: volatile state gone, the drive (if any) survives.
    replicas[1].restart(&mut sim, Box::new(KvService::default()));
    sim.run_until(sim.now() + simnet::Nanos::from_millis(400));
    assert!(
        replicas[1].stats().state_transfers_completed >= 1,
        "cold-restarted replica must complete a state transfer"
    );
    net.metrics().snapshot()
}

/// Runs the durable cold-restart drill over the RUBIN stack: the same
/// partition + cold-restart workload with and without the durable
/// checkpoint store, so CI can gate the delta-fetch saving. The report
/// sidecar embeds both snapshots (`durable_restart_drill` /
/// `durable_restart_drill_baseline` keys).
pub fn durable_restart_drill_instrumented(seed: u64) -> DurableRestartDrill {
    let baseline = durable_restart_run(seed, None);
    let durable = durable_restart_run(
        seed,
        Some(DurabilityConfig {
            wal: true,
            // Pure-WAL recovery: no snapshot compaction inside the drill
            // window, so the replay covers the full seeded prefix.
            snapshot_every: 1_000,
            ..DurabilityConfig::default()
        }),
    );
    DurableRestartDrill { baseline, durable }
}

/// Runs the proactive-recovery epoch drill over the RUBIN stack and
/// returns the run's cross-layer metrics snapshot: a [`RecoveryScheduler`]
/// drives one full epoch rotation — epoch roll, per-replica memory-region
/// re-registration, four staggered restart + state-transfer refreshes —
/// while a closed-loop client keeps the group under load. The report
/// sidecar embeds this snapshot so the bench artifact records the
/// `proactive_*` counters (epoch_rolls/refreshes/rotations) plus the
/// `mr_rotations` and `epoch_rolls` replica counters for every CI run.
pub fn recovery_epoch_drill_instrumented(seed: u64) -> simnet::MetricsSnapshot {
    let cfg = ReptorConfig {
        checkpoint_interval: 4,
        ..ReptorConfig::small()
    };
    let n = cfg.n;
    let (mut sim, net, hosts) = TestBed::cluster(seed, n + 1);
    let nodes: Vec<(u32, simnet::HostId, CoreId)> = hosts
        .iter()
        .enumerate()
        .map(|(i, &h)| (i as u32, h, CoreId(0)))
        .collect();
    let transports = RubinTransport::build_group(
        &mut sim,
        &net,
        &nodes,
        RnicModel::mt27520(),
        RubinConfig::paper(),
    );
    sim.run_until_idle();
    let transports: Vec<Rc<dyn Transport>> = transports
        .into_iter()
        .map(|t| Rc::new(t) as Rc<dyn Transport>)
        .collect();

    let replicas: Vec<Replica> = (0..n)
        .map(|i| {
            Replica::new(
                i as u32,
                cfg.clone(),
                DOMAIN_SECRET,
                transports[i].clone(),
                &net,
                hosts[i],
                Box::new(EchoService::default()),
            )
        })
        .collect();
    let client = Client::new(n as u32, cfg.clone(), DOMAIN_SECRET, transports[n].clone());

    // Warm up past the first checkpoint so refreshed replicas have a
    // certified store to rebuild from.
    let mut guard = 0u64;
    while client.stats().completed < 6 {
        if client.pending_count() == 0 {
            client.submit(&mut sim, vec![7u8; 64]);
        }
        assert!(sim.step(), "recovery drill went idle in warm-up");
        guard += 1;
        assert!(guard < 60_000_000, "recovery drill warm-up stalled");
    }

    let sched = RecoveryScheduler::new(
        replicas.clone(),
        RecoveryConfig {
            period: simnet::Nanos::from_millis(30),
            poll: simnet::Nanos::from_millis(2),
            refresh_deadline: simnet::Nanos::from_millis(400),
        },
        net.metrics(),
        Box::new(|| Box::new(EchoService::default())),
    );
    sched.start(&mut sim, 1);

    // Closed-loop load straight through the rotation: the stagger bound
    // keeps the quorum intact, so requests keep completing while each
    // replica in turn is torn down and rebuilt.
    while sched.stats().rotations_completed < 1 {
        if client.pending_count() == 0 {
            client.submit(&mut sim, vec![7u8; 64]);
        }
        assert!(sim.step(), "recovery drill went idle mid-rotation");
        guard += 1;
        assert!(guard < 60_000_000, "recovery drill rotation stalled");
    }
    sim.run_until(sim.now() + simnet::Nanos::from_millis(100));

    let stats = sched.stats();
    assert_eq!(
        stats.refreshes_completed, n as u64,
        "every replica must refresh and rejoin in the drill ({stats:?})"
    );
    for r in &replicas {
        assert!(
            r.stats().state_transfers_completed >= 1,
            "drilled replica {} must have rebuilt by state transfer",
            r.id()
        );
    }
    net.metrics().snapshot()
}

/// Request payload used by the one-sided fast-path comparison (BFT
/// requests are mostly small, §V).
pub const FAST_PATH_PAYLOAD: usize = 1024;

/// Fast-path vs. message-path PBFT operating points at the same batch
/// size over the RUBIN stack.
#[derive(Debug, Clone)]
pub struct FastPathComparison {
    /// Message-path PBFT (pre-prepare as a MAC-authenticated message).
    pub message: EchoResult,
    /// One-sided fast path (pre-prepare as an RDMA WRITE into the
    /// follower's leader-granted slot region).
    pub fast: EchoResult,
    /// Cross-layer metrics snapshot of the fast-path run — carries the
    /// `fast_path_*` counters the report sidecar and bench gate embed.
    pub snapshot: simnet::MetricsSnapshot,
}

/// Measures PBFT commit latency over the RUBIN stack with the one-sided
/// fast path off vs. on, everything else identical (same seed, same
/// batch size, same payload mix). The fast path replaces the leader's
/// pre-prepare send + per-follower MAC verification with a single RDMA
/// WRITE whose RNIC WRITE permission *is* the authentication, so its
/// common-case commit latency must sit strictly below the message path
/// — the gated bench asserts exactly that.
pub fn fast_path_comparison(total: u64, depth: usize, seed: u64) -> FastPathComparison {
    let mix = crate::workload::Mix::Fixed(FAST_PATH_PAYLOAD);
    let (message, _) =
        bft_instrumented(Stack::Rubin, mix, total, depth, seed, ReptorConfig::small());
    let fast_cfg = ReptorConfig {
        fast_path: true,
        ..ReptorConfig::small()
    };
    let (fast, snapshot) = bft_instrumented(Stack::Rubin, mix, total, depth, seed, fast_cfg);
    FastPathComparison {
        message,
        fast,
        snapshot,
    }
}

/// The payload sweep for the replicated experiment (BFT messages are
/// mostly small, §V).
pub const BFT_PAYLOADS: [usize; 4] = [256, 1024, 4 * 1024, 16 * 1024];

/// Runs every named workload mix over all three stacks; returns one
/// `(mix label, stack label, result)` row per combination.
pub fn run_mixes(total: u64, depth: usize) -> Vec<(String, &'static str, EchoResult)> {
    use crate::workload::Mix;
    let mut rows = Vec::new();
    for mix in [Mix::KvStore, Mix::WebFrontend, Mix::Ledger] {
        for stack in [Stack::Rubin, Stack::Nio] {
            let r = bft_workload(stack, mix, total, depth, 0xB5);
            rows.push((mix.label(), stack.label(), r));
        }
    }
    rows
}

/// Runs the sweep over all three stacks; returns `(latency, throughput)`
/// series.
pub fn run(total: u64, depth: usize) -> (Vec<Series>, Vec<Series>) {
    let stacks = [Stack::Rubin, Stack::Nio, Stack::Direct];
    let mut lat: Vec<Series> = stacks.iter().map(|s| Series::new(s.label())).collect();
    let mut thr = lat.clone();
    for &payload in &BFT_PAYLOADS {
        for (i, &stack) in stacks.iter().enumerate() {
            let r = bft_echo(stack, payload, total, depth, 0xB4);
            lat[i].push(payload, r.latency_us);
            thr[i].push(payload, r.rps);
        }
    }
    (lat, thr)
}
