//! The fully replicated system (paper §VII future work): 4-replica PBFT
//! request latency/throughput over the RUBIN-RDMA, NIO-TCP and direct
//! comm stacks.

use bench::replicated;
use simnet::render_table;

fn main() {
    let total = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100u64);
    let depth = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8usize);
    let (lat, thr) = replicated::run(total, depth);
    print!(
        "{}",
        render_table("Replicated BFT — request latency", "us", &lat)
    );
    print!(
        "{}",
        render_table("Replicated BFT — throughput", "req/s", &thr)
    );

    println!("\n# COP scaling (consensus pipelines, direct transport)");
    println!("{:>10} {:>14} {:>12}", "pipelines", "latency(us)", "req/s");
    for p in replicated::cop_scaling(total, depth.max(16)) {
        println!("{:>10} {:>14.1} {:>12.0}", p.pipelines, p.latency_us, p.rps);
    }

    println!("\n# Mixed workloads (Troxy-style request mixes)");
    println!(
        "{:>16} {:>14} {:>14} {:>12}",
        "mix", "stack", "latency(us)", "req/s"
    );
    for (mix, stack, r) in replicated::run_mixes(total, depth) {
        println!(
            "{mix:>16} {stack:>14} {:>14.1} {:>12.0}",
            r.latency_us, r.rps
        );
    }
}
