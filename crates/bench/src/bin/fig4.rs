//! Regenerates Figure 4 (selector comparison): echo through the Reptor
//! comm stack with window 30 / batching 10, RUBIN selector vs. Java NIO
//! selector, run locally on one machine.

use bench::fig4;
use simnet::render_table;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    let msgs = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(bench::DEFAULT_MSGS);
    let (lat, thr) = fig4::run(msgs);
    if mode == "latency" || mode == "both" {
        print!(
            "{}",
            render_table("Figure 4a — selector echo latency", "us", &lat)
        );
    }
    if mode == "throughput" || mode == "both" {
        print!(
            "{}",
            render_table("Figure 4b — selector echo throughput", "rps", &thr)
        );
    }
    println!("\n# Shape checks vs. paper §V");
    for (desc, ok) in fig4::shape_report(&lat, &thr) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
    }
}
