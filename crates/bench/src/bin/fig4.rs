//! Regenerates Figure 4 (selector comparison): echo through the Reptor
//! comm stack with window 30 / batching 10, RUBIN selector vs. Java NIO
//! selector, run locally on one machine — plus the one-sided fast-path
//! variant: 4-replica PBFT commit latency over RUBIN with the leader
//! proposing by RDMA WRITE into follower slots vs. by pre-prepare
//! messages, at the same batch size.

use bench::{fig4, replicated};
use simnet::render_table;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    let msgs = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(bench::DEFAULT_MSGS);
    let (lat, thr) = fig4::run(msgs);
    if mode == "latency" || mode == "both" {
        print!(
            "{}",
            render_table("Figure 4a — selector echo latency", "us", &lat)
        );
    }
    if mode == "throughput" || mode == "both" {
        print!(
            "{}",
            render_table("Figure 4b — selector echo throughput", "rps", &thr)
        );
    }
    println!("\n# Shape checks vs. paper §V");
    for (desc, ok) in fig4::shape_report(&lat, &thr) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
    }

    println!("\n# One-sided fast path — PBFT commit latency over RUBIN (batch 10)");
    let cmp = replicated::fast_path_comparison(msgs as u64 / 2, 8, 0xFA57);
    println!(
        "  message path: {:>8.1} us  {:>8.0} req/s",
        cmp.message.latency_us, cmp.message.rps
    );
    println!(
        "  fast path:    {:>8.1} us  {:>8.0} req/s",
        cmp.fast.latency_us, cmp.fast.rps
    );
    let snap = &cmp.snapshot;
    println!(
        "  counters: writes={} deliveries={} fallbacks={} slot_conflicts={} denied={}",
        snap.total("fast_path_writes"),
        snap.total("fast_path_deliveries"),
        snap.total("fast_path_fallbacks"),
        snap.total("fast_path_slot_conflicts"),
        snap.total("fast_path_write_denied"),
    );
    let ok = cmp.fast.latency_us < cmp.message.latency_us;
    println!(
        "  [{}] fast-path commit latency strictly below message path",
        if ok { "PASS" } else { "FAIL" }
    );
}
