//! KV read-throughput gate: one-sided agreement-free reads vs. the
//! message path, plus the machine-readable `BENCH_KV.json` sidecar CI
//! joins into the counter-drift gate.
//!
//! Gates (exit non-zero on regression):
//!
//! * at the 95/5 mix, one-sided read throughput is ≥ 5× the message
//!   path's on the same RDMA stack and seed;
//! * both runs' recorded histories linearize (zero violations);
//! * the lease path actually engaged (one-sided reads > 0) and stayed
//!   inert when disabled.
//!
//! Usage: `kv_throughput [clients] [ops_per_client]`. `BENCH_JSON_PATH`
//! overrides the output path (default `target/BENCH_KV.json`).

use bench::kv;

fn json_point(p: &kv::KvPoint) -> String {
    format!(
        "{{\"label\":\"{}\",\"reads\":{},\"read_rps\":{:.3},\"read_latency_us\":{:.3},\
         \"onesided\":{},\"fallback\":{},\"denied\":{},\"lin_ok\":{}}}",
        p.label, p.reads, p.read_rps, p.read_latency_us, p.onesided, p.fallback, p.denied, p.lin_ok
    )
}

fn main() {
    let arg = |n: usize| std::env::args().nth(n);
    let clients: usize = arg(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let ops: u64 = arg(2).and_then(|s| s.parse().ok()).unwrap_or(80);

    println!("# KV reads — YCSB B (95/5), {clients} clients x {ops} ops, RDMA stack");
    let (one, msg) = kv::read_path_comparison(clients, ops, 0x6E7);
    println!(
        "{:>14} {:>10} {:>12} {:>14} {:>10} {:>10} {:>8}",
        "path", "reads", "read/s", "latency(us)", "onesided", "fallback", "lin"
    );
    for p in [&one, &msg] {
        println!(
            "{:>14} {:>10} {:>12.0} {:>14.1} {:>10} {:>10} {:>8}",
            p.label,
            p.reads,
            p.read_rps,
            p.read_latency_us,
            p.onesided,
            p.fallback,
            if p.lin_ok { "ok" } else { "VIOLATION" }
        );
    }
    let speedup = one.read_rps / msg.read_rps;
    println!("\nspeedup: {speedup:.2}x");

    let checks: Vec<(String, bool)> = vec![
        (
            format!(
                "one-sided read throughput ({:.0}/s) >= 5x message path ({:.0}/s)",
                one.read_rps, msg.read_rps
            ),
            one.read_rps >= 5.0 * msg.read_rps,
        ),
        ("one-sided run history linearizes".into(), one.lin_ok),
        ("message-path run history linearizes".into(), msg.lin_ok),
        (
            format!("lease path engaged ({} one-sided reads)", one.onesided),
            one.onesided > 0,
        ),
        ("lease path inert when disabled".into(), msg.onesided == 0),
    ];

    let mut checks_json = String::from("{");
    for (i, (desc, ok)) in checks.iter().enumerate() {
        if i > 0 {
            checks_json.push(',');
        }
        checks_json.push_str(&format!("\"{}\":{}", desc.replace('"', "'"), ok));
    }
    checks_json.push('}');
    let json = format!(
        "{{\"onesided\":{},\"message\":{},\"speedup\":{:.3},\"checks\":{}}}",
        json_point(&one),
        json_point(&msg),
        speedup,
        checks_json
    );
    simnet::metrics::validate_json(&json).expect("bench JSON must be valid");
    let path =
        std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "target/BENCH_KV.json".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("bench JSON directory");
    }
    std::fs::write(&path, &json).expect("write bench JSON");
    println!("wrote {path} ({} bytes)", json.len());

    let failed: Vec<&(String, bool)> = checks.iter().filter(|(_, ok)| !ok).collect();
    println!(
        "\n# gate: {}/{} checks passed",
        checks.len() - failed.len(),
        checks.len()
    );
    if !failed.is_empty() {
        for (desc, _) in failed {
            eprintln!("REGRESSION: {desc}");
        }
        std::process::exit(1);
    }
}
