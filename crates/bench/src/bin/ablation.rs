//! Ablation of the RUBIN §IV optimizations (inline sends, selective
//! signaling, batched reposting, zero-copy send), one channel-echo series
//! per configuration.

use bench::ablation;
use simnet::render_table;

fn main() {
    let msgs = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100usize);
    let series = ablation::run(msgs);
    print!(
        "{}",
        render_table("RUBIN optimization ablation — latency", "us", &series)
    );
    let cop = ablation::cop_run(4 * msgs as u64, 16);
    print!(
        "\n{}",
        render_table("COP parallelization ablation — by pipeline count", "", &cop)
    );
}
