//! Proactive-recovery epoch drill: one full rotation — epoch roll,
//! memory-region rotation, four staggered replica refreshes — over the
//! RUBIN stack under closed-loop client load, printing the recovery
//! counters the report sidecar records for CI.
//!
//! Usage: `cargo run --release -p bench --bin recovery_drill [seed]`

use bench::replicated;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB8u64);
    let snap = replicated::recovery_epoch_drill_instrumented(seed);

    println!("# Proactive recovery epoch drill (RUBIN stack, seed {seed})");
    println!("\n## Scheduler");
    for (key, value) in &snap.counters {
        if key.starts_with("recovery.") {
            println!("{key:<48} {value}");
        }
    }
    println!("\n## Replicas");
    for (key, value) in &snap.counters {
        let fenced = key.ends_with(".epoch_rolls")
            || key.ends_with(".mr_rotations")
            || key.ends_with(".stale_epoch_rejected")
            || key.ends_with(".state_transfer_completed")
            || key.ends_with(".state_transfer_reads");
        if key.starts_with("reptor.") && fenced {
            println!("{key:<48} {value}");
        }
    }
    println!("\n## RNIC fence");
    println!(
        "{:<48} {}",
        "stale_rkey_denied (all QPs)",
        snap.total("stale_rkey_denied")
    );
}
