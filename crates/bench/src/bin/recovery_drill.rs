//! Recovery drills over the RUBIN stack, printing the counters the
//! report sidecar records for CI:
//!
//! * the proactive-recovery epoch drill — one full rotation: epoch roll,
//!   memory-region rotation, four staggered replica refreshes under
//!   closed-loop client load;
//! * the durable cold-restart drill — the same partition + cold-restart
//!   workload with and without the durable checkpoint store, gating that
//!   WAL replay shrinks the peer fetch to less than half the full
//!   checkpoint (exit code 1 otherwise).
//!
//! Usage: `cargo run --release -p bench --bin recovery_drill [seed]`

use bench::replicated;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB8u64);
    let snap = replicated::recovery_epoch_drill_instrumented(seed);

    println!("# Proactive recovery epoch drill (RUBIN stack, seed {seed})");
    println!("\n## Scheduler");
    for (key, value) in &snap.counters {
        if key.starts_with("recovery.") {
            println!("{key:<48} {value}");
        }
    }
    println!("\n## Replicas");
    for (key, value) in &snap.counters {
        let fenced = key.ends_with(".epoch_rolls")
            || key.ends_with(".mr_rotations")
            || key.ends_with(".stale_epoch_rejected")
            || key.ends_with(".state_transfer_completed")
            || key.ends_with(".state_transfer_reads");
        if key.starts_with("reptor.") && fenced {
            println!("{key:<48} {value}");
        }
    }
    println!("\n## RNIC fence");
    println!(
        "{:<48} {}",
        "stale_rkey_denied (all QPs)",
        snap.total("stale_rkey_denied")
    );

    let drill = replicated::durable_restart_drill_instrumented(seed);
    let (full, delta, local) = (
        drill.full_fetch_bytes(),
        drill.delta_fetch_bytes(),
        drill.local_bytes(),
    );
    println!("\n# Durable cold-restart drill (RUBIN stack, seed {seed})");
    println!("{:<48} {full}", "full fetch bytes (no durable store)");
    println!("{:<48} {delta}", "delta fetch bytes (WAL replay)");
    println!("{:<48} {local}", "bytes satisfied locally");
    println!(
        "{:<48} {}",
        "WAL frames replayed",
        drill.durable.counter("reptor.r1.wal_frames_replayed")
    );
    if !drill.gate_passes() {
        eprintln!(
            "FAIL: delta fetch ({delta} B) must be < 50% of the full \
             fetch ({full} B) — local WAL replay is not shrinking the \
             cold-restart transfer"
        );
        std::process::exit(1);
    }
    println!("\ndelta-fetch gate: {delta} B < 50% of {full} B — ok");
}
