//! Event-core throughput micro-benchmark plus the CI simulator-speed gate.
//!
//! Runs the same deterministic scheduling workload (standing window,
//! cross-host timers, a slice of cancellations) on both event-core
//! generations in the same process:
//!
//! * the pre-PR global `BinaryHeap` + cancelled-id set (`Core::Legacy`),
//! * the sharded slab queue with conservative lookahead (`Core::Sharded`),
//!
//! and gates on the *ratio* sharded/legacy, which is machine-independent —
//! both cores pay the same CPU, allocator and cache conditions of the
//! runner. The gate fails unless the sharded core is at least
//! `SIM_SPEED_MIN_RATIO`× (default 1.5×) the legacy core.
//!
//! Usage: `sim_speed [events] [rounds]`. Writes `target/BENCH_PR8.json`
//! (`BENCH_JSON_PATH` overrides) with both absolute readings and the
//! ratio, so CI can track the simulator-throughput trajectory over time.
//! The repo root carries a committed `BENCH_PR8.json` with the readings
//! from the change that introduced the sharded core, for reference.

use simnet::speed::{compare, SpeedWorkload};

/// Gate threshold: sharded core must beat legacy by at least this factor.
const DEFAULT_MIN_RATIO: f64 = 1.5;

fn main() {
    let arg = |n: usize| std::env::args().nth(n);
    let events: u64 = arg(1).and_then(|s| s.parse().ok()).unwrap_or(600_000);
    let rounds: usize = arg(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let min_ratio: f64 = std::env::var("SIM_SPEED_MIN_RATIO")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MIN_RATIO);

    let w = SpeedWorkload {
        events,
        ..SpeedWorkload::default()
    };
    println!(
        "# sim_speed — event-core throughput, {} events, window {}, {} hosts, burst {}, cancel 1/{} ({rounds} rounds, best-of)",
        w.events, w.window, w.hosts, w.burst, w.cancel_every
    );
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "round", "legacy ev/s", "sharded ev/s", "ratio"
    );

    // Best-of-N per core: micro-bench noise (scheduler preemption, cache
    // warm-up) only ever slows a round down, so the max is the cleanest
    // reading for each core.
    let mut best_legacy = 0.0f64;
    let mut best_sharded = 0.0f64;
    for round in 0..rounds {
        let (legacy, sharded) = compare(w, 0xC0FFEE + round as u64);
        println!(
            "{:>8} {:>16.0} {:>16.0} {:>7.2}x",
            round,
            legacy,
            sharded,
            sharded / legacy
        );
        best_legacy = best_legacy.max(legacy);
        best_sharded = best_sharded.max(sharded);
    }
    let ratio = best_sharded / best_legacy;
    println!(
        "{:>8} {:>16.0} {:>16.0} {:>7.2}x",
        "best", best_legacy, best_sharded, ratio
    );

    let ok = ratio >= min_ratio;
    let json = format!(
        "{{\"workload\":{{\"events\":{},\"window\":{},\"cancel_every\":{},\"hosts\":{},\"burst\":{},\"rounds\":{rounds}}},\
         \"events_per_sec_legacy\":{:.1},\"events_per_sec\":{:.1},\"ratio\":{:.4},\"min_ratio\":{:.2},\
         \"checks\":{{\"sim speed: sharded core >= {:.2}x legacy core\":{}}}}}",
        w.events, w.window, w.cancel_every, w.hosts, w.burst, best_legacy, best_sharded, ratio, min_ratio, min_ratio, ok
    );
    simnet::metrics::validate_json(&json).expect("bench JSON must be valid");
    let path =
        std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "target/BENCH_PR8.json".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("bench JSON directory");
    }
    std::fs::write(&path, &json).expect("write bench JSON");
    println!("\nwrote {path} ({} bytes)", json.len());

    println!(
        "\n# gate: sharded/legacy = {ratio:.2}x (minimum {min_ratio:.2}x) — {}",
        if ok { "PASS" } else { "FAIL" }
    );
    if !ok {
        eprintln!(
            "REGRESSION: sharded event core only {ratio:.2}x legacy (need >= {min_ratio:.2}x)"
        );
        std::process::exit(1);
    }
}
