//! Regenerates Figure 3 (echo micro-benchmark): latency (3a) and
//! throughput (3b) for TCP, RDMA Send/Recv, RDMA Read/Write, and the
//! RUBIN RDMA channel over 1–100 KB payloads.

use bench::fig3;
use simnet::render_table;

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "both".into());
    let msgs = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(bench::DEFAULT_MSGS);
    let (lat, thr) = fig3::run(msgs);
    if mode == "latency" || mode == "both" {
        print!("{}", render_table("Figure 3a — echo latency", "us", &lat));
    }
    if mode == "throughput" || mode == "both" {
        let krps: Vec<simnet::Series> = thr
            .iter()
            .map(|s| {
                let mut k = simnet::Series::new(s.label.clone());
                for p in &s.points {
                    k.push(p.payload_bytes, p.value / 1000.0);
                }
                k
            })
            .collect();
        print!(
            "{}",
            render_table("Figure 3b — echo throughput", "krps", &krps)
        );
    }
    println!("\n# Shape checks vs. paper §V");
    for (desc, ok) in fig3::shape_report(&lat, &thr) {
        println!("  [{}] {desc}", if ok { "PASS" } else { "FAIL" });
    }
}
