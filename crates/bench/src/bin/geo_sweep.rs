//! Geo-distributed agreement sweep over the WAN latency matrices.
//!
//! Sweeps the replica count n ∈ {4, 7, 16} (plus n = 31 and the 5-region
//! matrix with `--full`, run by the CI `scale` job in release mode) over
//! [`simnet::LatencyMatrix`] topologies, driving each group with a small
//! client workload on the `SimTransport` stack. For every point the sweep
//! gates:
//!
//! * **agreement** — every client request completes and the safety
//!   cross-check over the executed logs passes;
//! * **determinism** — a second run from the same seed produces a
//!   byte-identical metrics snapshot (WAN delays, client scheduling and
//!   the sharded event core included).
//!
//! Reported commit latency is the mean client round-trip in microseconds —
//! dominated by inter-region RTT, which is the point: the table in
//! EXPERIMENTS.md shows how the geo spread, not the protocol, sets the
//! floor. Writes `target/GEO_SWEEP.json` (`BENCH_JSON_PATH` overrides) and
//! exits non-zero if any gate fails.
//!
//! Usage: `geo_sweep [requests] [--full]`.

use reptor::{Cluster, CounterService, ReptorConfig};
use simnet::LatencyMatrix;

const SEED: u64 = 0x6E0;

struct Point {
    topology: &'static str,
    n: usize,
    regions: usize,
    completed: u64,
    latency_us: f64,
    events: u64,
    identical_replay: bool,
}

/// Runs one sweep point; returns the mean client latency, the snapshot
/// JSON (for the replay check) and the executed-event count.
fn run_point(n: usize, requests: u64, topology: &LatencyMatrix, seed: u64) -> (f64, String, u64) {
    let cfg = ReptorConfig {
        n,
        ..ReptorConfig::small()
    };
    let mut c = Cluster::sim_transport_geo(cfg, 1, 1, seed, topology, || {
        Box::new(CounterService::default())
    });
    let client = c.clients[0].clone();
    let t0 = c.sim.now();
    for _ in 0..requests {
        client.submit(&mut c.sim, b"inc".to_vec());
    }
    assert!(
        c.run_until_completed(requests, 200_000_000),
        "geo agreement must complete (n={n})"
    );
    let elapsed = c.sim.now() - t0;
    c.settle();
    c.assert_safety();
    let stats = c.clients[0].stats();
    assert_eq!(stats.completed, requests, "every request must commit");
    let latency_us = elapsed.as_nanos() as f64 / 1_000.0 / requests as f64;
    (
        latency_us,
        c.metrics_snapshot().to_json(),
        c.sim.executed_events(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let requests: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);

    let lan = LatencyMatrix::lan();
    let wan3 = LatencyMatrix::three_region_wan();
    let wan5 = LatencyMatrix::five_region_wan();
    let mut sweep: Vec<(&'static str, &LatencyMatrix, Vec<usize>)> =
        vec![("lan", &lan, vec![4]), ("wan3", &wan3, vec![4, 7, 16])];
    if full {
        sweep[1].2.push(31);
        sweep.push(("wan5", &wan5, vec![7, 16]));
    }

    println!(
        "# geo_sweep — commit latency across WAN latency matrices ({requests} requests/point)"
    );
    println!(
        "{:>6} {:>4} {:>8} {:>14} {:>12} {:>8}",
        "topo", "n", "regions", "latency(us)", "events", "replay"
    );

    let mut points: Vec<Point> = Vec::new();
    for (name, topo, ns) in &sweep {
        for &n in ns {
            let (latency_us, snap_a, events) = run_point(n, requests, topo, SEED);
            let (_, snap_b, _) = run_point(n, requests, topo, SEED);
            let identical = snap_a == snap_b;
            println!(
                "{:>6} {:>4} {:>8} {:>14.1} {:>12} {:>8}",
                name,
                n,
                topo.num_regions(),
                latency_us,
                events,
                if identical { "ok" } else { "DRIFT" }
            );
            points.push(Point {
                topology: name,
                n,
                regions: topo.num_regions(),
                completed: requests,
                latency_us,
                events,
                identical_replay: identical,
            });
        }
    }

    let mut body = String::from("{\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"topology\":\"{}\",\"n\":{},\"regions\":{},\"completed\":{},\"latency_us\":{:.1},\
             \"events\":{},\"identical_replay\":{}}}",
            p.topology, p.n, p.regions, p.completed, p.latency_us, p.events, p.identical_replay
        ));
    }
    let all_replay = points.iter().all(|p| p.identical_replay);
    body.push_str(&format!(
        "],\"checks\":{{\"geo: every point reached agreement\":true,\
         \"geo: every point replays byte-identically\":{all_replay}}}}}"
    ));
    simnet::metrics::validate_json(&body).expect("bench JSON must be valid");
    let path =
        std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "target/GEO_SWEEP.json".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("bench JSON directory");
    }
    std::fs::write(&path, &body).expect("write bench JSON");
    println!("\nwrote {path} ({} bytes)", body.len());

    if !all_replay {
        eprintln!("REGRESSION: a geo point did not replay byte-identically");
        std::process::exit(1);
    }
    println!(
        "\n# gate: {} points, agreement + byte-identical replay — PASS",
        points.len()
    );
}
