//! COP scaling sweep plus the CI bench-regression gate.
//!
//! Runs the Consensus-Oriented Parallelization sweep (`p` ∈ {1, 2, 4}
//! pipelines on the 4-core Xeon-v2 host model) together with reduced-count
//! fig3/fig4 shape checks, writes a machine-readable `BENCH_PR3.json`
//! (hand-rolled JSON, validated like the metrics sidecar), and exits
//! non-zero if any EXPERIMENTS.md shape claim regresses:
//!
//! * fig3: TCP slower than Send/Recv slower than Read/Write, RUBIN fastest;
//! * fig4: the RUBIN selector beats the NIO selector;
//! * COP: throughput at `p = 4` is ≥ 1.6× `p = 1`, and the `p = 1`
//!   operating point is byte-identical to the pre-COP replica (the sweep's
//!   single-pipeline run re-produces the recorded baseline exactly — the
//!   simulator is deterministic, so any drift is a real behaviour change).
//!
//! Usage: `cop_scaling [msgs] [total] [depth]` — `msgs` feeds fig3/fig4,
//! `total`/`depth` the COP sweep. `BENCH_JSON_PATH` overrides the output
//! path (default `target/BENCH_PR3.json`). Set `COP_SKIP_FIGS=1` to gate
//! the COP sweep alone (used while iterating locally).

use bench::{fig3, fig4, replicated};
use simnet::Series;

/// The `p = 1` operating point of the pre-COP replica (captured on the
/// seed revision at the gate's default parameters: payload 4096 B,
/// `total` 240, `depth` 16, seed `0xC0C`). The deterministic simulator
/// reproduces these digits exactly; the gate fails on any drift.
const P1_BASELINE: Option<replicated::CopPoint> = Some(replicated::CopPoint {
    pipelines: 1,
    latency_us: 896.579,
    rps: 17276.130146847107,
});

/// Default COP sweep parameters (what CI runs and the baseline refers to).
const DEFAULT_TOTAL: u64 = 240;
const DEFAULT_DEPTH: usize = 16;

fn json_series(series: &[Series]) -> String {
    let mut out = String::from("{");
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{{", s.label.replace('"', "")));
        for (j, p) in s.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{:.3}", p.payload_bytes, p.value));
        }
        out.push('}');
    }
    out.push('}');
    out
}

fn json_checks(checks: &[(String, bool)]) -> String {
    let mut out = String::from("{");
    for (i, (desc, ok)) in checks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", desc.replace('"', "'"), ok));
    }
    out.push('}');
    out
}

fn main() {
    let arg = |n: usize| std::env::args().nth(n);
    let msgs: usize = arg(1).and_then(|s| s.parse().ok()).unwrap_or(60);
    let total: u64 = arg(2).and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_TOTAL);
    let depth: usize = arg(3).and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_DEPTH);
    let skip_figs = std::env::var("COP_SKIP_FIGS").is_ok_and(|v| v == "1");

    let mut checks: Vec<(String, bool)> = Vec::new();
    let mut sections: Vec<String> = Vec::new();

    // --- COP sweep -----------------------------------------------------
    println!("# COP scaling — p pipelines on the 4-core Xeon-v2 host model");
    println!(
        "({total} requests of {} B, depth {depth})\n",
        replicated::COP_PAYLOAD
    );
    println!(
        "{:>10} {:>14} {:>12} {:>10}",
        "pipelines", "latency(us)", "req/s", "speedup"
    );
    let points = replicated::cop_scaling(total, depth);
    let p1 = points[0];
    for p in &points {
        println!(
            "{:>10} {:>14.1} {:>12.0} {:>9.2}x",
            p.pipelines,
            p.latency_us,
            p.rps,
            p.rps / p1.rps
        );
    }
    let p4 = points
        .iter()
        .find(|p| p.pipelines == 4)
        .expect("sweep includes p=4");
    checks.push((
        format!(
            "COP scaling: p=4 throughput ({:.0} rps) >= 1.6x p=1 ({:.0} rps)",
            p4.rps, p1.rps
        ),
        p4.rps >= 1.6 * p1.rps,
    ));
    if let Some(base) = P1_BASELINE {
        if total == DEFAULT_TOTAL && depth == DEFAULT_DEPTH {
            checks.push((
                format!(
                    "COP p=1 byte-identical to pre-COP baseline ({:.3} us, {:.3} rps)",
                    base.latency_us, base.rps
                ),
                p1.latency_us == base.latency_us && p1.rps == base.rps,
            ));
        }
    }
    {
        let mut cop = String::from("\"cop_scaling\":[");
        for (i, p) in points.iter().enumerate() {
            if i > 0 {
                cop.push(',');
            }
            cop.push_str(&format!(
                "{{\"pipelines\":{},\"latency_us\":{:.3},\"rps\":{:.3}}}",
                p.pipelines, p.latency_us, p.rps
            ));
        }
        cop.push(']');
        sections.push(cop);
    }

    // --- one-sided fast path: commit-latency gate ----------------------
    println!("\n# one-sided fast path — PBFT commit latency over RUBIN (batch 10)");
    let cmp = replicated::fast_path_comparison(total / 2, depth, 0xFA57);
    println!("{:>14} {:>14} {:>12}", "path", "latency(us)", "req/s");
    println!(
        "{:>14} {:>14.1} {:>12.0}",
        "message", cmp.message.latency_us, cmp.message.rps
    );
    println!(
        "{:>14} {:>14.1} {:>12.0}",
        "fast", cmp.fast.latency_us, cmp.fast.rps
    );
    let writes = cmp.snapshot.total("fast_path_writes");
    let deliveries = cmp.snapshot.total("fast_path_deliveries");
    let fallbacks = cmp.snapshot.total("fast_path_fallbacks");
    let conflicts = cmp.snapshot.total("fast_path_slot_conflicts");
    let denied = cmp.snapshot.total("fast_path_write_denied");
    checks.push((
        format!(
            "fast path: commit latency ({:.1} us) strictly below message path ({:.1} us) at batch 10",
            cmp.fast.latency_us, cmp.message.latency_us
        ),
        cmp.fast.latency_us < cmp.message.latency_us,
    ));
    checks.push((
        format!("fast path: leader WRITEs carry the proposals (writes {writes}, deliveries {deliveries})"),
        writes > 0 && deliveries > 0,
    ));
    checks.push((
        format!("fast path: no RNIC denials in the common case (denied {denied})"),
        denied == 0,
    ));
    sections.push(format!(
        "\"fast_path\":{{\"message_latency_us\":{:.3},\"fast_latency_us\":{:.3},\"message_rps\":{:.3},\"fast_rps\":{:.3},\
         \"fast_path_writes\":{writes},\"fast_path_deliveries\":{deliveries},\"fast_path_fallbacks\":{fallbacks},\
         \"fast_path_slot_conflicts\":{conflicts},\"fast_path_write_denied\":{denied}}}",
        cmp.message.latency_us, cmp.fast.latency_us, cmp.message.rps, cmp.fast.rps
    ));

    // --- fig3/fig4 shape checks at reduced counts ----------------------
    if !skip_figs {
        println!("\n# fig3 shape checks ({msgs} msgs)");
        let (lat3, thr3) = fig3::run(msgs);
        for (desc, ok) in fig3::shape_report(&lat3, &thr3) {
            println!("- [{}] {desc}", if ok { "x" } else { " " });
            checks.push((format!("fig3: {desc}"), ok));
        }
        sections.push(format!("\"fig3_latency_us\":{}", json_series(&lat3)));
        sections.push(format!("\"fig3_rps\":{}", json_series(&thr3)));

        println!("\n# fig4 shape checks ({msgs} msgs)");
        let (lat4, thr4) = fig4::run(msgs);
        for (desc, ok) in fig4::shape_report(&lat4, &thr4) {
            println!("- [{}] {desc}", if ok { "x" } else { " " });
            checks.push((format!("fig4: {desc}"), ok));
        }
        sections.push(format!("\"fig4_latency_us\":{}", json_series(&lat4)));
        sections.push(format!("\"fig4_rps\":{}", json_series(&thr4)));
    }

    // --- gate + JSON ---------------------------------------------------
    sections.push(format!("\"checks\":{}", json_checks(&checks)));
    let json = format!("{{{}}}", sections.join(","));
    simnet::metrics::validate_json(&json).expect("bench JSON must be valid");
    let path =
        std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| "target/BENCH_PR3.json".to_string());
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("bench JSON directory");
    }
    std::fs::write(&path, &json).expect("write bench JSON");
    println!("\nwrote {path} ({} bytes)", json.len());

    let failed: Vec<&(String, bool)> = checks.iter().filter(|(_, ok)| !ok).collect();
    println!(
        "\n# gate: {}/{} checks passed",
        checks.len() - failed.len(),
        checks.len()
    );
    if !failed.is_empty() {
        for (desc, _) in failed {
            eprintln!("REGRESSION: {desc}");
        }
        std::process::exit(1);
    }
}
