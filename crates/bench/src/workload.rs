//! Workload generation for the replicated-system experiment.
//!
//! BFT deployments see mixed request sizes: mostly small operations with
//! an occasional large payload (the paper cites HTTP/IMAP use cases via
//! Troxy \[24\] as the source of rare 100 KB messages). The generator
//! produces deterministic, seedable request streams with configurable
//! mixes so the replicated benchmark can be driven with something more
//! realistic than a fixed size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named request-size mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Fixed-size requests (the classic micro-benchmark).
    Fixed(usize),
    /// 90 % small key/value-style ops (128–512 B), 10 % medium (4 KB).
    KvStore,
    /// 70 % small, 25 % medium (8 KB), 5 % large (64 KB) — the
    /// HTTP/IMAP-flavoured mix of the paper's §V discussion.
    WebFrontend,
    /// Blockchain transactions: 200–400 B transfers.
    Ledger,
}

impl Mix {
    /// Parses a mix name (`fixed:<bytes>`, `kv`, `web`, `ledger`).
    pub fn parse(s: &str) -> Option<Mix> {
        if let Some(rest) = s.strip_prefix("fixed:") {
            return rest.parse().ok().map(Mix::Fixed);
        }
        match s {
            "kv" => Some(Mix::KvStore),
            "web" => Some(Mix::WebFrontend),
            "ledger" => Some(Mix::Ledger),
            _ => None,
        }
    }

    /// Display label for tables.
    pub fn label(&self) -> String {
        match self {
            Mix::Fixed(n) => format!("fixed {n}B"),
            Mix::KvStore => "kv (90% small)".into(),
            Mix::WebFrontend => "web (5% 64KB)".into(),
            Mix::Ledger => "ledger".into(),
        }
    }
}

/// Deterministic request-payload generator.
#[derive(Debug)]
pub struct Workload {
    mix: Mix,
    rng: StdRng,
    generated: u64,
    total_bytes: u64,
}

impl Workload {
    /// Creates a generator for `mix` with the given seed.
    pub fn new(mix: Mix, seed: u64) -> Workload {
        Workload {
            mix,
            rng: StdRng::seed_from_u64(seed),
            generated: 0,
            total_bytes: 0,
        }
    }

    /// The next request payload.
    pub fn next_payload(&mut self) -> Vec<u8> {
        let size = match self.mix {
            Mix::Fixed(n) => n,
            Mix::KvStore => {
                if self.rng.gen_bool(0.9) {
                    self.rng.gen_range(128..=512)
                } else {
                    4 * 1024
                }
            }
            Mix::WebFrontend => {
                let roll: f64 = self.rng.gen();
                if roll < 0.70 {
                    self.rng.gen_range(200..=1024)
                } else if roll < 0.95 {
                    8 * 1024
                } else {
                    64 * 1024
                }
            }
            Mix::Ledger => self.rng.gen_range(200..=400),
        };
        self.generated += 1;
        self.total_bytes += size as u64;
        let tag = self.generated;
        (0..size)
            .map(|i| (i as u64).wrapping_mul(31).wrapping_add(tag) as u8)
            .collect()
    }

    /// Requests generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Mean payload size so far (bytes).
    pub fn mean_size(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.generated as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognises_all_mixes() {
        assert_eq!(Mix::parse("fixed:1024"), Some(Mix::Fixed(1024)));
        assert_eq!(Mix::parse("kv"), Some(Mix::KvStore));
        assert_eq!(Mix::parse("web"), Some(Mix::WebFrontend));
        assert_eq!(Mix::parse("ledger"), Some(Mix::Ledger));
        assert_eq!(Mix::parse("bogus"), None);
        assert_eq!(Mix::parse("fixed:notanumber"), None);
    }

    #[test]
    fn fixed_mix_is_constant_size() {
        let mut w = Workload::new(Mix::Fixed(777), 1);
        for _ in 0..10 {
            assert_eq!(w.next_payload().len(), 777);
        }
        assert_eq!(w.generated(), 10);
        assert!((w.mean_size() - 777.0).abs() < f64::EPSILON);
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = Workload::new(Mix::WebFrontend, 42);
        let mut b = Workload::new(Mix::WebFrontend, 42);
        for _ in 0..50 {
            assert_eq!(a.next_payload(), b.next_payload());
        }
    }

    #[test]
    fn mixes_respect_their_distributions() {
        let mut w = Workload::new(Mix::KvStore, 7);
        let sizes: Vec<usize> = (0..2000).map(|_| w.next_payload().len()).collect();
        let small = sizes.iter().filter(|&&s| s <= 512).count();
        let medium = sizes.iter().filter(|&&s| s == 4096).count();
        assert_eq!(small + medium, 2000);
        let frac = small as f64 / 2000.0;
        assert!((0.85..=0.95).contains(&frac), "small fraction {frac}");

        let mut w = Workload::new(Mix::WebFrontend, 7);
        let sizes: Vec<usize> = (0..2000).map(|_| w.next_payload().len()).collect();
        let large = sizes.iter().filter(|&&s| s == 64 * 1024).count();
        let frac = large as f64 / 2000.0;
        assert!((0.02..=0.09).contains(&frac), "large fraction {frac}");

        let mut w = Workload::new(Mix::Ledger, 7);
        assert!((200..=400).contains(&w.next_payload().len()));
    }

    #[test]
    fn payloads_differ_between_requests() {
        let mut w = Workload::new(Mix::Fixed(64), 3);
        assert_ne!(w.next_payload(), w.next_payload());
    }
}
