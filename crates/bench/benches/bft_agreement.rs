//! Criterion wrapper around the replicated-system experiment (paper §VII
//! future work): 4-replica PBFT agreement over each comm stack.
//!
//! Measurement time is capped: each iteration builds a fresh simulated
//! cluster whose `Rc`-linked objects live until process exit.

use std::time::Duration;

use bench::replicated::{bft_echo, Stack};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bft_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("bft_agreement");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for stack in [Stack::Direct, Stack::Nio, Stack::Rubin] {
        g.bench_with_input(
            BenchmarkId::new("stack", format!("{stack:?}")),
            &stack,
            |b, &s| b.iter(|| bft_echo(s, 1024, 15, 4, 7)),
        );
    }
    g.finish();
}

criterion_group!(benches, bft_points);
criterion_main!(benches);
