//! Criterion wrapper around the Figure 3 echo micro-benchmark.
//!
//! The workload runs in simulated time, so Criterion measures the
//! simulator's wall-clock cost while the printed custom metrics (run the
//! `fig3` binary) carry the paper-comparable simulated microseconds. The
//! bench still guards against performance regressions of the stack itself.
//!
//! Measurement time is capped because each iteration constructs a fresh
//! simulated world (whose `Rc`-linked objects live until process exit);
//! unbounded iteration counts would accumulate working-set.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rubin::RubinConfig;

/// Paper configuration with small buffer pools: identical code paths,
/// bench-friendly per-iteration footprint.
fn bench_cfg() -> RubinConfig {
    RubinConfig {
        recv_buffers: 16,
        send_buffers: 16,
        signal_interval: 8,
        recv_batch: 8,
        ..RubinConfig::paper()
    }
}

fn fig3_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_echo");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for payload in [1024usize, 16 * 1024, 100 * 1024] {
        g.bench_with_input(BenchmarkId::new("tcp", payload), &payload, |b, &p| {
            b.iter(|| bench::fig3::tcp_echo(p, 10))
        });
        g.bench_with_input(BenchmarkId::new("send_recv", payload), &payload, |b, &p| {
            b.iter(|| bench::fig3::send_recv_echo(p, 10))
        });
        g.bench_with_input(
            BenchmarkId::new("read_write", payload),
            &payload,
            |b, &p| b.iter(|| bench::fig3::write_oneway(p, 10)),
        );
        g.bench_with_input(
            BenchmarkId::new("rubin_channel", payload),
            &payload,
            |b, &p| b.iter(|| bench::fig3::channel_echo(p, 10, bench_cfg())),
        );
    }
    g.finish();
}

criterion_group!(benches, fig3_points);
criterion_main!(benches);
