//! Criterion wrapper around the Figure 4 selector comparison.
//!
//! Measurement time is capped: each iteration builds a fresh simulated
//! world whose `Rc`-linked objects live until process exit.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig4_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_selector");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for payload in [1024usize, 100 * 1024] {
        g.bench_with_input(BenchmarkId::new("nio", payload), &payload, |b, &p| {
            b.iter(|| bench::fig4::nio_selector_echo(p, 30))
        });
        g.bench_with_input(BenchmarkId::new("rubin", payload), &payload, |b, &p| {
            b.iter(|| bench::fig4::rubin_selector_echo(p, 30))
        });
    }
    g.finish();
}

criterion_group!(benches, fig4_points);
criterion_main!(benches);
