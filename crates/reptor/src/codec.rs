//! Minimal binary codec.
//!
//! The offline environment offers no serde binary format crate, so protocol
//! messages are encoded with a small hand-rolled, length-checked codec:
//! little-endian fixed-width integers and length-prefixed byte strings.

use std::fmt;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEnd {
        /// What was being decoded.
        wanted: &'static str,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The context (which enum).
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix exceeded the remaining input (corrupt or hostile).
    BadLength {
        /// Claimed length.
        claimed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { wanted } => {
                write!(f, "input ended while decoding {wanted}")
            }
            CodecError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            CodecError::BadLength { claimed, remaining } => {
                write!(
                    f,
                    "length prefix {claimed} exceeds remaining {remaining} bytes"
                )
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a fixed-size array without a length prefix.
    pub fn array<const N: usize>(&mut self, v: &[u8; N]) {
        self.buf.extend_from_slice(v);
    }

    /// Finishes, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the input was fully consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.remaining()))
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] at end of input.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        if self.remaining() < 1 {
            return Err(CodecError::UnexpectedEnd { wanted: "u8" });
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] with fewer than 4 bytes left.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        if self.remaining() < 4 {
            return Err(CodecError::UnexpectedEnd { wanted: "u32" });
        }
        let v = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        );
        self.pos += 4;
        Ok(v)
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] with fewer than 8 bytes left.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        if self.remaining() < 8 {
            return Err(CodecError::UnexpectedEnd { wanted: "u64" });
        }
        let v = u64::from_le_bytes(
            self.buf[self.pos..self.pos + 8]
                .try_into()
                .expect("8 bytes"),
        );
        self.pos += 8;
        Ok(v)
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadLength`] if the prefix exceeds the remaining input.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::BadLength {
                claimed: len,
                remaining: self.remaining(),
            });
        }
        let v = self.buf[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(v)
    }

    /// Reads a fixed-size array.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] with fewer than `N` bytes left.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        if self.remaining() < N {
            return Err(CodecError::UnexpectedEnd { wanted: "array" });
        }
        let v: [u8; N] = self.buf[self.pos..self.pos + N]
            .try_into()
            .expect("N bytes");
        self.pos += N;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEADBEEF);
        w.u64(u64::MAX - 1);
        w.bytes(b"hello");
        w.array(&[1u8, 2, 3, 4]);
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.array::<4>().unwrap(), [1, 2, 3, 4]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = Writer::new();
        w.u64(42);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..5]);
        assert!(matches!(r.u64(), Err(CodecError::UnexpectedEnd { .. })));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // claims 4 GiB payload
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bytes(), Err(CodecError::BadLength { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.expect_end(), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn empty_writer() {
        let w = Writer::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert!(w.finish().is_empty());
    }
}
