//! Checkpoint state transfer: versioned, digest-chunked checkpoint stores
//! and the fetch-side transfer state machine.
//!
//! At every checkpoint a replica serializes its application state and
//! executor position into a [`CheckpointStore`]: the payload is cut into
//! fixed-size chunks, each chunk is digested, and the ordered chunk-digest
//! list is sealed into a *manifest* whose own digest is the store's
//! **root**. The root is what replicas attest in their CHECKPOINT votes,
//! so `f + 1` matching votes certify the entire store down to every byte:
//! a fetching replica first verifies the manifest against the certified
//! root, then verifies each chunk against the manifest, and can therefore
//! pull chunks from *any* single (possibly Byzantine) responder — over
//! chunked `StateChunk` messages on socket transports, or with one-sided
//! RDMA READs against the responder's registered store region on RUBIN,
//! where serving a chunk costs the responder zero CPU.
//!
//! Corrupt or stale bytes (a `BogusStateChunks` or `StaleCheckpoint`
//! responder) fail their digest check and the [`Transfer`] routes around
//! the responder by advancing to the next attester; verified chunks are
//! kept, so a Byzantine peer can slow a transfer down but never poison or
//! restart it.

use bft_crypto::{Digest, DIGEST_LEN};

use crate::codec::{Reader, Writer};
use crate::messages::{ClientId, ReplicaId, SeqNum};

/// Bytes per checkpoint-store chunk. Deliberately small so even modest
/// service states exercise multi-chunk transfers (and multi-READ RDMA
/// fetches) in simulation.
pub const CHUNK_SIZE: usize = 256;

/// Upper bound on a peer-claimed store size; a Byzantine manifest cannot
/// make a fetcher allocate unbounded memory.
pub const MAX_STORE_BYTES: u64 = 16 * 1024 * 1024;

/// A responder's advertisement of where its checkpoint store can be read
/// one-sided: the rkey of the registered memory region and its length.
/// `rkey == 0` means the transport has no one-sided path and chunks must
/// be fetched with `StateRequest` messages.
///
/// The `epoch` tags the offer with the recovery epoch it was registered
/// under. On every proactive-recovery epoch roll the store region is
/// re-registered and the previous epoch's region invalidated, so an offer
/// carrying a past epoch names an rkey the responder's RNIC will refuse —
/// the fence is enforced by the permission check, not by digest
/// comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateOffer {
    /// Remote key of the registered store region (0 = message path only).
    pub rkey: u32,
    /// Length of the registered region in bytes.
    pub len: u64,
    /// Recovery epoch the region was registered under.
    pub epoch: u64,
}

impl StateOffer {
    /// True if the responder offered a one-sided read path.
    pub fn readable(&self) -> bool {
        self.rkey != 0
    }
}

/// The serialized content of a checkpoint: executor position, service
/// snapshot and client session table — everything a rejoining replica
/// needs to resume agreement above the checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointPayload {
    /// The sequence number the state reflects (executor position).
    pub seq: SeqNum,
    /// Opaque [`StateMachine::snapshot`](crate::state::StateMachine::snapshot) bytes.
    pub service_snapshot: Vec<u8>,
    /// Per-client last-reply table, sorted by client id (determinism: every
    /// honest replica serializes the identical byte string).
    pub clients: Vec<(ClientId, u64, Vec<u8>)>,
}

impl CheckpointPayload {
    /// Deterministic serialization.
    pub fn encode(&self) -> Vec<u8> {
        debug_assert!(
            self.clients.windows(2).all(|w| w[0].0 < w[1].0),
            "client table must be sorted and deduplicated"
        );
        let mut w = Writer::new();
        w.u64(self.seq);
        w.bytes(&self.service_snapshot);
        w.u32(self.clients.len() as u32);
        for (client, timestamp, reply) in &self.clients {
            w.u32(*client);
            w.u64(*timestamp);
            w.bytes(reply);
        }
        w.finish()
    }

    /// Decodes a payload. `None` on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Option<CheckpointPayload> {
        let mut r = Reader::new(bytes);
        let seq = r.u64().ok()?;
        let service_snapshot = r.bytes().ok()?;
        let n = r.u32().ok()? as usize;
        let mut clients = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let client = r.u32().ok()?;
            let timestamp = r.u64().ok()?;
            let reply = r.bytes().ok()?;
            clients.push((client, timestamp, reply));
        }
        r.expect_end().ok()?;
        Some(CheckpointPayload {
            seq,
            service_snapshot,
            clients,
        })
    }
}

/// The decoded store manifest: the certified description of every chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint sequence number the store covers.
    pub seq: SeqNum,
    /// Total payload length in bytes.
    pub total_len: u64,
    /// Digest of each `CHUNK_SIZE` slice, in order.
    pub chunks: Vec<Digest>,
}

impl Manifest {
    /// Verifies `bytes` against the certified `root` and the expected
    /// checkpoint `seq`, then decodes. `None` means the responder served a
    /// stale or forged manifest.
    pub fn verify_and_decode(bytes: &[u8], seq: SeqNum, root: Digest) -> Option<Manifest> {
        if Digest::of(bytes) != root {
            return None;
        }
        let mut r = Reader::new(bytes);
        let got_seq = r.u64().ok()?;
        let total_len = r.u64().ok()?;
        let n = r.u32().ok()? as usize;
        if got_seq != seq || total_len > MAX_STORE_BYTES {
            return None;
        }
        if n != total_len.div_ceil(CHUNK_SIZE as u64) as usize {
            return None;
        }
        let mut chunks = Vec::with_capacity(n);
        for _ in 0..n {
            chunks.push(Digest(r.array::<DIGEST_LEN>().ok()?));
        }
        r.expect_end().ok()?;
        Some(Manifest {
            seq,
            total_len,
            chunks,
        })
    }

    /// Length in bytes of chunk `idx` (the final chunk may be short).
    pub fn chunk_len(&self, idx: u32) -> usize {
        let start = idx as u64 * CHUNK_SIZE as u64;
        (self.total_len.saturating_sub(start) as usize).min(CHUNK_SIZE)
    }
}

/// A sealed checkpoint store held by a (potential) responder: the payload
/// bytes plus the manifest certifying them.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    seq: SeqNum,
    bytes: Vec<u8>,
    manifest: Vec<u8>,
    root: Digest,
}

impl CheckpointStore {
    /// Chunks and seals `payload` as the checkpoint store for `seq`.
    pub fn build(seq: SeqNum, payload: Vec<u8>) -> CheckpointStore {
        let mut w = Writer::new();
        w.u64(seq);
        w.u64(payload.len() as u64);
        w.u32(payload.len().div_ceil(CHUNK_SIZE) as u32);
        for chunk in payload.chunks(CHUNK_SIZE) {
            w.array(Digest::of(chunk).as_bytes());
        }
        let manifest = w.finish();
        let root = Digest::of(&manifest);
        CheckpointStore {
            seq,
            bytes: payload,
            manifest,
            root,
        }
    }

    /// The checkpoint sequence number.
    pub fn seq(&self) -> SeqNum {
        self.seq
    }

    /// The certified root digest (what CHECKPOINT votes attest).
    pub fn root(&self) -> Digest {
        self.root
    }

    /// The full payload (what gets registered as an RDMA-readable region).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The encoded manifest.
    pub fn manifest(&self) -> &[u8] {
        &self.manifest
    }

    /// Number of data chunks.
    pub fn num_chunks(&self) -> u32 {
        self.bytes.len().div_ceil(CHUNK_SIZE) as u32
    }

    /// The bytes of chunk `idx`, or `None` out of range.
    pub fn chunk(&self, idx: u32) -> Option<&[u8]> {
        if idx >= self.num_chunks() {
            return None;
        }
        let start = idx as usize * CHUNK_SIZE;
        let end = (start + CHUNK_SIZE).min(self.bytes.len());
        self.bytes.get(start..end)
    }
}

/// Outcome of offering received bytes to a [`Transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChunkVerdict {
    /// Digest matched the certified manifest; chunk stored.
    Accepted,
    /// Digest mismatch — the responder is faulty or stale.
    Mismatch,
    /// Out of range, duplicate, or no manifest yet; ignored.
    Ignored,
}

/// Fetch-side state of one in-progress checkpoint state transfer.
///
/// Pure data: the replica drives all I/O (manifest/chunk requests, RDMA
/// reads, retry timers) and feeds results in through
/// [`install_manifest`](Transfer::install_manifest) /
/// [`accept_chunk`](Transfer::accept_chunk).
#[derive(Debug)]
pub(crate) struct Transfer {
    /// The checkpoint sequence number being fetched.
    pub(crate) target: SeqNum,
    /// The `f + 1`-attested root digest.
    pub(crate) root: Digest,
    /// Attesters of `(target, root)` and their read offers, sorted by id.
    pub(crate) peers: Vec<(ReplicaId, StateOffer)>,
    /// Index into `peers` of the responder currently being used.
    pub(crate) current: usize,
    /// Verified manifest, once fetched.
    pub(crate) manifest: Option<Manifest>,
    /// Verified chunk bytes (kept across responder switches: a chunk that
    /// passed its digest check is final no matter who served it).
    pub(crate) chunks: Vec<Option<Vec<u8>>>,
    /// Verified chunks received so far.
    pub(crate) received: usize,
    /// Responder switches + timeout re-requests (metrics).
    pub(crate) retries: u64,
    /// A locally reconstructed payload candidate (durable snapshot + WAL
    /// replay). Once the manifest arrives, chunks whose local bytes match
    /// the certified digests are taken from here instead of the network —
    /// the fetch degrades to a delta of what actually changed.
    pub(crate) local: Option<Vec<u8>>,
}

impl Transfer {
    /// Starts a transfer for `(target, root)` from `peers`. `me` seeds the
    /// deterministic starting responder so a cluster of fetchers spreads
    /// load instead of all hammering the lowest-id attester.
    pub(crate) fn new(
        target: SeqNum,
        root: Digest,
        peers: Vec<(ReplicaId, StateOffer)>,
        me: ReplicaId,
    ) -> Transfer {
        assert!(!peers.is_empty(), "state transfer needs at least one peer");
        let current = me as usize % peers.len();
        Transfer {
            target,
            root,
            peers,
            current,
            manifest: None,
            chunks: Vec::new(),
            received: 0,
            retries: 0,
            local: None,
        }
    }

    /// Installs a local payload candidate for delta fetching (see
    /// [`Transfer::prefill_from_local`]).
    pub(crate) fn set_local_candidate(&mut self, bytes: Vec<u8>) {
        self.local = Some(bytes);
    }

    /// Fills every still-missing chunk whose slice of the local candidate
    /// digest-matches the certified manifest, consuming the candidate.
    /// Returns `(chunks, bytes)` satisfied locally. The digest check makes
    /// this exactly as safe as a network fetch: a stale or corrupt local
    /// byte range simply fails to match and is fetched remotely.
    pub(crate) fn prefill_from_local(&mut self) -> (u64, u64) {
        let Some(m) = &self.manifest else {
            return (0, 0);
        };
        let Some(local) = self.local.take() else {
            return (0, 0);
        };
        let (mut chunks, mut bytes) = (0u64, 0u64);
        for idx in 0..self.chunks.len() {
            if self.chunks[idx].is_some() {
                continue;
            }
            let len = m.chunk_len(idx as u32);
            let start = idx * CHUNK_SIZE;
            let Some(slice) = local.get(start..start + len) else {
                continue;
            };
            if Digest::of(slice) == m.chunks[idx] {
                self.chunks[idx] = Some(slice.to_vec());
                self.received += 1;
                chunks += 1;
                bytes += len as u64;
            }
        }
        (chunks, bytes)
    }

    /// The responder currently being fetched from.
    pub(crate) fn current_peer(&self) -> (ReplicaId, StateOffer) {
        self.peers[self.current]
    }

    /// Routes around the current responder (digest mismatch or timeout).
    pub(crate) fn next_peer(&mut self) {
        self.current = (self.current + 1) % self.peers.len();
        self.retries += 1;
    }

    /// Offers manifest bytes. On success allocates the chunk table.
    pub(crate) fn install_manifest(&mut self, bytes: &[u8]) -> bool {
        if self.manifest.is_some() {
            return true;
        }
        let Some(m) = Manifest::verify_and_decode(bytes, self.target, self.root) else {
            return false;
        };
        self.chunks = vec![None; m.chunks.len()];
        self.manifest = Some(m);
        true
    }

    /// Offers the bytes of chunk `idx`, verifying against the manifest.
    pub(crate) fn accept_chunk(&mut self, idx: u32, data: &[u8]) -> ChunkVerdict {
        let Some(m) = &self.manifest else {
            return ChunkVerdict::Ignored;
        };
        let Some(slot) = self.chunks.get_mut(idx as usize) else {
            return ChunkVerdict::Ignored;
        };
        if slot.is_some() {
            return ChunkVerdict::Ignored;
        }
        if data.len() != m.chunk_len(idx) || Digest::of(data) != m.chunks[idx as usize] {
            return ChunkVerdict::Mismatch;
        }
        *slot = Some(data.to_vec());
        self.received += 1;
        ChunkVerdict::Accepted
    }

    /// Lowest chunk index still missing, `None` when all are verified
    /// (or no manifest yet).
    pub(crate) fn next_missing(&self) -> Option<u32> {
        self.manifest.as_ref()?;
        self.chunks
            .iter()
            .position(|c| c.is_none())
            .map(|i| i as u32)
    }

    /// True once the manifest and every chunk have been verified.
    pub(crate) fn is_complete(&self) -> bool {
        self.manifest.is_some() && self.received == self.chunks.len()
    }

    /// Reassembles the verified payload. `None` while incomplete.
    pub(crate) fn assemble(&self) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let mut out = Vec::with_capacity(self.manifest.as_ref()?.total_len as usize);
        for c in &self.chunks {
            out.extend_from_slice(c.as_ref()?);
        }
        Some(out)
    }

    /// Monotone progress mark for stall detection: bumps whenever the
    /// manifest or a new chunk lands.
    pub(crate) fn progress(&self) -> u64 {
        self.manifest.is_some() as u64 + self.received as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize) -> Vec<u8> {
        CheckpointPayload {
            seq: 64,
            service_snapshot: (0..len).map(|i| (i % 251) as u8).collect(),
            clients: vec![(100, 7, b"ok".to_vec()), (101, 9, Vec::new())],
        }
        .encode()
    }

    #[test]
    fn payload_roundtrip() {
        let p = CheckpointPayload {
            seq: 128,
            service_snapshot: vec![1, 2, 3],
            clients: vec![(5, 1, b"r".to_vec())],
        };
        assert_eq!(CheckpointPayload::decode(&p.encode()), Some(p));
        assert_eq!(CheckpointPayload::decode(b"junk"), None);
    }

    #[test]
    fn store_chunks_and_manifest_agree() {
        let bytes = payload(3 * CHUNK_SIZE + 17);
        let store = CheckpointStore::build(64, bytes.clone());
        assert!(store.num_chunks() >= 4);
        let m = Manifest::verify_and_decode(store.manifest(), 64, store.root()).expect("verifies");
        assert_eq!(m.total_len, bytes.len() as u64);
        assert_eq!(m.chunks.len() as u32, store.num_chunks());
        let mut reassembled = Vec::new();
        for i in 0..store.num_chunks() {
            let c = store.chunk(i).expect("in range");
            assert_eq!(c.len(), m.chunk_len(i));
            assert_eq!(Digest::of(c), m.chunks[i as usize]);
            reassembled.extend_from_slice(c);
        }
        assert_eq!(reassembled, bytes);
        assert_eq!(store.chunk(store.num_chunks()), None);
    }

    #[test]
    fn manifest_rejects_wrong_root_seq_and_forgery() {
        let store = CheckpointStore::build(64, payload(CHUNK_SIZE));
        // Wrong certified root (a stale store's manifest).
        let stale = CheckpointStore::build(32, payload(CHUNK_SIZE / 2));
        assert!(Manifest::verify_and_decode(stale.manifest(), 64, store.root()).is_none());
        // Right bytes, wrong expected seq.
        assert!(Manifest::verify_and_decode(store.manifest(), 65, store.root()).is_none());
        // Bit-flipped manifest fails the root check.
        let mut forged = store.manifest().to_vec();
        forged[0] ^= 1;
        assert!(Manifest::verify_and_decode(&forged, 64, store.root()).is_none());
    }

    #[test]
    fn transfer_verifies_and_routes_around_bogus_chunks() {
        let bytes = payload(2 * CHUNK_SIZE + 5);
        let store = CheckpointStore::build(64, bytes.clone());
        let peers = vec![
            (0, StateOffer::default()),
            (
                1,
                StateOffer {
                    rkey: 9,
                    len: 99,
                    epoch: 0,
                },
            ),
            (3, StateOffer::default()),
        ];
        let mut t = Transfer::new(64, store.root(), peers, 2);
        assert_eq!(t.current_peer().0, 3, "id 2 starts at peers[2]");
        // Chunks before the manifest are ignored.
        assert_eq!(
            t.accept_chunk(0, store.chunk(0).unwrap()),
            ChunkVerdict::Ignored
        );
        assert!(!t.install_manifest(b"not-the-manifest"));
        assert!(t.install_manifest(store.manifest()));
        assert_eq!(t.next_missing(), Some(0));
        // A corrupted chunk is detected and the transfer routes around.
        let mut bogus = store.chunk(0).unwrap().to_vec();
        bogus[3] ^= 0xFF;
        assert_eq!(t.accept_chunk(0, &bogus), ChunkVerdict::Mismatch);
        t.next_peer();
        assert_eq!(t.current_peer().0, 0);
        assert_eq!(t.retries, 1);
        // Honest chunks complete the transfer regardless of order.
        for idx in (0..store.num_chunks()).rev() {
            assert_eq!(
                t.accept_chunk(idx, store.chunk(idx).unwrap()),
                ChunkVerdict::Accepted
            );
            // Duplicates are ignored.
            assert_eq!(
                t.accept_chunk(idx, store.chunk(idx).unwrap()),
                ChunkVerdict::Ignored
            );
        }
        assert!(t.is_complete());
        assert_eq!(t.assemble(), Some(bytes));
        assert_eq!(t.progress(), 1 + store.num_chunks() as u64);
    }

    #[test]
    fn empty_payload_store_completes_on_manifest_alone() {
        let store = CheckpointStore::build(0, Vec::new());
        assert_eq!(store.num_chunks(), 0);
        let mut t = Transfer::new(0, store.root(), vec![(1, StateOffer::default())], 0);
        assert!(t.install_manifest(store.manifest()));
        assert!(t.is_complete());
        assert_eq!(t.assemble(), Some(Vec::new()));
    }
}
