//! # reptor — PBFT state-machine replication with COP parallelization
//!
//! A Rust reproduction of the Reptor BFT framework the paper integrates
//! RUBIN into (Behl et al. \[10\]): Castro–Liskov PBFT \[14\] with MAC-vector
//! authentication, request batching, checkpointing, view changes, and
//! Consensus-Oriented Parallelization (agreement instances spread across
//! pillar cores while execution stays sequential).
//!
//! The communication stack is pluggable through the [`Transport`] trait —
//! exactly the property the paper exploits: the same replica logic runs
//! over the Java-NIO-style TCP stack and over RUBIN's RDMA selector
//! without redesign (§III). Three transports are provided:
//!
//! * [`SimTransport`] — direct fabric delivery (protocol-logic tests).
//! * [`NioTransport`] — length-prefixed framing over the simulated TCP
//!   stack, driven by the NIO-style selector (the paper's baseline).
//! * [`RubinTransport`] — message-oriented RUBIN channels driven by the
//!   RDMA selector (the paper's contribution).
//!
//! # Example: a replicated counter reaching consensus
//!
//! ```
//! use reptor::{Cluster, CounterService, ReptorConfig};
//!
//! let mut cluster = Cluster::sim_transport(
//!     ReptorConfig::small(), 1, 7, || Box::new(CounterService::default()),
//! );
//! let client = cluster.clients[0].clone();
//! client.submit(&mut cluster.sim, b"inc".to_vec());
//! client.submit(&mut cluster.sim, b"inc".to_vec());
//! assert!(cluster.run_until_completed(2, 1_000_000));
//! cluster.assert_safety();
//! let final_count = cluster.clients[0].completions().last().unwrap().result.clone();
//! assert_eq!(final_count, 2u64.to_le_bytes());
//! ```

#![warn(missing_docs)]

mod client;
mod cluster;
mod codec;
mod config;
mod durability;
mod executor;
mod messages;
mod nio_transport;
mod pipeline;
mod recovery;
mod replica;
mod rubin_transport;
mod state;
mod state_transfer;
mod transport;

pub use client::{AuxHandler, Client, ClientStats, Completion};
pub use cluster::{Cluster, DOMAIN_SECRET};
pub use codec::{CodecError, Reader, Writer};
pub use config::{DurabilityConfig, ReptorConfig};
pub use durability::{
    crc32, encode_frame, scan_frames, DurableStore, Recovered, WalFrame, WalScan, MAX_FRAME,
    SLOT_BYTES, WAL_BASE,
};
pub use messages::{
    batch_digest, ClientId, Message, PreparedProof, ReplicaId, Request, SeqNum, SignedMessage,
    View, MANIFEST_CHUNK,
};
pub use nio_transport::NioTransport;
pub use pipeline::PipelineStats;
pub use recovery::{RecoveryConfig, RecoveryScheduler, RecoveryStats, ServiceFactory};
pub use replica::{ByzantineMode, Replica, ReplicaStats, LEASE_TORN_WINDOW};
pub use rubin_transport::RubinTransport;
pub use state::{CounterService, EchoService, KvOp, KvService, RegionWrite, StateMachine};
pub use state_transfer::{
    CheckpointPayload, CheckpointStore, Manifest, StateOffer, CHUNK_SIZE, MAX_STORE_BYTES,
};
pub use transport::{
    DeliveryFn, LaneDeliveryFn, NodeId, SimTransport, SlotDoorbellFn, SlotRegion, SlotWriteFn,
    StateReadFn, Transport,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_cluster(seed: u64) -> Cluster {
        Cluster::sim_transport(ReptorConfig::small(), 1, seed, || {
            Box::new(CounterService::default())
        })
    }

    #[test]
    fn single_request_commits_everywhere() {
        let mut c = counter_cluster(1);
        let client = c.clients[0].clone();
        client.submit(&mut c.sim, b"inc".to_vec());
        assert!(c.run_until_completed(1, 500_000));
        c.settle();
        for r in &c.replicas {
            assert_eq!(r.last_executed(), 1, "replica {}", r.id());
            assert_eq!(r.stats().executed_requests, 1);
        }
        c.assert_safety();
        let comp = client.completions();
        assert_eq!(comp.len(), 1);
        assert_eq!(comp[0].result, 1u64.to_le_bytes());
        assert!(comp[0].latency() > simnet::Nanos::ZERO);
    }

    #[test]
    fn many_requests_total_order_holds() {
        let mut c = counter_cluster(2);
        let client = c.clients[0].clone();
        for _ in 0..30 {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
        assert!(c.run_until_completed(30, 2_000_000));
        c.settle();
        c.assert_safety();
        // Every replica converges on the same counter value.
        for r in &c.replicas {
            assert_eq!(r.stats().executed_requests, 30);
        }
        // The final completed result is the full count.
        let max = c.clients[0]
            .completions()
            .iter()
            .map(|cm| u64::from_le_bytes(cm.result.clone().try_into().unwrap()))
            .max()
            .unwrap();
        assert_eq!(max, 30);
    }

    #[test]
    fn batching_reduces_agreement_instances() {
        let cfg = ReptorConfig {
            batch_size: 10,
            ..ReptorConfig::small()
        };
        let mut c = Cluster::sim_transport(cfg, 4, 3, || Box::new(EchoService::default()));
        // Four clients each submit 10 requests in a burst.
        for cl in c.clients.clone() {
            for i in 0..10u8 {
                cl.submit(&mut c.sim, vec![i; 32]);
            }
        }
        assert!(c.run_until_completed(10, 2_000_000));
        c.settle();
        c.assert_safety();
        let batches = c.replicas[0].stats().executed_batches;
        let requests = c.replicas[0].stats().executed_requests;
        assert_eq!(requests, 40);
        assert!(
            batches < requests,
            "batching must group requests: {batches} batches for {requests} reqs"
        );
    }

    #[test]
    fn checkpoints_advance_low_watermark() {
        let cfg = ReptorConfig {
            checkpoint_interval: 8,
            batch_size: 1,
            ..ReptorConfig::small()
        };
        let mut c = Cluster::sim_transport(cfg, 1, 4, || Box::new(CounterService::default()));
        let client = c.clients[0].clone();
        for _ in 0..20 {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
        assert!(c.run_until_completed(20, 3_000_000));
        c.settle();
        for r in &c.replicas {
            assert!(
                r.low_mark() >= 16,
                "replica {} low mark {} must have advanced",
                r.id(),
                r.low_mark()
            );
            assert!(r.stats().stable_checkpoints >= 2);
        }
        c.assert_safety();
    }

    #[test]
    fn crashed_backup_does_not_block_progress() {
        let mut c = counter_cluster(5);
        c.replicas[3].set_byzantine(ByzantineMode::Crash);
        let client = c.clients[0].clone();
        for _ in 0..5 {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
        assert!(c.run_until_completed(5, 1_000_000));
        c.settle();
        c.assert_safety();
        assert_eq!(c.replicas[0].last_executed(), 5);
        assert_eq!(c.replicas[3].last_executed(), 0, "crashed replica is dead");
    }

    #[test]
    fn silent_primary_triggers_view_change() {
        let mut c = counter_cluster(6);
        c.replicas[0].set_byzantine(ByzantineMode::SilentPrimary);
        let client = c.clients[0].clone();
        client.submit(&mut c.sim, b"inc".to_vec());
        assert!(
            c.run_until_completed(1, 5_000_000),
            "request must eventually execute in a later view"
        );
        c.settle();
        c.assert_safety();
        // Correct replicas moved past view 0.
        for r in &c.replicas[1..] {
            assert!(
                r.view() >= 1,
                "replica {} still in view {}",
                r.id(),
                r.view()
            );
        }
        assert!(c.replicas[1].stats().view_changes_sent >= 1);
    }

    #[test]
    fn equivocating_primary_cannot_violate_safety() {
        let mut c = counter_cluster(7);
        c.replicas[0].set_byzantine(ByzantineMode::EquivocatingPrimary);
        let client = c.clients[0].clone();
        for _ in 0..3 {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
        let done = c.run_until_completed(3, 8_000_000);
        c.settle();
        // Safety must hold regardless of liveness.
        c.assert_safety();
        assert!(
            done,
            "requests complete after the view change ousts the equivocator"
        );
        // The equivocator was voted out.
        for r in &c.replicas[1..] {
            assert!(r.view() >= 1);
        }
    }

    #[test]
    fn corrupt_macs_are_dropped_and_tolerated() {
        let mut c = counter_cluster(8);
        c.replicas[2].set_byzantine(ByzantineMode::CorruptMacs);
        let client = c.clients[0].clone();
        for _ in 0..4 {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
        assert!(c.run_until_completed(4, 3_000_000));
        c.settle();
        c.assert_safety();
        let dropped: u64 = c.replicas.iter().map(|r| r.stats().bad_mac_dropped).sum();
        assert!(dropped > 0, "corrupted MACs must be detected and dropped");
    }

    #[test]
    fn partitioned_replica_stays_behind_but_safety_holds() {
        let mut c = counter_cluster(9);
        // Cut replica 3 off from everyone, including the client (host 4).
        let hosts: Vec<simnet::HostId> = (0..5).map(simnet::HostId).collect();
        let isolated = hosts[3];
        c.net.with_faults(|f| {
            for &h in &hosts {
                if h != isolated {
                    f.partition(h, isolated);
                }
            }
        });
        let client = c.clients[0].clone();
        for _ in 0..5 {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
        assert!(c.run_until_completed(5, 2_000_000));
        c.settle();
        c.assert_safety();
        assert_eq!(c.replicas[0].last_executed(), 5);
        assert_eq!(c.replicas[3].last_executed(), 0);
    }

    #[test]
    fn seven_replica_group_tolerates_two_faults() {
        let cfg = ReptorConfig::for_f(2);
        let mut c = Cluster::sim_transport(cfg, 1, 10, || Box::new(CounterService::default()));
        c.replicas[5].set_byzantine(ByzantineMode::Crash);
        c.replicas[6].set_byzantine(ByzantineMode::CorruptMacs);
        let client = c.clients[0].clone();
        for _ in 0..5 {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
        assert!(c.run_until_completed(5, 3_000_000));
        c.settle();
        c.assert_safety();
        assert_eq!(c.replicas[0].last_executed(), 5);
    }

    #[test]
    fn duplicate_request_returns_cached_reply() {
        let mut c = counter_cluster(11);
        let client = c.clients[0].clone();
        client.submit(&mut c.sim, b"inc".to_vec());
        assert!(c.run_until_completed(1, 1_000_000));
        c.settle();
        // Simulate a lost-reply retransmission by injecting the same
        // request directly at a replica.
        let req = Request {
            client: client.id(),
            timestamp: 1,
            payload: b"inc".to_vec(),
        };
        let before = c.replicas[1].stats().replies_sent;
        c.replicas[1].on_request(&mut c.sim, req);
        c.settle();
        // No double execution.
        for r in &c.replicas {
            assert_eq!(r.stats().executed_requests, 1);
        }
        assert_eq!(
            c.replicas[1].stats().replies_sent,
            before + 1,
            "cached reply must be resent"
        );
    }

    #[test]
    fn kv_service_replicates_state() {
        let cfg = ReptorConfig::small();
        let mut c = Cluster::sim_transport(cfg, 1, 12, || Box::new(KvService::default()));
        let client = c.clients[0].clone();
        client.submit(
            &mut c.sim,
            KvOp::Put(b"k1".to_vec(), b"v1".to_vec()).encode(),
        );
        client.submit(
            &mut c.sim,
            KvOp::Put(b"k2".to_vec(), b"v2".to_vec()).encode(),
        );
        client.submit(&mut c.sim, KvOp::Del(b"k1".to_vec()).encode());
        client.submit(&mut c.sim, KvOp::Get(b"k2".to_vec()).encode());
        assert!(c.run_until_completed(4, 2_000_000));
        c.settle();
        c.assert_safety();
        let comps = client.completions();
        assert_eq!(comps.last().unwrap().result, b"v2");
        // All replicas hold identical state digests.
        let digests: Vec<_> = c
            .replicas
            .iter()
            .map(|r| r.with_service(|s| s.state_digest()))
            .collect();
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn cop_pillars_spread_agreement_work_across_cores() {
        let cfg = ReptorConfig {
            pillars: 3,
            batch_size: 1,
            ..ReptorConfig::small()
        };
        let mut c = Cluster::sim_transport(cfg, 1, 13, || Box::new(EchoService::default()));
        let client = c.clients[0].clone();
        for i in 0..12u8 {
            client.submit(&mut c.sim, vec![i; 64]);
        }
        assert!(c.run_until_completed(12, 3_000_000));
        c.settle();
        // Replica 1's host must show busy time on all three pillar cores.
        let host = c.net.host(simnet::HostId(1));
        let host = host.borrow();
        for core in 1..=3u16 {
            assert!(
                host.core_busy_time(simnet::CoreId(core)) > simnet::Nanos::ZERO,
                "pillar core {core} never used"
            );
        }
    }

    /// Byzantine-primary recovery when the agreement log is split across
    /// COP pipelines: the view change must collect prepared certificates
    /// from *every* pipeline's log (not just lane 0) and the new primary
    /// re-proposes the merged set, so no lane's progress is lost and the
    /// total order stays gap-free.
    fn cop_view_change_merges_pipeline_logs(mode: ByzantineMode, pillars: usize, seed: u64) {
        let cfg = ReptorConfig {
            pillars,
            batch_size: 1, // one request per instance: work lands in every lane
            ..ReptorConfig::small()
        };
        let mut c = Cluster::sim_transport(cfg, 1, seed, || Box::new(CounterService::default()));
        c.replicas[0].set_byzantine(mode);
        let client = c.clients[0].clone();
        for _ in 0..8 {
            client.submit(&mut c.sim, b"inc".to_vec());
        }
        let done = c.run_until_completed(8, 10_000_000);
        c.settle();
        // Safety first, regardless of liveness.
        c.assert_safety();
        assert!(
            done,
            "requests spanning {pillars} pipelines must complete once the \
             faulty primary is voted out"
        );
        for r in &c.replicas[1..] {
            assert!(
                r.view() >= 1,
                "replica {} still in view {}",
                r.id(),
                r.view()
            );
            assert_eq!(
                r.stats().executed_requests,
                8,
                "replica {} lost requests across the pipeline merge",
                r.id()
            );
        }
    }

    #[test]
    fn silent_primary_view_change_merges_two_pipelines() {
        cop_view_change_merges_pipeline_logs(ByzantineMode::SilentPrimary, 2, 40);
    }

    #[test]
    fn silent_primary_view_change_merges_four_pipelines() {
        cop_view_change_merges_pipeline_logs(ByzantineMode::SilentPrimary, 4, 41);
    }

    #[test]
    fn equivocating_primary_view_change_merges_two_pipelines() {
        cop_view_change_merges_pipeline_logs(ByzantineMode::EquivocatingPrimary, 2, 42);
    }

    #[test]
    fn equivocating_primary_view_change_merges_four_pipelines() {
        cop_view_change_merges_pipeline_logs(ByzantineMode::EquivocatingPrimary, 4, 43);
    }

    #[test]
    fn pre_prepare_beyond_high_watermark_is_ignored() {
        let cfg = ReptorConfig {
            checkpoint_interval: 8, // high mark = low + 16
            ..ReptorConfig::small()
        };
        let mut c = Cluster::sim_transport(cfg, 1, 15, || Box::new(CounterService::default()));
        let msg = Message::PrePrepare {
            view: 0,
            seq: 1_000, // way beyond the window
            digest: batch_digest(&[]),
            batch: vec![],
        };
        c.replicas[1].inject_message(&mut c.sim, msg);
        c.settle();
        assert_eq!(
            c.replicas[1].stats().prepares_sent,
            0,
            "out-of-window proposal must not be prepared"
        );
        assert_eq!(c.replicas[1].last_executed(), 0);
    }

    #[test]
    fn pre_prepare_with_mismatched_digest_is_ignored() {
        let mut c = counter_cluster(16);
        let batch = vec![Request {
            client: 4,
            timestamp: 1,
            payload: b"inc".to_vec(),
        }];
        let msg = Message::PrePrepare {
            view: 0,
            seq: 1,
            digest: batch_digest(&[]), // wrong: doesn't bind the batch
            batch,
        };
        c.replicas[1].inject_message(&mut c.sim, msg);
        c.settle();
        assert_eq!(c.replicas[1].stats().prepares_sent, 0);
    }

    #[test]
    fn duplicate_prepares_do_not_fake_a_quorum() {
        // Inject the same PREPARE from one replica many times; with only
        // one distinct voter (plus the pre-prepare), no commit may form.
        let mut c = counter_cluster(17);
        let batch = vec![Request {
            client: 4,
            timestamp: 1,
            payload: b"inc".to_vec(),
        }];
        let digest = batch_digest(&batch);
        c.replicas[1].inject_message(
            &mut c.sim,
            Message::PrePrepare {
                view: 0,
                seq: 1,
                digest,
                batch,
            },
        );
        for _ in 0..10 {
            c.replicas[1].inject_message(
                &mut c.sim,
                Message::Prepare {
                    view: 0,
                    seq: 1,
                    digest,
                    replica: 2, // the same voter every time
                },
            );
        }
        c.settle();
        assert_eq!(
            c.replicas[1].stats().commits_sent,
            1,
            "replica 1's own prepare + replica 2's = 2f: commit vote is sent"
        );
        assert_eq!(
            c.replicas[1].last_executed(),
            0,
            "but execution needs 2f+1 distinct commit voters"
        );
    }

    #[test]
    fn commits_before_prepared_certificate_do_not_execute() {
        // Commits arriving for an instance with no pre-prepare must be
        // buffered/ignored, never executed.
        let mut c = counter_cluster(18);
        let digest = batch_digest(&[]);
        for replica in [0u32, 2, 3] {
            c.replicas[1].inject_message(
                &mut c.sim,
                Message::Commit {
                    view: 0,
                    seq: 1,
                    digest,
                    replica,
                },
            );
        }
        c.settle();
        assert_eq!(c.replicas[1].last_executed(), 0);
        assert_eq!(c.replicas[1].stats().executed_batches, 0);
    }

    #[test]
    fn checkpoint_votes_with_divergent_digests_do_not_stabilize() {
        let cfg = ReptorConfig {
            checkpoint_interval: 1,
            batch_size: 1,
            ..ReptorConfig::small()
        };
        let mut c = Cluster::sim_transport(cfg, 1, 19, || Box::new(CounterService::default()));
        // Three different digests for the same checkpoint seq: no quorum.
        for (i, b) in [b"a", b"b", b"c"].iter().enumerate() {
            c.replicas[1].inject_message(
                &mut c.sim,
                Message::Checkpoint {
                    seq: 4,
                    state_digest: bft_crypto::Digest::of(*b),
                    replica: i as u32 + 1,
                    store_rkey: 0,
                    store_len: 0,
                    store_epoch: 0,
                },
            );
        }
        c.settle();
        assert_eq!(c.replicas[1].low_mark(), 0, "no matching-digest quorum");
    }

    #[test]
    fn client_latency_is_recorded_and_positive() {
        let mut c = counter_cluster(14);
        let client = c.clients[0].clone();
        client.submit(&mut c.sim, b"inc".to_vec());
        assert!(c.run_until_completed(1, 1_000_000));
        let comp = client.completions();
        // At minimum: request wire + three protocol phases + reply wire.
        assert!(comp[0].latency() > simnet::Nanos::from_micros(10));
    }
}
