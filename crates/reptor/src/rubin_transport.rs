//! The RUBIN transport: Reptor's comm stack over the RDMA selector.
//!
//! Replaces the Java-NIO selector and socket channels with RUBIN's RDMA
//! selector and channels (paper §IV: "We integrated RUBIN into Reptor,
//! where it replaces the Java NIO selector and socket channel"). Because
//! RUBIN channels are message-oriented, no length framing is needed; the
//! first message on every channel is a hello carrying the sender's node id.
//!
//! Failure recovery: when a channel breaks (queue-pair retry exhaustion,
//! peer crash, connection rejection), the side that originally dialed —
//! the higher node id — re-dials with exponential backoff, while the other
//! side parks outgoing messages until the replacement connection and its
//! hello arrive. Queued output survives the swap; messages that were
//! in flight on the dead queue pair are lost, which the BFT layer above
//! already tolerates (it re-sends during view changes and client retries).

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use rdma_verbs::{Access, MemoryRegion, ProtectionDomain, RdmaDevice, RnicModel};
use rubin::{
    Interest, RdmaChannel, RdmaSelector, RdmaServerChannel, RecvOutcome, RubinConfig, RubinKey,
};
use simnet::{Addr, CoreId, HostId, Nanos, Network, Simulator};

use crate::state_transfer::StateOffer;
use crate::transport::{
    DeliveryFn, NodeId, SlotDoorbellFn, SlotRegion, SlotWriteFn, StateReadFn, Transport,
};

/// Base port for RUBIN transport server channels.
const RUBIN_PORT_BASE: u32 = 1100;

/// First re-dial delay after a channel failure; doubles per consecutive
/// failed attempt.
const RECONNECT_BASE: Nanos = Nanos::from_millis(2);

/// Cap on the backoff doubling: delay = base << min(attempts, CAP_SHIFT).
const RECONNECT_CAP_SHIFT: u32 = 5;

/// How long a re-dial may sit unestablished before it is abandoned. RDMA
/// connection management has no timeout of its own — a ConnRequest lost to
/// a crashed host would otherwise hang the dialer forever.
const CONNECT_ATTEMPT_TIMEOUT: Nanos = Nanos::from_millis(20);

/// Maximum messages held for a peer whose channel is down or still
/// connecting. Large enough to ride over a reconnect round-trip, small
/// enough that a long outage cannot grow unbounded queues at healthy
/// peers — a revived replica recovers truncated history through
/// checkpoint state transfer instead of replay.
const PEN_CAP: usize = 16;

struct PeerChan {
    channel: RdmaChannel,
    key: RubinKey,
    /// Messages waiting for establishment or send-buffer space.
    outq: VecDeque<Vec<u8>>,
    /// Peer id, once known (outbound: immediately; inbound: after hello).
    peer: Option<NodeId>,
    hello_sent: bool,
    /// Channel failed; slot is retired (its selector key is cancelled) but
    /// kept in place so `by_node` indices stay stable and its `outq` can be
    /// carried over to the replacement channel.
    dead: bool,
    /// This channel is a reconnect attempt (not an initial mesh dial).
    redial: bool,
}

struct RubinInner {
    node: NodeId,
    device: RdmaDevice,
    core: CoreId,
    cfg: RubinConfig,
    selector: RdmaSelector,
    server: RdmaServerChannel,
    chans: Vec<PeerChan>,
    by_node: HashMap<NodeId, usize>,
    /// Host of every group member, for re-dialing after a failure.
    directory: HashMap<NodeId, HostId>,
    /// Consecutive failed re-dial attempts per peer (drives the backoff).
    redial_attempts: HashMap<NodeId, u32>,
    /// Protection domain holding checkpoint-store regions. Allocated on
    /// first registration; MRs are validated per-rkey, not per-domain, so
    /// any peer queue pair can READ them.
    state_pd: Option<ProtectionDomain>,
    /// Live checkpoint-store regions by rkey, held so `release` can
    /// invalidate them.
    state_regions: HashMap<u32, MemoryRegion>,
    /// Live fast-path slot regions by rkey (remotely WRITE-able), held so
    /// revocation can invalidate them and doorbell handlers can read the
    /// deposited bytes back out.
    slot_regions: HashMap<u32, MemoryRegion>,
    /// Installed fast-path doorbell, rung when a peer WRITEs into one of
    /// our slot regions.
    slot_doorbell: Option<SlotDoorbellFn>,
    delivery: Option<DeliveryFn>,
    msgs_sent: u64,
    msgs_delivered: u64,
    reconnect_attempts: u64,
    reconnects_completed: u64,
}

/// A full-mesh, RDMA-selector-driven transport endpoint.
#[derive(Clone)]
pub struct RubinTransport {
    inner: Rc<RefCell<RubinInner>>,
}

impl fmt::Debug for RubinTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("RubinTransport")
            .field("node", &inner.node)
            .field("chans", &inner.chans.len())
            .field("sent", &inner.msgs_sent)
            .field("delivered", &inner.msgs_delivered)
            .finish()
    }
}

impl RubinTransport {
    /// The shared metrics registry of the fabric this endpoint runs on.
    pub fn metrics(&self) -> simnet::Metrics {
        self.inner.borrow().device.net().metrics()
    }

    /// Builds a fully meshed group over RUBIN channels. Run the simulator
    /// (or start sending) to let connections complete.
    pub fn build_group(
        sim: &mut Simulator,
        net: &Network,
        nodes: &[(NodeId, HostId, CoreId)],
        rnic: RnicModel,
        cfg: RubinConfig,
    ) -> Vec<RubinTransport> {
        let transports: Vec<RubinTransport> = nodes
            .iter()
            .map(|&(node, host, core)| {
                let device = RdmaDevice::open(net, host, rnic.clone());
                let selector = RdmaSelector::new(&device, core, cfg.select_ns);
                let server =
                    RdmaServerChannel::bind(&device, RUBIN_PORT_BASE + node, cfg.clone(), core)
                        .expect("transport port free");
                RubinTransport {
                    inner: Rc::new(RefCell::new(RubinInner {
                        node,
                        device,
                        core,
                        cfg: cfg.clone(),
                        selector,
                        server,
                        chans: Vec::new(),
                        by_node: HashMap::new(),
                        directory: nodes.iter().map(|&(n, h, _)| (n, h)).collect(),
                        redial_attempts: HashMap::new(),
                        state_pd: None,
                        state_regions: HashMap::new(),
                        slot_regions: HashMap::new(),
                        slot_doorbell: None,
                        delivery: None,
                        msgs_sent: 0,
                        msgs_delivered: 0,
                        reconnect_attempts: 0,
                        reconnects_completed: 0,
                    })),
                }
            })
            .collect();
        // Register servers with the selectors and start the reactors.
        for t in &transports {
            {
                let inner = t.inner.borrow();
                inner.selector.register_server(sim, &inner.server);
            }
            t.pump(sim);
        }
        // Dial: node at index i connects to every earlier node.
        for (idx, _) in nodes.iter().enumerate() {
            for &(peer, peer_host, _pcore) in &nodes[..idx] {
                let t = &transports[idx];
                let remote = Addr::new(peer_host, RUBIN_PORT_BASE + peer);
                let (channel, key) = {
                    let inner = t.inner.borrow();
                    let channel = RdmaChannel::connect(
                        sim,
                        &inner.device,
                        remote,
                        inner.cfg.clone(),
                        inner.core,
                    )
                    .expect("connect initiation succeeds");
                    let key = inner.selector.register_channel(
                        sim,
                        &channel,
                        Interest::OP_ACCEPT | Interest::OP_RECEIVE,
                    );
                    (channel, key)
                };
                t.install_doorbell(&channel);
                let mut inner = t.inner.borrow_mut();
                let slot = inner.chans.len();
                inner.chans.push(PeerChan {
                    channel,
                    key,
                    outq: VecDeque::new(),
                    peer: Some(peer),
                    hello_sent: false,
                    dead: false,
                    redial: false,
                });
                inner.by_node.insert(peer, slot);
            }
        }
        transports
    }

    /// Messages delivered to this endpoint.
    pub fn delivered_count(&self) -> u64 {
        self.inner.borrow().msgs_delivered
    }

    /// Re-dial attempts made after channel failures.
    pub fn reconnect_attempts(&self) -> u64 {
        self.inner.borrow().reconnect_attempts
    }

    /// Re-dials that reached establishment.
    pub fn reconnects_completed(&self) -> u64 {
        self.inner.borrow().reconnects_completed
    }

    /// Select calls performed by this endpoint's selector.
    pub fn selects_performed(&self) -> u64 {
        self.inner.borrow().selector.selects_performed()
    }

    /// Hybrid-queue events observed by this endpoint's selector.
    pub fn hybrid_events(&self) -> u64 {
        self.inner.borrow().selector.hybrid_events_total()
    }

    /// Diagnostic dump of the selector's keys.
    pub fn debug_keys(&self) -> String {
        self.inner.borrow().selector.debug_keys()
    }

    /// Diagnostic dump of per-channel state.
    pub fn debug_channels(&self) -> String {
        let inner = self.inner.borrow();
        inner
            .chans
            .iter()
            .map(|c| {
                let s = c.channel.stats();
                format!(
                    "[peer={:?} hello={} outq={} dead={} tx={} rx={} stalls={} chan={:?}]",
                    c.peer,
                    c.hello_sent,
                    c.outq.len(),
                    c.dead,
                    s.msgs_sent,
                    s.msgs_received,
                    s.send_stalls,
                    c.channel
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The reactor: parks a select and handles whatever becomes ready.
    fn pump(&self, sim: &mut Simulator) {
        let selector = self.inner.borrow().selector.clone();
        let t = self.clone();
        selector.select(sim, move |sim, ready| {
            for ev in ready {
                t.handle_event(sim, ev.key, ev.ready);
            }
            t.pump(sim);
        });
    }

    fn handle_event(&self, sim: &mut Simulator, key: RubinKey, ready: Interest) {
        if ready.contains(Interest::OP_CONNECT) {
            self.handle_accept(sim);
            return;
        }
        let slot = {
            let inner = self.inner.borrow();
            inner.chans.iter().position(|c| c.key == key)
        };
        let Some(slot) = slot else { return };
        if ready.contains(Interest::OP_ACCEPT) {
            self.handle_established(sim, slot);
        }
        if ready.contains(Interest::OP_RECEIVE) {
            self.handle_receivable(sim, slot);
        }
        if ready.contains(Interest::OP_SEND) {
            self.flush(sim, slot);
        }
    }

    fn handle_accept(&self, sim: &mut Simulator) {
        loop {
            let accepted = {
                let inner = self.inner.borrow();
                inner.server.accept(sim)
            };
            let Ok(Some(channel)) = accepted else { break };
            let key = {
                let inner = self.inner.borrow();
                inner
                    .selector
                    .register_channel(sim, &channel, Interest::OP_RECEIVE)
            };
            self.install_doorbell(&channel);
            let mut inner = self.inner.borrow_mut();
            inner.chans.push(PeerChan {
                channel,
                key,
                outq: VecDeque::new(),
                peer: None,
                hello_sent: true, // server side sends no hello
                dead: false,
                redial: false,
            });
        }
    }

    fn handle_established(&self, sim: &mut Simulator, slot: usize) {
        let channel = self.inner.borrow().chans[slot].channel.clone();
        if !channel.finish_connect(sim) {
            return;
        }
        // A completed re-dial resets the peer's backoff.
        let metrics = {
            let mut inner = self.inner.borrow_mut();
            let c = &inner.chans[slot];
            if c.redial {
                let peer = c.peer.expect("re-dials always know their peer");
                inner.redial_attempts.remove(&peer);
                inner.reconnects_completed += 1;
                Some((inner.device.net().metrics(), inner.node))
            } else {
                None
            }
        };
        if let Some((m, node)) = metrics {
            m.incr(&format!("rubin_transport.{node}.reconnects_completed"));
            m.trace(
                sim.now(),
                "transport",
                format!("rubin reconnect up slot={slot}"),
            );
        }
        self.flush(sim, slot);
    }

    fn handle_receivable(&self, sim: &mut Simulator, slot: usize) {
        loop {
            let outcome = {
                let inner = self.inner.borrow();
                inner.chans[slot].channel.read(sim)
            };
            match outcome {
                Ok(RecvOutcome::Msg(body)) => self.handle_message(sim, slot, body),
                Ok(RecvOutcome::WouldBlock) => break,
                Ok(RecvOutcome::Eof) | Err(_) => {
                    self.on_channel_down(sim, slot);
                    break;
                }
            }
        }
    }

    fn handle_message(&self, sim: &mut Simulator, slot: usize, body: Vec<u8>) {
        let (peer, delivery) = {
            let mut inner = self.inner.borrow_mut();
            match inner.chans[slot].peer {
                Some(p) => {
                    inner.msgs_delivered += 1;
                    (p, inner.delivery.clone())
                }
                None => {
                    // First message: the hello.
                    if body.len() == 4 {
                        let peer = u32::from_le_bytes(body.try_into().expect("4 bytes"));
                        inner.chans[slot].peer = Some(peer);
                        // A hello from an already-known peer means it
                        // reconnected: retire the stale channel and carry
                        // its queued output over to this one.
                        if let Some(&old) = inner.by_node.get(&peer) {
                            if old != slot {
                                let outq = std::mem::take(&mut inner.chans[old].outq);
                                inner.chans[old].dead = true;
                                let old_key = inner.chans[old].key;
                                inner.selector.cancel(old_key);
                                inner.chans[slot].outq = outq;
                            }
                        }
                        inner.by_node.insert(peer, slot);
                        drop(inner);
                        // The carried-over queue may have pending messages.
                        self.flush(sim, slot);
                    }
                    return;
                }
            }
        };
        if let Some(cb) = delivery {
            cb(sim, peer, body);
        }
    }

    /// Retires a failed channel and, if this endpoint is the dialing side
    /// for that peer, schedules a re-dial with exponential backoff.
    ///
    /// Mirrors [`build_group`](RubinTransport::build_group)'s mesh
    /// direction: the higher-id node dials, so only it re-dials; the
    /// lower-id side keeps the dead slot as a holding pen for queued
    /// output until the peer's replacement connection arrives.
    fn on_channel_down(&self, sim: &mut Simulator, slot: usize) {
        let (peer, node, metrics) = {
            let mut inner = self.inner.borrow_mut();
            if inner.chans[slot].dead {
                return;
            }
            inner.chans[slot].dead = true;
            // The slot becomes a holding pen: shed everything but the
            // newest PEN_CAP messages now, so a long outage hands the
            // replacement channel recent traffic rather than stale
            // history (recovered by catch-up/state transfer instead).
            let shed = inner.chans[slot].outq.len().saturating_sub(PEN_CAP);
            inner.chans[slot].outq.drain(..shed);
            let key = inner.chans[slot].key;
            inner.selector.cancel(key);
            if shed > 0 {
                let node = inner.node;
                inner
                    .device
                    .net()
                    .metrics()
                    .incr_by(&format!("rubin_transport.{node}.pen_dropped"), shed as u64);
            }
            (
                inner.chans[slot].peer,
                inner.node,
                inner.device.net().metrics(),
            )
        };
        metrics.incr(&format!("rubin_transport.{node}.channels_down"));
        metrics.trace(
            sim.now(),
            "transport",
            format!("rubin channel down slot={slot} peer={peer:?}"),
        );
        let Some(peer) = peer else {
            return; // anonymous inbound channel that never said hello
        };
        // Only act if this slot is still the peer's current channel (a
        // replacement may already have been wired in via hello remap).
        if self.inner.borrow().by_node.get(&peer) != Some(&slot) {
            return;
        }
        if node > peer {
            self.schedule_redial(sim, peer);
        }
    }

    /// Schedules the next connection attempt towards `peer`, delayed by
    /// exponential backoff over the consecutive-failure count.
    fn schedule_redial(&self, sim: &mut Simulator, peer: NodeId) {
        let delay = {
            let inner = self.inner.borrow();
            let attempts = inner.redial_attempts.get(&peer).copied().unwrap_or(0);
            Nanos::from_nanos(RECONNECT_BASE.as_nanos() << attempts.min(RECONNECT_CAP_SHIFT))
        };
        let t = self.clone();
        sim.schedule_in(
            delay,
            Box::new(move |sim| {
                t.redial_fire(sim, peer);
            }),
        );
    }

    /// Opens a replacement channel towards `peer`, carrying over the dead
    /// slot's queued output, and arms the attempt timeout.
    fn redial_fire(&self, sim: &mut Simulator, peer: NodeId) {
        let (device, cfg, core, remote, outq, node, metrics) = {
            let mut inner = self.inner.borrow_mut();
            // Already reconnected (or re-dial already in flight): nothing
            // to do.
            if let Some(&slot) = inner.by_node.get(&peer) {
                if !inner.chans[slot].dead {
                    return;
                }
            }
            let Some(&host) = inner.directory.get(&peer) else {
                return;
            };
            *inner.redial_attempts.entry(peer).or_insert(0) += 1;
            inner.reconnect_attempts += 1;
            let outq = match inner.by_node.get(&peer) {
                Some(&slot) => std::mem::take(&mut inner.chans[slot].outq),
                None => VecDeque::new(),
            };
            (
                inner.device.clone(),
                inner.cfg.clone(),
                inner.core,
                Addr::new(host, RUBIN_PORT_BASE + peer),
                outq,
                inner.node,
                inner.device.net().metrics(),
            )
        };
        metrics.incr(&format!("rubin_transport.{node}.reconnect_attempts"));
        let chan = RdmaChannel::connect(sim, &device, remote, cfg, core);
        let Ok(channel) = chan else {
            // Could not even initiate (e.g. resource exhaustion): put the
            // queue back and back off again.
            let mut inner = self.inner.borrow_mut();
            if let Some(&slot) = inner.by_node.get(&peer) {
                inner.chans[slot].outq = outq;
            }
            drop(inner);
            self.schedule_redial(sim, peer);
            return;
        };
        let key = {
            let inner = self.inner.borrow();
            inner.selector.register_channel(
                sim,
                &channel,
                Interest::OP_ACCEPT | Interest::OP_RECEIVE,
            )
        };
        self.install_doorbell(&channel);
        let slot = {
            let mut inner = self.inner.borrow_mut();
            let slot = inner.chans.len();
            inner.chans.push(PeerChan {
                channel,
                key,
                outq,
                peer: Some(peer),
                hello_sent: false,
                dead: false,
                redial: true,
            });
            inner.by_node.insert(peer, slot);
            slot
        };
        // RDMA CM never times out on its own; if the ConnRequest (or the
        // reply) is lost, only this timer gets the dialer unstuck.
        let t = self.clone();
        sim.schedule_in(
            CONNECT_ATTEMPT_TIMEOUT,
            Box::new(move |sim| {
                t.attempt_timeout_fire(sim, slot, peer);
            }),
        );
    }

    /// Abandons a re-dial that never established within the timeout.
    fn attempt_timeout_fire(&self, sim: &mut Simulator, slot: usize, peer: NodeId) {
        {
            let inner = self.inner.borrow();
            if inner.by_node.get(&peer) != Some(&slot) {
                return; // superseded by a newer channel
            }
            let c = &inner.chans[slot];
            if c.dead || c.channel.is_established() {
                return; // already failed (and rescheduled) or succeeded
            }
        }
        self.on_channel_down(sim, slot);
    }

    fn flush(&self, sim: &mut Simulator, slot: usize) {
        if self.inner.borrow().chans[slot].dead {
            return;
        }
        // Hello goes out first on outbound channels.
        let need_hello = {
            let inner = self.inner.borrow();
            let c = &inner.chans[slot];
            !c.hello_sent && c.channel.is_established()
        };
        if need_hello {
            let (channel, node) = {
                let inner = self.inner.borrow();
                (inner.chans[slot].channel.clone(), inner.node)
            };
            if matches!(channel.write(sim, &node.to_le_bytes()), Ok(true)) {
                self.inner.borrow_mut().chans[slot].hello_sent = true;
            } else {
                self.update_interest(sim, slot);
                return; // retry on next OP_SEND
            }
        }
        loop {
            let (channel, msg) = {
                let inner = self.inner.borrow();
                let c = &inner.chans[slot];
                if c.outq.is_empty() || !c.channel.is_established() || !c.hello_sent {
                    break;
                }
                (
                    c.channel.clone(),
                    c.outq.front().cloned().expect("nonempty"),
                )
            };
            match channel.write(sim, &msg) {
                Ok(true) => {
                    self.inner.borrow_mut().chans[slot].outq.pop_front();
                }
                Ok(false) | Err(_) => break, // OP_SEND will fire on space
            }
        }
        self.update_interest(sim, slot);
    }

    /// Installs the fast-path doorbell on a freshly created channel. The
    /// per-channel closure resolves this transport's installed handler and
    /// the channel's peer id at ring time, so it is safe to install before
    /// either is known (accept-side channels learn their peer only after
    /// the hello; the handler arrives with `set_slot_doorbell`).
    fn install_doorbell(&self, channel: &RdmaChannel) {
        let t = self.clone();
        let qp_num = channel.qp().num();
        channel.set_write_doorbell(Rc::new(move |sim, imm, len| {
            let (peer, db) = {
                let inner = t.inner.borrow();
                let peer = inner
                    .chans
                    .iter()
                    .find(|c| c.channel.qp().num() == qp_num)
                    .and_then(|c| c.peer);
                (peer, inner.slot_doorbell.clone())
            };
            if let (Some(peer), Some(db)) = (peer, db) {
                db(sim, peer, imm, len);
            }
        }));
    }

    /// OP_SEND readiness is level-triggered (send buffers are almost
    /// always available), so the reactor only subscribes to it while
    /// output is actually pending.
    fn update_interest(&self, sim: &mut Simulator, slot: usize) {
        let (selector, key, interest) = {
            let inner = self.inner.borrow();
            let c = &inner.chans[slot];
            if c.dead {
                return; // key is cancelled; leave it alone
            }
            let established = c.channel.is_established();
            let mut want = Interest::OP_RECEIVE;
            if !established {
                want |= Interest::OP_ACCEPT;
            }
            if established && (!c.hello_sent || !c.outq.is_empty()) {
                want |= Interest::OP_SEND;
            }
            (inner.selector.clone(), c.key, want)
        };
        selector.set_interest(sim, key, interest);
    }
}

impl Transport for RubinTransport {
    fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    fn send(&self, sim: &mut Simulator, to: NodeId, msg: Vec<u8>) {
        let slot = {
            let mut inner = self.inner.borrow_mut();
            inner.msgs_sent += 1;
            inner.by_node.get(&to).copied()
        };
        let Some(slot) = slot else {
            return; // no channel to that peer (yet): drop
        };
        {
            let mut inner = self.inner.borrow_mut();
            inner.chans[slot].outq.push_back(msg);
            // A dead or still-connecting channel cannot drain; bound the
            // holding pen by shedding the oldest message. The survivors are
            // the newest traffic — recent checkpoints and votes — which is
            // exactly what a peer coming back from a long outage can still
            // use (older history is recovered by catch-up/state transfer,
            // not by replay).
            let draining = !inner.chans[slot].dead && inner.chans[slot].channel.is_established();
            if !draining && inner.chans[slot].outq.len() > PEN_CAP {
                inner.chans[slot].outq.pop_front();
                let node = inner.node;
                inner
                    .device
                    .net()
                    .metrics()
                    .incr(&format!("rubin_transport.{node}.pen_dropped"));
            }
        }
        self.flush(sim, slot);
    }

    fn set_delivery(&self, f: DeliveryFn) {
        self.inner.borrow_mut().delivery = Some(f);
    }

    fn register_state_region(&self, sim: &mut Simulator, bytes: &[u8]) -> Option<StateOffer> {
        let _ = sim;
        let mut inner = self.inner.borrow_mut();
        if inner.state_pd.is_none() {
            let pd = inner.device.alloc_pd();
            inner.state_pd = Some(pd);
        }
        let pd = inner.state_pd.expect("just ensured");
        // Zero-length registrations are meaningless; a 1-byte region keeps
        // the rkey live so empty stores still advertise a valid offer.
        let mr = inner
            .device
            .reg_mr(&pd, bytes.len().max(1), Access::REMOTE_READ);
        if !bytes.is_empty() {
            mr.write(0, bytes).expect("store fits its region");
        }
        let rkey = mr.rkey().0;
        inner.state_regions.insert(rkey, mr);
        Some(StateOffer {
            rkey,
            len: bytes.len() as u64,
            // The replica stamps its recovery epoch onto the offer; the
            // transport only mints the region.
            epoch: 0,
        })
    }

    fn release_state_region(&self, offer: &StateOffer) {
        if let Some(mr) = self.inner.borrow_mut().state_regions.remove(&offer.rkey) {
            mr.invalidate();
        }
    }

    fn write_state_region(&self, offer: &StateOffer, offset: u64, bytes: &[u8]) -> bool {
        let inner = self.inner.borrow();
        match inner.state_regions.get(&offer.rkey) {
            Some(mr) => mr.write(offset as usize, bytes).is_ok(),
            None => false,
        }
    }

    fn read_state(
        &self,
        sim: &mut Simulator,
        peer: NodeId,
        rkey: u32,
        offset: u64,
        len: usize,
        done: StateReadFn,
    ) -> bool {
        let channel = {
            let inner = self.inner.borrow();
            let Some(&slot) = inner.by_node.get(&peer) else {
                return false;
            };
            let c = &inner.chans[slot];
            if c.dead || !c.channel.is_established() {
                return false;
            }
            c.channel.clone()
        };
        channel.post_read(sim, rkey, offset, len, done).is_ok()
    }

    fn register_write_region(&self, sim: &mut Simulator, len: usize) -> Option<SlotRegion> {
        let _ = sim;
        let mut inner = self.inner.borrow_mut();
        if inner.state_pd.is_none() {
            let pd = inner.device.alloc_pd();
            inner.state_pd = Some(pd);
        }
        let pd = inner.state_pd.expect("just ensured");
        let mr = inner.device.reg_mr(&pd, len.max(1), Access::REMOTE_WRITE);
        let rkey = mr.rkey().0;
        inner.slot_regions.insert(rkey, mr);
        Some(SlotRegion {
            rkey,
            len: len as u64,
        })
    }

    fn release_write_region(&self, region: &SlotRegion) {
        // Invalidation is the PR 5 revocation fence: the rkey stays known
        // to the RNIC but any in-flight WRITE against it is denied.
        if let Some(mr) = self.inner.borrow_mut().slot_regions.remove(&region.rkey) {
            mr.invalidate();
        }
    }

    fn read_write_region(&self, region: &SlotRegion, offset: u64, len: usize) -> Option<Vec<u8>> {
        let inner = self.inner.borrow();
        let mr = inner.slot_regions.get(&region.rkey)?;
        mr.read(offset as usize, len).ok()
    }

    fn write_slot(
        &self,
        sim: &mut Simulator,
        peer: NodeId,
        rkey: u32,
        offset: u64,
        data: &[u8],
        imm: u32,
        done: SlotWriteFn,
    ) -> bool {
        let channel = {
            let inner = self.inner.borrow();
            let Some(&slot) = inner.by_node.get(&peer) else {
                return false;
            };
            let c = &inner.chans[slot];
            if c.dead || !c.channel.is_established() {
                return false;
            }
            c.channel.clone()
        };
        channel
            .post_write(sim, rkey, offset, data, imm, done)
            .is_ok()
    }

    fn set_slot_doorbell(&self, f: SlotDoorbellFn) {
        self.inner.borrow_mut().slot_doorbell = Some(f);
    }

    fn set_lane_delivery(&self, lanes: usize, f: crate::transport::LaneDeliveryFn) {
        // Same demux rule as the default, plus per-lane delivery counters
        // so benchmarks can see agreement traffic spreading over pipelines.
        let metrics = self.metrics();
        let node = self.node();
        self.set_delivery(Rc::new(move |sim, from, bytes| {
            let lane = crate::transport::wire_lane(&bytes, lanes);
            metrics.incr(&format!("rubin_transport.{node}.lane{lane}_delivered"));
            f(sim, lane, from, bytes);
        }));
    }
}
